//! Sharded fleet serving: consistent-hash routing, WAL-shipping read
//! replicas, and cross-shard answer assembly.
//!
//! A [`Fleet`] holds N independent [`ResilientEngine`] shard leaders
//! (each with its own state subdirectory, WAL, and checkpoint) behind
//! one protocol endpoint. Device names are consistent-hashed onto
//! shards by [`ShardRouter`], so:
//!
//! * **Writes** (UPSERT/REMOVE) touch exactly one shard leader, and
//!   dirty only `O(corpus / N)` of the next CHECK's work.
//! * **CHECK** runs [`ResilientEngine::check_parts`] per shard and
//!   merges with [`merge_check_parts`], reproducing the single-engine
//!   report byte for byte (a clean shard is served from its cached
//!   parts without touching its engine at all — the per-shard parts
//!   cache is what makes CHECK scale past the single engine's
//!   per-check reassembly cost).
//! * **GEN** is answered by a read replica when the shard has one:
//!   the replica tails the leader's crc32-framed WAL by offset
//!   ([`Replica::poll`]) up to the last acknowledged sequence, so an
//!   acked write is always visible. When a shard leader faults
//!   mid-CHECK, its replica serves the parts instead (failover at a
//!   tracked, reported lag).
//!
//! # Byte identity with `--shards 1`
//!
//! The fleet keeps a device-id registry (ids assigned in arrival
//! order over the name-sorted boot corpus, exactly like
//! `Engine::from_corpus`) so UPSERT responses carry the same
//! `id=`/`gen=` the unsharded engine would emit; LEARN mines a
//! scratch engine over the name-sorted union corpus, so the contract
//! set — and every later CHECK — is byte-identical; BATCH reserves
//! ids sequentially in batch order before fanning sub-requests out to
//! their shards concurrently, and reassembles responses by item index.
//!
//! Two documented divergences: per-shard `dirty=`/`reused=` CHECK
//! counters can differ from the single engine after a
//! resolution-invalidating edit (the single engine drops its whole
//! cache, the fleet only the owning shard — violations and coverage
//! stay identical), and a restarted fleet's LEARN mined/reused
//! counters restart like the restarted single engine's do.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use concord_core::{
    ContractSet, EngineCheckStats, EngineStats, FleetReplicaStats, FleetShardStats, FleetStats,
    LearnDeltaStats, RobustnessStats, StorageStats,
};
use concord_engine::{
    merge_check_aggregates, CheckParts, Engine, EngineFault, EngineOptions, FleetCheckReport,
    OpKind, Replica, ResilientEngine, ShardCheckAggregate, ShardRouter,
};
use concord_json::ToJson;
use concord_lexer::Lexer;

use crate::args::ServeArgs;
use crate::protocol::{BatchItem, Request};
use crate::serve::{engine_inputs, fault_line, is_write_op, render_gen, ServeShared};
use crate::sync::DeadlineRwLock;
use crate::CliError;

/// Mutex acquisition that rides through poisoning. Fleet bookkeeping is
/// rebuilt-safe (shard engines recover from their last-known-good
/// image), so a panicked peer must not wedge every later request.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One shard: a leader engine behind a deadline lock, its replicas, and
/// the per-shard caches/counters.
struct FleetShard {
    leader: DeadlineRwLock<ResilientEngine>,
    /// Highest WAL sequence the leader has acknowledged, published
    /// *after* the fsync'd append — a replica caught up to this value
    /// has replayed every acked write, which is what makes replica GEN
    /// reads read-your-writes consistent.
    leader_seq: AtomicU64,
    /// Bumped on every successful mutation of this shard; keys the
    /// check-parts cache.
    version: AtomicU64,
    replicas: Vec<Mutex<Replica>>,
    /// Replica polls to skip before reading (replica-lag / stale-read
    /// fault injection).
    poll_suppress: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    /// `(shard version, aggregate)`: the last CHECK's per-shard
    /// contribution, pre-sorted and pre-summed for the merge fast
    /// path. A CHECK at an unchanged version reuses it without locking
    /// the leader — the single engine re-assembles its full report per
    /// CHECK; the fleet pays only for shards that changed.
    parts: Mutex<Option<(u64, Arc<ShardCheckAggregate>)>>,
}

/// The currently loaded contract set, kept in both forms the fleet
/// needs: the count for CONTRACTS and the parsed set for the CHECK
/// merge. (The JSON form lives in each shard's image — it is
/// distributed at boot and LEARN, never re-read from here.)
struct FleetContracts {
    len: usize,
    set: ContractSet,
}

/// Fleet-wide identity and learn bookkeeping. Ids are assigned in
/// arrival order over the name-sorted union corpus — the same order
/// `Engine::from_corpus` assigns — so UPSERT responses match the
/// unsharded engine's; `clean` mirrors the single engine's sketch cache
/// (evicted on edit, refilled by LEARN) to reproduce its
/// `mined=`/`reused=` counters.
struct Registry {
    ids: HashMap<String, u64>,
    next_id: u64,
    clean: HashSet<String>,
    mined_last_learn: u64,
    reused_last_learn: u64,
    /// Fleet edit counter value when the current contracts were learned.
    contracts_edits: u64,
}

/// A reserved upsert id, with enough context to roll the reservation
/// back if the shard operation faults (the single engine's rebuild
/// doesn't consume an id, so neither may the fleet).
struct ReservedUpsert {
    id: u64,
    new: bool,
    was_clean: bool,
}

/// Registry side effects already applied by the batch walk (ids must be
/// assigned sequentially in batch order, before sub-requests fan out to
/// their shards concurrently).
enum Pre {
    /// Direct request: apply registry effects inline.
    Direct,
    Upsert(ReservedUpsert),
    Remove(Option<(u64, bool)>),
}

/// A sharded serve backend: router, shard leaders with replicas, and
/// the fleet-level caches that keep answers byte-identical to
/// `--shards 1`.
pub(crate) struct Fleet {
    router: ShardRouter,
    shards: Vec<FleetShard>,
    /// Fleet-wide mutation version; keys the rendered CHECK cache.
    version: AtomicU64,
    /// Successful UPSERTs + REMOVEs across all shards.
    edits: AtomicU64,
    relearns: AtomicU64,
    contracts: Mutex<Option<FleetContracts>>,
    registry: Mutex<Registry>,
    /// `(fleet version, rendered replay-form response)`: a repeat CHECK
    /// with no intervening edit answers from here with `dirty=0
    /// reused=N`, exactly like the single engine's cached-report path.
    check_cache: Mutex<Option<(u64, String)>>,
    last_check: Mutex<Option<EngineCheckStats>>,
    metadata: Vec<(String, String)>,
    lexer: Lexer,
    options: EngineOptions,
}

/// Builds the fleet from the serve arguments: partitions the corpus by
/// router, boots one shard leader per partition (each under
/// `<state-dir>/shard-<i>` when durable), records/validates the shard
/// count in `<state-dir>/fleet.json` (resuming with a different
/// `--shards` would silently re-route devices), adopts resumed
/// contracts (or the `--contracts` file on a fresh boot) and
/// distributes them, then attaches the read replicas.
pub(crate) fn build_fleet(args: &ServeArgs) -> Result<Fleet, CliError> {
    let (lexer, corpus, metadata, options) = engine_inputs(args)?;
    let router = ShardRouter::new(args.shards);
    let mut partitions: Vec<Vec<(String, String)>> = vec![Vec::new(); router.shards()];
    for (name, text) in corpus {
        let shard = router.route(&name);
        partitions[shard].push((name, text));
    }
    if let Some(dir) = &args.state_dir {
        check_manifest(Path::new(dir), router.shards())?;
    }

    let mut leaders = Vec::with_capacity(router.shards());
    let mut adopted: Option<String> = None;
    let mut resumed_any = false;
    for (i, part) in partitions.iter().enumerate() {
        let (engine, resumed) = match &args.state_dir {
            Some(dir) => {
                let shard_dir = Path::new(dir).join(format!("shard-{i}"));
                ResilientEngine::with_store(
                    part,
                    &metadata,
                    lexer.clone(),
                    options.clone(),
                    &shard_dir,
                )
                .map_err(|e| CliError::Invalid(format!("shard {i}: {e}")))?
            }
            None => (
                ResilientEngine::new(part, &metadata, lexer.clone(), options.clone())
                    .map_err(|e| CliError::Invalid(format!("shard {i}: {e}")))?,
                false,
            ),
        };
        if resumed {
            resumed_any = true;
            if adopted.is_none() {
                adopted = engine.image().contracts.clone();
            }
        }
        leaders.push(engine);
    }

    // The state directory is the durable truth: a resumed fleet keeps
    // the contracts it persisted; only a fresh boot loads the file.
    let contracts_json = match adopted {
        Some(json) => Some(json),
        None if resumed_any => None,
        None => match &args.contracts {
            Some(path) => Some(crate::read_file(path)?),
            None => None,
        },
    };
    let contracts = match &contracts_json {
        Some(json) => {
            let set = ContractSet::from_json(json)
                .map_err(|e| CliError::Invalid(format!("contracts: {e}")))?;
            for (i, leader) in leaders.iter_mut().enumerate() {
                if leader.image().contracts.as_deref() != Some(json.as_str()) {
                    leader
                        .set_contracts_json(json)
                        .map_err(|e| CliError::Invalid(format!("shard {i}: {}", fault_line(&e))))?;
                }
            }
            Some(FleetContracts {
                len: set.len(),
                set,
            })
        }
        None => None,
    };

    // Ids in name-sorted arrival order over the (possibly resumed)
    // union corpus — the order `Engine::from_corpus` assigns.
    let mut names: Vec<String> = leaders
        .iter()
        .flat_map(|l| l.image().corpus().into_iter().map(|(name, _)| name))
        .collect();
    names.sort();
    let registry = Registry {
        next_id: names.len() as u64,
        ids: names
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, i as u64))
            .collect(),
        clean: HashSet::new(),
        mined_last_learn: 0,
        reused_last_learn: 0,
        contracts_edits: 0,
    };

    let mut shards = Vec::with_capacity(leaders.len());
    for (i, leader) in leaders.into_iter().enumerate() {
        let mut replicas = Vec::with_capacity(args.replicas);
        if args.replicas > 0 {
            // Validated in args: replicas require --state-dir.
            if let Some(dir) = &args.state_dir {
                let shard_dir = Path::new(dir).join(format!("shard-{i}"));
                for _ in 0..args.replicas {
                    let replica = Replica::attach(&shard_dir, lexer.clone(), options.clone())
                        .map_err(|e| CliError::Invalid(format!("shard {i} replica: {e}")))?;
                    replicas.push(Mutex::new(replica));
                }
            }
        }
        shards.push(FleetShard {
            leader_seq: AtomicU64::new(leader.image().applied_seq),
            leader: DeadlineRwLock::new(leader),
            version: AtomicU64::new(0),
            replicas,
            poll_suppress: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            parts: Mutex::new(None),
        });
    }

    Ok(Fleet {
        router,
        shards,
        version: AtomicU64::new(0),
        edits: AtomicU64::new(0),
        relearns: AtomicU64::new(0),
        contracts: Mutex::new(contracts),
        registry: Mutex::new(registry),
        check_cache: Mutex::new(None),
        last_check: Mutex::new(None),
        metadata,
        lexer,
        options,
    })
}

/// Records the shard count on first boot and refuses to reopen a state
/// directory under a different one: the router would silently send
/// devices to shards that don't hold them.
fn check_manifest(dir: &Path, shards: usize) -> Result<(), CliError> {
    std::fs::create_dir_all(dir).map_err(|e| CliError::Io(dir.display().to_string(), e))?;
    let path = dir.join("fleet.json");
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let json = concord_json::Json::parse(&text)
                .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
            let recorded = json["shards"].as_u64().unwrap_or(0) as usize;
            if recorded != shards {
                return Err(CliError::Invalid(format!(
                    "{}: state directory was created with --shards {recorded}; reopening with \
                     --shards {shards} would re-route devices away from the shards that hold them",
                    path.display()
                )));
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let manifest = concord_json::json!({ "shards": shards });
            std::fs::write(&path, manifest.render())
                .map_err(|e| CliError::Io(path.display().to_string(), e))?;
            Ok(())
        }
        Err(e) => Err(CliError::Io(path.display().to_string(), e)),
    }
}

impl Fleet {
    fn shard_for(&self, name: &str) -> &FleetShard {
        &self.shards[self.router.route(name)]
    }

    fn reserve_upsert(&self, name: &str) -> ReservedUpsert {
        let mut reg = lock(&self.registry);
        let was_clean = reg.clean.remove(name);
        match reg.ids.get(name).copied() {
            Some(id) => ReservedUpsert {
                id,
                new: false,
                was_clean,
            },
            None => {
                let id = reg.next_id;
                reg.next_id += 1;
                reg.ids.insert(name.to_string(), id);
                ReservedUpsert {
                    id,
                    new: true,
                    was_clean,
                }
            }
        }
    }

    /// Undoes a reservation after a faulted upsert. Under concurrent
    /// reservations the freed id may stay consumed (the single engine
    /// serializes and never hits this); sequential traffic rolls back
    /// exactly.
    fn rollback_upsert(&self, name: &str, reserved: &ReservedUpsert) {
        let mut reg = lock(&self.registry);
        if reserved.new && reg.ids.get(name) == Some(&reserved.id) {
            reg.ids.remove(name);
            if reg.next_id == reserved.id + 1 {
                reg.next_id = reserved.id;
            }
        }
        if reserved.was_clean {
            reg.clean.insert(name.to_string());
        }
    }

    fn registry_remove(&self, name: &str) -> Option<(u64, bool)> {
        let mut reg = lock(&self.registry);
        let id = reg.ids.remove(name)?;
        let was_clean = reg.clean.remove(name);
        Some((id, was_clean))
    }

    fn registry_restore(&self, name: &str, entry: (u64, bool)) {
        let mut reg = lock(&self.registry);
        reg.ids.insert(name.to_string(), entry.0);
        if entry.1 {
            reg.clean.insert(name.to_string());
        }
    }

    /// Publishes a successful mutation on `shard`: leader sequence (for
    /// replicas), shard + fleet versions (cache invalidation), counters.
    fn published_write(&self, shard: &FleetShard, guard: &ResilientEngine, edit: bool) {
        shard
            .leader_seq
            .store(guard.image().applied_seq, Ordering::Release);
        shard.version.fetch_add(1, Ordering::Release);
        shard.writes.fetch_add(1, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Release);
        if edit {
            self.edits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Executes one non-batch request against the fleet; the response
/// string is byte-identical to the single-engine path wherever the
/// protocol promises it (see module docs for the two counter caveats).
pub(crate) fn execute(shared: &ServeShared, fleet: &Fleet, req: &Request) -> String {
    if is_write_op(req) {
        shared.count_exclusive_op();
    } else {
        shared.count_shared_read();
    }
    run_one(shared, fleet, req, Pre::Direct)
}

fn run_one(shared: &ServeShared, fleet: &Fleet, req: &Request, pre: Pre) -> String {
    match req {
        Request::Upsert { name, body } => fleet_upsert(shared, fleet, name, body, pre),
        Request::Remove { name } => fleet_remove(shared, fleet, name, pre),
        Request::Gen { name } => fleet_gen(shared, fleet, name),
        Request::Learn => fleet_learn(shared, fleet),
        Request::Check => fleet_check(shared, fleet),
        Request::Contracts => match lock(&fleet.contracts).as_ref() {
            Some(contracts) => format!("ok contracts {}\n", contracts.len),
            None => "err not-learned\n".to_string(),
        },
        Request::Stats => fleet_stats(shared, fleet),
        Request::Checkpoint => fleet_checkpoint(shared, fleet),
        Request::Health => fleet_health(shared, fleet),
        Request::Fault { rest } => fleet_fault(shared, fleet, rest),
        // Routed before dispatch; a dispatch bug is answered, not
        // panicked over (same as the single-engine path).
        Request::Quit | Request::Batch(_) => "err internal invalid request routing\n".to_string(),
    }
}

fn deadline(shared: &ServeShared) -> String {
    shared.deadline_hit();
    "err deadline\n".to_string()
}

fn fleet_upsert(shared: &ServeShared, fleet: &Fleet, name: &str, body: &str, pre: Pre) -> String {
    let reserved = match pre {
        Pre::Upsert(reserved) => reserved,
        _ => fleet.reserve_upsert(name),
    };
    let shard = fleet.shard_for(name);
    let cutoff = Instant::now() + shared.limits().deadline;
    let Some(mut guard) = shard.leader.write(cutoff) else {
        fleet.rollback_upsert(name, &reserved);
        return deadline(shared);
    };
    match guard.upsert(name, body) {
        Ok(_) => {
            fleet.published_write(shard, &guard, true);
            match guard.config_generation(name) {
                Ok(Some(gen)) => format!("ok upsert {name} id={} gen={gen}\n", reserved.id),
                Ok(None) => format!("err unknown-config {name}\n"),
                Err(fault) => format!("{}\n", fault_line(&fault)),
            }
        }
        Err(fault) => {
            // The leader rebuilt from its image — the edit didn't land,
            // so the id reservation must not stick either.
            fleet.rollback_upsert(name, &reserved);
            format!("{}\n", fault_line(&fault))
        }
    }
}

fn fleet_remove(shared: &ServeShared, fleet: &Fleet, name: &str, pre: Pre) -> String {
    let removed = match pre {
        Pre::Remove(removed) => removed,
        _ => fleet.registry_remove(name),
    };
    let shard = fleet.shard_for(name);
    let cutoff = Instant::now() + shared.limits().deadline;
    let Some(mut guard) = shard.leader.write(cutoff) else {
        if let Some(entry) = removed {
            fleet.registry_restore(name, entry);
        }
        return deadline(shared);
    };
    match guard.remove(name) {
        Ok(Some(_)) => {
            fleet.published_write(shard, &guard, true);
            format!("ok remove {name}\n")
        }
        Ok(None) => {
            if let Some(entry) = removed {
                fleet.registry_restore(name, entry);
            }
            format!("err unknown-config {name}\n")
        }
        Err(fault) => {
            if let Some(entry) = removed {
                fleet.registry_restore(name, entry);
            }
            format!("{}\n", fault_line(&fault))
        }
    }
}

/// GEN prefers a read replica when the shard has one: poll the WAL tail
/// up to the last acked sequence (read-your-writes), then answer from
/// the replica image without touching the leader. Suppressed polls
/// (replica-lag / stale-read fault injection) serve the stale image —
/// the scenario the fault soak exercises. Replication errors fall back
/// to the leader.
fn fleet_gen(shared: &ServeShared, fleet: &Fleet, name: &str) -> String {
    let shard = fleet.shard_for(name);
    shard.reads.fetch_add(1, Ordering::Relaxed);
    if !shard.replicas.is_empty() {
        let skip_poll = shard
            .poll_suppress
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok();
        let leader_seq = shard.leader_seq.load(Ordering::Acquire);
        let mut replica = lock(&shard.replicas[0]);
        if skip_poll || replica.poll(leader_seq).is_ok() {
            return render_gen(Ok(replica.engine_mut().config_generation(name)), name);
        }
    }
    let cutoff = Instant::now() + shared.limits().deadline;
    match shard.leader.read(cutoff) {
        Some(guard) => render_gen(guard.config_generation(name), name),
        None => deadline(shared),
    }
}

/// LEARN takes every shard's write lock (in shard order — the one
/// global lock order every multi-shard path uses), mines a scratch
/// engine over the name-sorted union corpus (byte-identical contracts
/// to the unsharded engine), distributes the set to every leader
/// (WAL-logged, so replicas replay it), and reports the single engine's
/// mined/reused counters from the registry's clean set.
fn fleet_learn(shared: &ServeShared, fleet: &Fleet) -> String {
    let cutoff = Instant::now() + shared.limits().deadline;
    let mut guards = Vec::with_capacity(fleet.shards.len());
    for shard in &fleet.shards {
        match shard.leader.write(cutoff) {
            Some(guard) => guards.push(guard),
            None => return deadline(shared),
        }
    }
    let mut union: Vec<(String, String)> = guards
        .iter()
        .flat_map(|guard| guard.image().corpus())
        .collect();
    union.sort();
    let mut scratch = match Engine::from_corpus_with_lexer(
        &union,
        &fleet.metadata,
        fleet.lexer.clone(),
        fleet.options.clone(),
    ) {
        Ok(engine) => engine,
        // Unreachable in practice: the same inputs built the shards.
        Err(e) => return format!("err internal {}\n", one_line(&e.to_string())),
    };
    scratch.relearn();
    let set = match scratch.contracts() {
        Some(set) => set.clone(),
        None => return "err not-learned\n".to_string(),
    };
    let json = set.to_json();
    for (i, guard) in guards.iter_mut().enumerate() {
        match guard.set_contracts_json(&json) {
            Ok(_) => fleet.published_write(&fleet.shards[i], guard, false),
            Err(fault) => {
                // Earlier shards already swapped; conservatively
                // invalidate everything so no stale parts survive the
                // half-applied learn.
                for shard in &fleet.shards {
                    shard.version.fetch_add(1, Ordering::Release);
                }
                fleet.version.fetch_add(1, Ordering::Release);
                return format!("{}\n", fault_line(&fault));
            }
        }
    }
    let n = set.len();
    let (mined, reused) = {
        let mut reg = lock(&fleet.registry);
        let total = reg.ids.len() as u64;
        let (mined, reused) = if fleet.options.delta_learn {
            let reused = reg.clean.len() as u64;
            (total - reused, reused)
        } else {
            (total, 0)
        };
        if fleet.options.delta_learn {
            reg.clean = reg.ids.keys().cloned().collect();
        }
        reg.mined_last_learn = mined;
        reg.reused_last_learn = reused;
        reg.contracts_edits = fleet.edits.load(Ordering::Relaxed);
        (mined, reused)
    };
    *lock(&fleet.contracts) = Some(FleetContracts { len: n, set });
    fleet.relearns.fetch_add(1, Ordering::Relaxed);
    format!("ok learn {n} contracts mined={mined} reused={reused}\n")
}

/// CHECK: per-shard parts (cached for clean shards, recomputed under
/// the leader's write lock for dirty ones, served by a replica when the
/// leader faults), merged in deterministic shard order into the
/// byte-identical single-engine report.
fn fleet_check(shared: &ServeShared, fleet: &Fleet) -> String {
    let fleet_version = fleet.version.load(Ordering::Acquire);
    if let Some((version, text)) = lock(&fleet.check_cache).as_ref() {
        if *version == fleet_version {
            return text.clone();
        }
    }
    let contracts = match lock(&fleet.contracts).as_ref() {
        // Cloned so the CHECK merge never holds the contracts lock
        // while acquiring shard locks (LEARN takes them the other way
        // around).
        Some(contracts) => contracts.set.clone(),
        None => return "err no contracts loaded\n".to_string(),
    };
    let cutoff = Instant::now() + shared.limits().deadline;
    let mut parts: Vec<Arc<ShardCheckAggregate>> = Vec::with_capacity(fleet.shards.len());
    let mut dirty = 0usize;
    let mut reused = 0usize;
    let mut resolution_invalidated = false;
    for shard in &fleet.shards {
        let mut slot = lock(&shard.parts);
        let cached_version = shard.version.load(Ordering::Acquire);
        if let Some((version, cached)) = slot.as_ref() {
            if *version == cached_version {
                // Clean shard: the single engine would have reused every
                // one of its configurations (the cached parts still
                // carry the dirty counters of the check that computed
                // them, so the counters are summed here, not there).
                reused += cached.parts.configs.len();
                parts.push(Arc::clone(cached));
                continue;
            }
        }
        let Some(mut guard) = shard.leader.write(cutoff) else {
            return deadline(shared);
        };
        // Re-read under the write lock: the version is stable while we
        // hold it, so the cache entry is keyed consistently.
        let shard_version = shard.version.load(Ordering::Acquire);
        let computed = match guard.check_parts() {
            Ok(computed) => computed,
            Err(fault) => {
                drop(guard); // the leader already rebuilt; free it
                match failover_parts(shard, &fault) {
                    Some(computed) => computed,
                    None => return format!("{}\n", fault_line(&fault)),
                }
            }
        };
        shard.reads.fetch_add(1, Ordering::Relaxed);
        dirty += computed.dirty_configs;
        reused += computed.reused_configs;
        resolution_invalidated |= computed.resolution_invalidated;
        let arc = Arc::new(ShardCheckAggregate::new(computed));
        *slot = Some((shard_version, Arc::clone(&arc)));
        parts.push(arc);
    }
    let refs: Vec<&ShardCheckAggregate> = parts.iter().map(|p| p.as_ref()).collect();
    let report = merge_check_aggregates(&contracts, &refs);
    let total_configs: usize = parts.iter().map(|p| p.parts.configs.len()).sum();
    let first = render_fleet_check(&report, dirty, reused);
    // A repeat CHECK at this fleet version reuses everything — the
    // single engine's cached-report path reports dirty=0, reused=all.
    let replay = render_fleet_check(&report, 0, total_configs);
    *lock(&fleet.check_cache) = Some((fleet_version, replay));
    *lock(&fleet.last_check) = Some(EngineCheckStats {
        dirty_configs: dirty,
        reused_configs: reused,
        resolution_invalidated,
        witness_indexes_rebuilt: 0,
        witness_indexes_patched: 0,
    });
    first
}

/// Shard-leader CHECK failover: when the leader faulted mid-check (it
/// has already rebuilt from its image) or its storage degraded (the
/// shard is quarantined read-only), serve the parts from a replica
/// caught up to the last acked write. Only recovery/storage faults fail
/// over — a missing-contracts fault would fail identically on the
/// replica.
fn failover_parts(shard: &FleetShard, fault: &EngineFault) -> Option<CheckParts> {
    if !matches!(
        fault,
        EngineFault::Panicked(_) | EngineFault::Poisoned | EngineFault::StorageDegraded(_)
    ) {
        return None;
    }
    let leader_seq = shard.leader_seq.load(Ordering::Acquire);
    for replica in &shard.replicas {
        let mut replica = lock(replica);
        if replica.poll(leader_seq).is_err() {
            continue;
        }
        if let Ok(parts) = replica.engine_mut().check_parts() {
            shard.reads.fetch_add(1, Ordering::Relaxed);
            return Some(parts);
        }
    }
    None
}

/// Renders the merged fleet report in the single engine's CHECK format.
fn render_fleet_check(report: &FleetCheckReport, dirty: usize, reused: usize) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{v}\n"));
    }
    out.push_str(&format!(
        "ok check {} violations; coverage {:.1}% of {} lines; dirty={} reused={}\n",
        report.violations.len(),
        report.coverage_fraction() * 100.0,
        report.total_lines,
        dirty,
        reused,
    ));
    out
}

/// STATS: per-shard engine snapshots aggregated in shard order, plus
/// the v8 `fleet` object (per-shard counters, replica lag, router
/// distribution, and one-pass totals).
fn fleet_stats(shared: &ServeShared, fleet: &Fleet) -> String {
    let cutoff = Instant::now() + shared.limits().deadline;
    let mut shard_stats: Vec<EngineStats> = Vec::with_capacity(fleet.shards.len());
    for shard in &fleet.shards {
        let Some(mut guard) = shard.leader.write(cutoff) else {
            return deadline(shared);
        };
        match guard.snapshot_stats() {
            Ok(stats) => shard_stats.push(stats),
            Err(fault) => return format!("{}\n", fault_line(&fault)),
        }
    }
    let mut stats = EngineStats::default();
    let mut robustness = RobustnessStats::default();
    let mut storage = StorageStats::default();
    let mut fleet_shards = Vec::with_capacity(fleet.shards.len());
    for (i, s) in shard_stats.iter().enumerate() {
        stats.configs += s.configs;
        stats.lines += s.lines;
        // Approximate: a pattern shared by configs on two shards counts
        // once per shard (each shard interns independently).
        stats.patterns += s.patterns;
        stats.edits += s.edits;
        stats.dirty_configs += s.dirty_configs;
        stats.staleness = stats.staleness.max(s.staleness);
        stats.lex_cache_hits += s.lex_cache_hits;
        stats.lex_cache_misses += s.lex_cache_misses;
        stats.lex_cache_evictions += s.lex_cache_evictions;
        stats.generations.extend(s.generations.iter().cloned());
        if let Some(r) = &s.robustness {
            robustness.accumulate(r);
        }
        if let Some(st) = &s.storage {
            storage.accumulate(st);
        }
        let shard = &fleet.shards[i];
        let leader_seq = shard.leader_seq.load(Ordering::Acquire);
        let mut replicas = Vec::with_capacity(shard.replicas.len());
        for replica in &shard.replicas {
            let replica = lock(replica);
            replicas.push(FleetReplicaStats {
                applied_seq: replica.applied_seq(),
                lag: replica.lag(leader_seq),
                resyncs: replica.resyncs(),
                reads: replica.reads(),
            });
        }
        fleet_shards.push(FleetShardStats {
            shard: i,
            configs: s.configs,
            applied_seq: leader_seq,
            reads: shard.reads.load(Ordering::Relaxed),
            writes: shard.writes.load(Ordering::Relaxed),
            robustness: s.robustness.unwrap_or_default(),
            replicas,
        });
    }
    // The union dataset is name-sorted; shards partition the names.
    stats.generations.sort_by(|a, b| a.0.cmp(&b.0));
    let (rejected, deadlines) = shared.serve_overlay();
    robustness.requests_rejected = rejected;
    robustness.deadlines_hit = deadlines;
    stats.robustness = Some(robustness);
    stats.storage = Some(storage);
    stats.contracts = lock(&fleet.contracts).as_ref().map(|c| c.len);
    stats.relearns = fleet.relearns.load(Ordering::Relaxed);
    stats.last_check = *lock(&fleet.last_check);
    {
        let reg = lock(&fleet.registry);
        stats.learn_delta = LearnDeltaStats {
            enabled: fleet.options.delta_learn,
            sketches: reg.clean.len(),
            dirty: reg.ids.len().saturating_sub(reg.clean.len()),
            mined_last_learn: reg.mined_last_learn,
            reused_last_learn: reg.reused_last_learn,
            contracts_edits: reg.contracts_edits,
        };
    }
    stats.serve = Some(shared.transport_snapshot());
    let router: Vec<usize> = fleet_shards.iter().map(|s| s.configs).collect();
    let totals = FleetStats::rollup(&fleet_shards);
    stats.fleet = Some(FleetStats {
        shards: fleet_shards,
        router,
        totals,
    });
    format!("ok stats {}\n", stats.to_json().render())
}

/// HEALTH: per-shard storage counters accumulated under shared read
/// locks, plus the shard/degraded-shard census. The fleet is degraded
/// when any shard leader is.
fn fleet_health(shared: &ServeShared, fleet: &Fleet) -> String {
    let cutoff = Instant::now() + shared.limits().deadline;
    let mut storage = StorageStats::default();
    let mut degraded_shards = 0usize;
    for shard in &fleet.shards {
        let Some(guard) = shard.leader.read(cutoff) else {
            return deadline(shared);
        };
        let s = guard.storage_stats();
        if s.degraded {
            degraded_shards += 1;
        }
        storage.accumulate(&s);
    }
    format!(
        "ok health {} faults={} retries={} transitions={} recoveries={} shards={} degraded_shards={}\n",
        if storage.degraded { "degraded" } else { "healthy" },
        storage.faults_injected,
        storage.retries,
        storage.degraded_transitions,
        storage.recoveries,
        fleet.shards.len(),
        degraded_shards,
    )
}

fn fleet_checkpoint(shared: &ServeShared, fleet: &Fleet) -> String {
    let cutoff = Instant::now() + shared.limits().deadline;
    for shard in &fleet.shards {
        let Some(mut guard) = shard.leader.write(cutoff) else {
            return deadline(shared);
        };
        if !guard.checkpoint() {
            return "err persist checkpoint failed or no --state-dir\n".to_string();
        }
    }
    "ok checkpoint\n".to_string()
}

/// The FAULT verb, extended with fleet scenarios. `FAULT <op> [shard]`
/// arms a deterministic panic on that shard's leader (default shard 0);
/// `FAULT replica-lag [shard] [n]` suppresses the next n replica polls
/// (reads serve the stale image and report real lag); `FAULT stale-read
/// [shard]` is one suppressed poll.
fn fleet_fault(shared: &ServeShared, fleet: &Fleet, rest: &str) -> String {
    if !shared.faults_enabled() {
        shared.reject();
        return "err unknown-command \"FAULT\"\n".to_string();
    }
    let bad = |shared: &ServeShared| {
        shared.reject();
        format!("err bad-request unknown fault kind {rest:?}\n")
    };
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    let shard_at = |i: usize| -> Option<usize> {
        match tokens.get(i) {
            None => Some(0),
            Some(t) => t.parse().ok().filter(|s| *s < fleet.shards.len()),
        }
    };
    match tokens.first().copied() {
        Some("replica-lag") => match shard_at(1) {
            Some(s) => {
                let n = match tokens.get(2) {
                    None => 3,
                    Some(t) => match t.parse::<u64>() {
                        Ok(n) => n,
                        Err(_) => return bad(shared),
                    },
                };
                fleet.shards[s].poll_suppress.fetch_add(n, Ordering::AcqRel);
                format!("ok fault armed {rest}\n")
            }
            None => bad(shared),
        },
        Some("stale-read") => match shard_at(1) {
            Some(s) => {
                fleet.shards[s].poll_suppress.fetch_add(1, Ordering::AcqRel);
                format!("ok fault armed {rest}\n")
            }
            None => bad(shared),
        },
        Some(op) => match (OpKind::parse(op), shard_at(1)) {
            (Some(kind), Some(s)) => {
                let cutoff = Instant::now() + shared.limits().deadline;
                match fleet.shards[s].leader.write(cutoff) {
                    Some(mut guard) => {
                        guard.arm_panic(kind);
                        format!("ok fault armed {rest}\n")
                    }
                    None => deadline(shared),
                }
            }
            _ => bad(shared),
        },
        None => bad(shared),
    }
}

fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// One queued batch sub-request: its item index (for in-order response
/// reassembly) and the registry effects the walk already applied.
struct Queued<'a> {
    index: usize,
    req: &'a Request,
    pre: Pre,
}

/// BATCH against the fleet: sub-requests are walked in order (registry
/// ids assigned sequentially, exactly like the single engine's
/// serialized batch), grouped into per-shard queues, and the queues
/// executed concurrently — one thread per shard with pending work.
/// Global verbs (LEARN/CHECK/STATS/CHECKPOINT/FAULT/CONTRACTS) are
/// barriers: pending queues flush first, so every sub-request observes
/// the same engine states it would have under one serialized lock.
/// Responses are reassembled by item index, then the `ok batch` trailer
/// — byte-identical to `--shards 1`.
pub(crate) fn execute_batch(shared: &ServeShared, fleet: &Fleet, items: &[BatchItem]) -> String {
    let any_write = items
        .iter()
        .any(|item| matches!(item, BatchItem::Run(req) if is_write_op(req)));
    if any_write {
        shared.count_exclusive_op();
    } else {
        shared.count_shared_read();
    }
    let mut slots: Vec<Option<String>> = vec![None; items.len()];
    let mut queues: Vec<Vec<Queued>> = (0..fleet.shards.len()).map(|_| Vec::new()).collect();
    for (index, item) in items.iter().enumerate() {
        match item {
            BatchItem::Error { line, reject } => {
                if *reject {
                    shared.reject();
                }
                slots[index] = Some(format!("{line}\n"));
            }
            BatchItem::Run(req) => match req {
                Request::Upsert { name, .. } => {
                    let pre = Pre::Upsert(fleet.reserve_upsert(name));
                    queues[self::route(fleet, name)].push(Queued { index, req, pre });
                }
                Request::Remove { name } => {
                    // Applied at walk time so a later upsert of the same
                    // name in this batch draws a fresh id, like the
                    // single engine's serialized order would.
                    let pre = Pre::Remove(fleet.registry_remove(name));
                    queues[self::route(fleet, name)].push(Queued { index, req, pre });
                }
                Request::Gen { name } => {
                    queues[self::route(fleet, name)].push(Queued {
                        index,
                        req,
                        pre: Pre::Direct,
                    });
                }
                _ => {
                    flush(shared, fleet, &mut queues, &mut slots);
                    slots[index] = Some(run_one(shared, fleet, req, Pre::Direct));
                }
            },
        }
    }
    flush(shared, fleet, &mut queues, &mut slots);
    let mut out = String::new();
    for slot in slots {
        out.push_str(&slot.unwrap_or_else(|| "err internal batch worker failed\n".to_string()));
    }
    out.push_str(&format!("ok batch {}\n", items.len()));
    out
}

fn route(fleet: &Fleet, name: &str) -> usize {
    fleet.router.route(name)
}

/// Drains the per-shard queues concurrently (scoped threads, one per
/// shard with work; a lone queue runs inline) and writes responses into
/// their item slots.
fn flush(
    shared: &ServeShared,
    fleet: &Fleet,
    queues: &mut [Vec<Queued>],
    slots: &mut [Option<String>],
) {
    let pending = queues.iter().filter(|q| !q.is_empty()).count();
    if pending == 0 {
        return;
    }
    let drained: Vec<Vec<Queued>> = queues.iter_mut().map(std::mem::take).collect();
    if pending == 1 {
        for queue in drained {
            for q in queue {
                slots[q.index] = Some(run_one(shared, fleet, q.req, q.pre));
            }
        }
        return;
    }
    let outputs: Vec<Vec<(usize, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = drained
            .into_iter()
            .filter(|queue| !queue.is_empty())
            .map(|queue| {
                scope.spawn(move || {
                    queue
                        .into_iter()
                        .map(|q| (q.index, run_one(shared, fleet, q.req, q.pre)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap_or_default())
            .collect()
    });
    for (index, text) in outputs.into_iter().flatten() {
        slots[index] = Some(text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ServeArgs;
    use crate::serve::{serve_session, ServeLimits};
    use concord_core::LearnParams;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concord-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    /// Writes the serve tests' six-config corpus as files and returns
    /// the glob that selects them.
    fn corpus_glob(tag: &str) -> String {
        let dir = temp_dir(&format!("corpus-{tag}"));
        for i in 0..6 {
            let text = format!(
                "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                100 + i,
                250 + i
            );
            std::fs::write(dir.join(format!("dev{i}.cfg")), text).expect("write config");
        }
        format!("{}/*.cfg", dir.display())
    }

    fn serve_args(
        glob: &str,
        shards: usize,
        replicas: usize,
        state_dir: Option<&Path>,
    ) -> ServeArgs {
        ServeArgs {
            configs: Some(glob.to_string()),
            contracts: None,
            metadata: None,
            tokens: None,
            params: LearnParams::default(),
            embed: true,
            parallelism: 1,
            staleness: 0.2,
            listen: None,
            once: false,
            workers: 4,
            max_conns: 0,
            deadline_ms: 5000,
            max_line_bytes: 64 * 1024,
            max_body_bytes: 1024 * 1024,
            state_dir: state_dir.map(|d| d.display().to_string()),
            shards,
            replicas,
            lex_cache_cap: 64 * 1024,
            enable_faults: true,
            full_relearn: false,
        }
    }

    fn fleet_shared(args: &ServeArgs) -> ServeShared {
        let fleet = build_fleet(args).expect("fleet builds");
        ServeShared::new_fleet(fleet, ServeLimits::default(), args.enable_faults)
    }

    /// The unsharded oracle over the exact same inputs and options.
    fn single_shared(args: &ServeArgs) -> ServeShared {
        let (lexer, corpus, metadata, options) = engine_inputs(args).expect("inputs");
        let engine = ResilientEngine::new(&corpus, &metadata, lexer, options).expect("engine");
        ServeShared::new(engine, ServeLimits::default(), args.enable_faults)
    }

    fn session(shared: &ServeShared, script: &str) -> String {
        let mut out = Vec::new();
        serve_session(shared, Cursor::new(script.as_bytes().to_vec()), &mut out)
            .expect("session runs");
        String::from_utf8(out).expect("utf8 output")
    }

    /// The full interactive workflow — learn, edit, check, gen, remove,
    /// re-learn — answers byte-identically at 1 and 3 shards. The edits
    /// reuse known line shapes so no shard drops its cache for a
    /// resolution change (the one documented counter divergence).
    #[test]
    fn fleet_session_is_byte_identical_to_single_engine() {
        let glob = corpus_glob("identity");
        let script = "LEARN\nCHECK\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nCHECK\nGEN dev0\n\
                      GEN dev3\nCONTRACTS\nUPSERT dev9\nhostname DEV109\nrouter bgp 65000\n\
                      vlan 999\n.\nCHECK\nLEARN\nREMOVE dev3\nGEN nope\nCHECK\nLEARN\nQUIT\n";
        let single = session(&single_shared(&serve_args(&glob, 1, 0, None)), script);
        let fleet = session(&fleet_shared(&serve_args(&glob, 3, 0, None)), script);
        assert_eq!(single, fleet);
        // The script exercised real work, not just error paths.
        assert!(single.contains("ok learn"), "{single}");
        assert!(single.contains("missing required line"), "{single}");
        assert!(single.contains("dirty=1 reused=5"), "{single}");
        assert!(single.contains("ok upsert dev9 id=6"), "{single}");
        // Both sessions edited dev0 and dev9 since the first LEARN.
        assert!(single.contains("mined=2 reused=5"), "{single}");
    }

    /// A BATCH against the fleet (sub-requests fanned out per shard,
    /// responses reassembled by index) equals the same commands issued
    /// singly, and equals the single engine's batch, byte for byte.
    #[test]
    fn fleet_batch_matches_singles_and_single_engine() {
        let glob = corpus_glob("batch");
        let singles_script = "LEARN\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nGEN dev0\n\
                              GEN dev5\nREMOVE dev2\nCHECK\nQUIT\n";
        let batch_script = "LEARN\nBATCH 5\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nGEN dev0\n\
                            GEN dev5\nREMOVE dev2\nCHECK\nQUIT\n";
        let args = serve_args(&glob, 3, 0, None);
        let singles = session(&fleet_shared(&args), singles_script);
        let batched = session(&fleet_shared(&args), batch_script);
        let singles_body = singles.strip_suffix("ok bye\n").expect("quit ack");
        assert_eq!(batched, format!("{singles_body}ok batch 5\nok bye\n"));
        let oracle = session(&single_shared(&serve_args(&glob, 1, 0, None)), batch_script);
        assert_eq!(batched, oracle);
    }

    /// A REMOVE and an UPSERT of the same name inside one batch must
    /// assign a fresh id (walk-order registry effects), exactly like the
    /// single engine's serialized batch.
    #[test]
    fn fleet_batch_remove_then_upsert_assigns_fresh_id() {
        let glob = corpus_glob("batch-reuse");
        let script = "BATCH 2\nREMOVE dev1\nUPSERT dev1\nhostname DEV101\nvlan 251\n.\nQUIT\n";
        let fleet = session(&fleet_shared(&serve_args(&glob, 3, 0, None)), script);
        let single = session(&single_shared(&serve_args(&glob, 1, 0, None)), script);
        assert_eq!(fleet, single);
        assert!(fleet.contains("ok upsert dev1 id=6"), "{fleet}");
    }

    /// STATS at shards > 1 reports the v8 `fleet` object, with totals
    /// equal to the per-shard sums and the router distribution covering
    /// the whole corpus.
    #[test]
    fn fleet_stats_reports_v8_fleet_object_with_consistent_totals() {
        let glob = corpus_glob("stats");
        let shared = fleet_shared(&serve_args(&glob, 3, 0, None));
        let out = session(
            &shared,
            "LEARN\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nCHECK\nGEN dev1\nSTATS\nQUIT\n",
        );
        let line = out
            .lines()
            .find(|l| l.starts_with("ok stats "))
            .expect("stats line");
        let json =
            concord_json::Json::parse(line.trim_start_matches("ok stats ")).expect("stats parse");
        let fleet = &json["fleet"];
        let shards = match fleet["shards"] {
            concord_json::Json::Array(ref v) => v,
            _ => panic!("fleet.shards missing: {line}"),
        };
        assert_eq!(shards.len(), 3);
        let sum = |key: &str| -> u64 {
            shards
                .iter()
                .map(|s| s[key].as_u64().expect("shard counter"))
                .sum()
        };
        assert_eq!(fleet["totals"]["configs"].as_u64(), Some(sum("configs")));
        assert_eq!(fleet["totals"]["reads"].as_u64(), Some(sum("reads")));
        assert_eq!(fleet["totals"]["writes"].as_u64(), Some(sum("writes")));
        assert_eq!(sum("configs"), 6);
        assert_eq!(
            sum("writes"),
            4,
            "3 learn distributions + 1 upsert land on shards"
        );
        assert_eq!(json["configs"].as_u64(), Some(6));
        // The router distribution is the per-shard config counts.
        let router_total: u64 = match fleet["router"] {
            concord_json::Json::Array(ref v) => v.iter().map(|c| c.as_u64().unwrap_or(0)).sum(),
            _ => panic!("fleet.router missing: {line}"),
        };
        assert_eq!(router_total, 6);
    }

    /// With `--replicas`, GEN is served by the WAL-tailing replica
    /// (read-your-writes: an acked upsert is visible), and a shard
    /// leader panicking mid-CHECK fails over to its replica — the
    /// session answers, and the next CHECK is byte-identical to the
    /// unsharded oracle's.
    #[test]
    fn replica_serves_gen_and_check_fails_over_on_shard_crash() {
        let glob = corpus_glob("failover");
        let dir = temp_dir("failover-state");
        let args = serve_args(&glob, 2, 1, Some(&dir));
        let shared = fleet_shared(&args);
        // Arm the panic on the shard that owns dev0, so the dirty
        // recheck after the upsert is what trips it.
        let shard = concord_engine::ShardRouter::new(2).route("dev0");
        let script = format!(
            "LEARN\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nGEN dev0\nFAULT check {shard}\n\
             CHECK\nCHECK\nQUIT\n"
        );
        let out = session(&shared, &script);
        // Replica GEN sees the acked write.
        assert!(out.contains("ok gen dev0 1"), "{out}");
        assert!(out.contains("ok fault armed"), "{out}");
        // The faulted CHECK still answered (replica parts), with the
        // edit's violation present.
        assert!(out.contains("missing required line"), "{out}");
        assert!(!out.contains("err internal"), "{out}");
        // And the steady-state CHECK matches the oracle byte for byte.
        let oracle = session(
            &single_shared(&serve_args(&glob, 1, 0, None)),
            "LEARN\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nGEN dev0\nCHECK\nCHECK\nQUIT\n",
        );
        let last = |s: &str| {
            s.lines()
                .rfind(|l| l.starts_with("ok check"))
                .map(str::to_string)
                .expect("a check summary")
        };
        assert_eq!(last(&out), last(&oracle));
        assert!(last(&out).contains("dirty=0 reused=6"), "{out}");
    }

    /// The fleet fault verbs: `FAULT stale-read` suppresses one replica
    /// poll (the next GEN serves the stale image and only then catches
    /// up), and `FAULT replica-lag` suppresses a run of them.
    #[test]
    fn stale_read_and_replica_lag_faults_serve_stale_then_converge() {
        let glob = corpus_glob("stale");
        let dir = temp_dir("stale-state");
        let args = serve_args(&glob, 1, 1, Some(&dir));
        let shared = fleet_shared(&args);
        let out = session(
            &shared,
            "FAULT stale-read 0\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nGEN dev0\nGEN dev0\n\
             FAULT replica-lag 0 2\nUPSERT dev0\nhostname DEV100\nvlan 251\n.\nGEN dev0\n\
             GEN dev0\nGEN dev0\nFAULT bogus-kind\nQUIT\n",
        );
        let gens: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("ok gen dev0 "))
            .collect();
        // Stale read, then caught up; two lagged reads, then caught up.
        assert_eq!(
            gens,
            vec![
                "ok gen dev0 0",
                "ok gen dev0 1",
                "ok gen dev0 1",
                "ok gen dev0 1",
                "ok gen dev0 2"
            ],
            "{out}"
        );
        assert!(
            out.contains("err bad-request unknown fault kind \"bogus-kind\""),
            "{out}"
        );
    }

    /// Reopening a fleet state directory under a different `--shards`
    /// is refused: the router would re-route devices away from the
    /// shards that hold them.
    #[test]
    fn reopening_with_a_different_shard_count_is_refused() {
        let glob = corpus_glob("manifest");
        let dir = temp_dir("manifest-state");
        let args = serve_args(&glob, 2, 0, Some(&dir));
        drop(fleet_shared(&args));
        let again = serve_args(&glob, 4, 0, Some(&dir));
        let err = match build_fleet(&again) {
            Ok(_) => panic!("shard count mismatch must refuse"),
            Err(e) => e.to_string(),
        };
        assert!(err.contains("--shards 2"), "unexpected error: {err}");
    }

    /// A sharded fleet resumes from its state directories: edits from a
    /// previous process survive, and answers match a from-scratch oracle
    /// over the surviving corpus.
    #[test]
    fn fleet_resumes_from_state_directories() {
        let glob = corpus_glob("resume");
        let dir = temp_dir("resume-state");
        let args = serve_args(&glob, 2, 0, Some(&dir));
        {
            let shared = fleet_shared(&args);
            let out = session(
                &shared,
                "LEARN\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nREMOVE dev4\nQUIT\n",
            );
            assert!(out.contains("ok remove dev4"), "{out}");
        }
        let shared = fleet_shared(&args);
        let out = session(&shared, "GEN dev0\nGEN dev4\nCONTRACTS\nCHECK\nQUIT\n");
        assert!(out.contains("ok gen dev0 1"), "{out}");
        assert!(out.contains("err unknown-config dev4"), "{out}");
        assert!(out.contains("ok contracts"), "{out}");
        assert!(out.contains("missing required line"), "{out}");
        assert!(out.contains("ok check"), "{out}");
    }
}
