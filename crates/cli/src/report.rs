//! Self-contained HTML violation report (§4: "a user-friendly HTML output
//! for viewing, filtering, and searching the violations").

use concord_core::{CheckReport, ContractSet};

/// Renders the check report as a single-file HTML page with client-side
/// filtering.
pub fn html_report(contracts: &ContractSet, report: &CheckReport) -> String {
    let summary = report.coverage.summary();
    let mut rows = String::new();
    for v in &report.violations {
        let line = v
            .line_no
            .map(|n| n.to_string())
            .unwrap_or_else(|| "—".to_string());
        // The operator-feedback loop (§4): each row carries a copy-ready
        // suppression key — the violated contract's first rendered line —
        // that drops the contract when added to a `--suppress` file.
        let suppress_key = contracts
            .contracts
            .get(v.contract_index)
            .map(|c| c.describe().lines().next().unwrap_or_default().to_string())
            .unwrap_or_default();
        rows.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td><code>{}</code></td><td><code class=\"sup\">{}</code></td></tr>\n",
            escape(&v.config),
            line,
            escape(&v.category),
            escape(&v.message),
            escape(&v.line),
            escape(&suppress_key),
        ));
    }
    let mut categories = String::new();
    for (category, count) in contracts.count_by_category() {
        categories.push_str(&format!(
            "<li><code>{}</code>: {count}</li>\n",
            escape(category)
        ));
    }
    let mut coverage_rows = String::new();
    for config in &report.coverage.per_config {
        let fraction = if config.total_lines == 0 {
            0.0
        } else {
            config.covered.len() as f64 / config.total_lines as f64
        };
        coverage_rows.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.1}%</td></tr>\n",
            escape(&config.name),
            config.total_lines,
            config.covered.len(),
            fraction * 100.0,
        ));
    }
    format!(
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Concord check report</title>
<style>
  body {{ font-family: system-ui, sans-serif; margin: 2rem; }}
  table {{ border-collapse: collapse; width: 100%; }}
  th, td {{ border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }}
  th {{ background: #f0f0f0; }}
  input {{ padding: 0.4rem; width: 24rem; margin-bottom: 1rem; }}
  code {{ background: #f6f6f6; }}
</style>
</head>
<body>
<h1>Concord check report</h1>
<p><strong>{violations}</strong> violation(s) ·
   coverage <strong>{coverage:.1}%</strong> of {lines} lines ·
   {contracts} contracts</p>
<ul>
{categories}</ul>
<details>
<summary>Per-configuration coverage</summary>
<table>
<thead><tr><th>config</th><th>lines</th><th>covered</th><th>coverage</th></tr></thead>
<tbody>
{coverage_rows}</tbody>
</table>
</details>
<input id="filter" placeholder="filter violations (config, category, text)..." oninput="applyFilter()">
<table id="violations">
<thead><tr><th>config</th><th>line</th><th>category</th><th>message</th><th>text</th><th>suppress key</th></tr></thead>
<tbody>
{rows}</tbody>
</table>
<script>
function applyFilter() {{
  const q = document.getElementById('filter').value.toLowerCase();
  for (const row of document.querySelectorAll('#violations tbody tr')) {{
    row.style.display = row.textContent.toLowerCase().includes(q) ? '' : 'none';
  }}
}}
</script>
</body>
</html>
"#,
        violations = report.violations.len(),
        coverage = summary.fraction * 100.0,
        lines = summary.total_lines,
        contracts = contracts.len(),
        categories = categories,
        coverage_rows = coverage_rows,
        rows = rows,
    )
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_core::{check, learn, Dataset, LearnParams};

    #[test]
    fn report_contains_rows_and_escapes() {
        let configs = vec![
            ("a".to_string(), "needed <tag>\n".to_string()),
            ("b".to_string(), "needed <tag>\n".to_string()),
            ("c".to_string(), "needed <tag>\n".to_string()),
            ("d".to_string(), "needed <tag>\n".to_string()),
            ("e".to_string(), "needed <tag>\n".to_string()),
        ];
        let train = Dataset::from_named_texts(&configs, &[]).unwrap();
        let contracts = learn(&train, &LearnParams::default());
        assert!(!contracts.is_empty());

        let test = Dataset::from_named_texts(
            &[("broken".to_string(), "something else\n".to_string())],
            &[],
        )
        .unwrap();
        let report = check(&contracts, &test);
        let html = html_report(&contracts, &report);
        assert!(html.contains("<html"));
        assert!(html.contains("broken") || html.contains("violation"));
        assert!(html.contains("&lt;tag&gt;"), "angle brackets escaped");
        assert!(!html.contains("needed <tag>"));
        // The suppression key column carries the violated contract's
        // first rendered line.
        assert!(html.contains("suppress key"));
        assert!(html.contains("exists l ~"), "{html}");
    }
}
