//! The CI/CD workflow of Figure 10: learn from pre-change configurations,
//! check post-change configurations.
//!
//! In the paper's production deployment, every pull request to the
//! configuration-generation service runs the service both before and
//! after the change, then Concord learns contracts from the pre-change
//! output and checks the post-change output; violations block the pull
//! request pending review. `concord ci` packages that pipeline as one
//! command.

use std::collections::HashSet;

use concord_core::{check_parallel, learn, Contract};

use crate::args::CiArgs;
use crate::{load_dataset, read_file, CliError};

/// Runs the CI pipeline; returns the process exit code (0 = clean,
/// 1 = violations, so the pull request is blocked).
pub fn run_ci(args: &CiArgs, out: &mut dyn std::io::Write) -> Result<i32, CliError> {
    let pre = load_dataset(
        &args.pre,
        args.metadata.as_deref(),
        args.tokens.as_deref(),
        true,
        args.parallelism,
    )?;
    let mut contracts = learn(&pre, &args.params);
    // Production default (§5.4): ordering contracts learn the generated
    // line order, which is interchangeable; drop them unless asked.
    if !args.keep_ordering {
        contracts
            .contracts
            .retain(|c| !matches!(c, Contract::Ordering { .. }));
    }
    if let Some(path) = &args.suppress {
        let suppressions = load_suppressions(path)?;
        let before = contracts.len();
        contracts
            .contracts
            .retain(|c| !is_suppressed(c, &suppressions));
        let _ = writeln!(
            out,
            "suppressed {} contracts via {path}",
            before - contracts.len()
        );
    }
    let _ = writeln!(
        out,
        "learned {} contracts from pre-change configs ({} files)",
        contracts.len(),
        pre.configs.len()
    );

    let post = load_dataset(
        &args.post,
        args.metadata.as_deref(),
        args.tokens.as_deref(),
        true,
        args.parallelism,
    )?;
    let report = check_parallel(&contracts, &post, args.parallelism);
    for v in &report.violations {
        let _ = writeln!(out, "{v}");
    }
    if report.violations.is_empty() {
        let _ = writeln!(out, "CI PASS: no contract violations");
        Ok(0)
    } else {
        let _ = writeln!(
            out,
            "CI BLOCK: {} violation(s) - review required",
            report.violations.len()
        );
        Ok(1)
    }
}

/// Loads a suppression file: one case-sensitive substring per line
/// (matched against the contract's rendered description), `#` comments.
pub fn load_suppressions(path: &str) -> Result<Vec<String>, CliError> {
    let text = read_file(path)?;
    Ok(normalize_suppressions(
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect(),
    ))
}

/// Returns `true` when a contract matches any suppression entry.
pub fn is_suppressed(contract: &Contract, suppressions: &[String]) -> bool {
    if suppressions.is_empty() {
        return false;
    }
    let description = contract.describe();
    suppressions.iter().any(|s| description.contains(s))
}

/// Deduplicates suppression entries (the UI appends blindly).
pub fn normalize_suppressions(entries: Vec<String>) -> Vec<String> {
    let mut seen = HashSet::new();
    entries
        .into_iter()
        .filter(|e| seen.insert(e.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_matches_substring() {
        let contract = Contract::Present {
            pattern: "/router bgp [a:num]".to_string(),
        };
        assert!(is_suppressed(&contract, &["router bgp".to_string()]));
        assert!(!is_suppressed(&contract, &["vlan".to_string()]));
        assert!(!is_suppressed(&contract, &[]));
    }

    #[test]
    fn normalize_dedupes_preserving_order() {
        let entries = vec!["a".to_string(), "b".to_string(), "a".to_string()];
        assert_eq!(normalize_suppressions(entries), vec!["a", "b"]);
    }

    #[test]
    fn ci_end_to_end() {
        let dir = std::env::temp_dir().join(format!("concord-ci-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("pre")).unwrap();
        std::fs::create_dir_all(dir.join("post")).unwrap();
        for i in 0..6 {
            let text = format!(
                "hostname DEV{}\nrouter bgp 65000\n vlan {}\n",
                100 + i,
                250 + i
            );
            std::fs::write(dir.join(format!("pre/dev{i}.cfg")), &text).unwrap();
            // Post-change: one device loses its BGP block (a regression).
            let post_text = if i == 0 {
                format!("hostname DEV{}\n", 100 + i)
            } else {
                text
            };
            std::fs::write(dir.join(format!("post/dev{i}.cfg")), post_text).unwrap();
        }
        let argv: Vec<String> = [
            "ci",
            "--pre",
            &format!("{}/pre/*.cfg", dir.display()),
            "--post",
            &format!("{}/post/*.cfg", dir.display()),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = Vec::new();
        let code = crate::run(&argv, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("CI BLOCK"), "{text}");
        assert!(text.contains("missing required line"), "{text}");

        // Fix the regression: CI passes.
        std::fs::write(
            dir.join("post/dev0.cfg"),
            "hostname DEV100\nrouter bgp 65000\n vlan 250\n",
        )
        .unwrap();
        let mut out = Vec::new();
        let code = crate::run(&argv, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("CI PASS"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ci_suppressions_silence_contracts() {
        let dir = std::env::temp_dir().join(format!("concord-cisup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("pre")).unwrap();
        std::fs::create_dir_all(dir.join("post")).unwrap();
        for i in 0..6 {
            std::fs::write(dir.join(format!("pre/dev{i}.cfg")), "needed line\n").unwrap();
            std::fs::write(dir.join(format!("post/dev{i}.cfg")), "other\n").unwrap();
        }
        let suppress = dir.join("suppress.txt");
        std::fs::write(&suppress, "# operator feedback\nneeded line\n").unwrap();
        let argv: Vec<String> = [
            "ci",
            "--pre",
            &format!("{}/pre/*.cfg", dir.display()),
            "--post",
            &format!("{}/post/*.cfg", dir.display()),
            "--suppress",
            suppress.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = Vec::new();
        let code = crate::run(&argv, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
