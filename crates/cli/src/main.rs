//! The `concord` binary: thin wrapper over [`concord_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    let code = concord_cli::run(&argv, &mut stdout);
    std::process::exit(code);
}
