//! Wire protocol for `concord serve`: request model, streaming parser,
//! and framing.
//!
//! One [`SessionParser`] per connection turns raw bytes into
//! [`ParseEvent`]s, independent of how the bytes arrive (blocking stdin,
//! the epoll event loop, a test cursor). Two framings share the same
//! request model:
//!
//! * **Text** — the original line protocol (one command per LF/CRLF
//!   line, UPSERT bodies terminated by a `.` line), extended with
//!   `BATCH <n>`: the next `n` command lines execute under a single
//!   engine-lock acquisition and their responses are concatenated in
//!   order, followed by an `ok batch <n>` trailer.
//! * **Binary** — opt-in length-prefixed frames with zero-copy parsing:
//!   the payload is sliced out of the connection's read buffer and
//!   validated in place; the only copy is the one that materializes the
//!   owned request. A request frame is
//!   `0xC3 | opcode u8 | name_len u32 LE | body_len u32 LE | name | body`;
//!   a response frame is `0xC4 | status u8 | len u32 LE | payload` where
//!   `status` is 0 (`ok`) or 1 (`err`) and the payload carries the exact
//!   bytes the text protocol would have written. A BATCH frame
//!   (opcode 11) nests sub-frames without the leading magic byte.
//!
//! A connection picks its framing with its first byte: `0xC3` (invalid
//! as UTF-8 text, so never the start of a text command) selects binary
//! for the whole session.
//!
//! The parser enforces the serve limits (`max_line`, `max_body`) before
//! any allocation sized by attacker-controlled input, and reports
//! protocol failures as pre-rendered response lines using the same
//! stable error taxonomy as the original serve loop (`err too-large`,
//! `err bad-utf8`, `err bad-request …`, `err unknown-command …`).

use std::time::Instant;

/// First byte of a binary request frame (and the framing selector).
pub const FRAME_REQUEST: u8 = 0xC3;
/// First byte of a binary response frame.
pub const FRAME_RESPONSE: u8 = 0xC4;

/// Binary opcodes, one per protocol verb.
#[allow(missing_docs)] // names mirror the text verbs one-for-one
pub mod opcode {
    pub const UPSERT: u8 = 1;
    pub const REMOVE: u8 = 2;
    pub const LEARN: u8 = 3;
    pub const CHECK: u8 = 4;
    pub const GEN: u8 = 5;
    pub const CONTRACTS: u8 = 6;
    pub const STATS: u8 = 7;
    pub const CHECKPOINT: u8 = 8;
    pub const FAULT: u8 = 9;
    pub const QUIT: u8 = 10;
    pub const BATCH: u8 = 11;
    pub const HEALTH: u8 = 12;
}

/// Largest accepted `BATCH` count, shared by both framings.
pub const MAX_BATCH: usize = 1024;

/// One parsed protocol request, framing-independent.
#[allow(missing_docs)] // variants mirror the protocol verbs documented above
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Upsert {
        name: String,
        body: String,
    },
    Remove {
        name: String,
    },
    Learn,
    Check,
    Gen {
        name: String,
    },
    Contracts,
    Stats,
    Checkpoint,
    /// `HEALTH`: storage health — degraded/healthy plus fault counters.
    Health,
    /// `FAULT <kind>`; whether the verb is enabled (and whether the kind
    /// parses) is decided at execution time, like the original loop.
    Fault {
        rest: String,
    },
    Quit,
    /// `BATCH <n>`: sub-commands executed under one lock acquisition.
    Batch(Vec<BatchItem>),
}

/// One entry of a BATCH: a runnable request, or a protocol-level
/// failure whose response line is emitted in place — exactly what the
/// same input would have produced sent on its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchItem {
    /// A runnable sub-request.
    Run(Request),
    /// A malformed sub-command: `line` is emitted verbatim in the batch
    /// response and `reject` counts toward `requests_rejected`.
    Error {
        #[allow(missing_docs)]
        line: String,
        #[allow(missing_docs)]
        reject: bool,
    },
}

/// What the parser produced from the buffered bytes.
#[allow(missing_docs)] // field meanings documented on the variants
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEvent {
    /// A complete request, ready to execute.
    Request(Request),
    /// A protocol error; respond and keep the session open. `reject`
    /// means it counts toward `requests_rejected`.
    Error { line: String, reject: bool },
    /// A protocol error that ends the session after the response.
    Fatal { line: String, reject: bool },
}

/// Session framing, fixed by the first byte received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// No bytes received yet; the deciding first byte is still pending.
    Unknown,
    /// The line protocol.
    Text,
    /// Length-prefixed `0xC3`/`0xC4` frames.
    Binary,
}

/// Latched failure while collecting an UPSERT body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyFail {
    TooLarge,
    BadUtf8,
}

/// Parser state between events.
#[derive(Debug)]
enum State {
    /// Expecting a command line (text) or a frame (binary).
    Command,
    /// Collecting an UPSERT body up to the `.` sentinel.
    Body {
        name: String,
        body: String,
        failed: Option<BodyFail>,
    },
}

/// Text-mode batch collection in progress.
#[derive(Debug)]
struct BatchCollect {
    want: usize,
    items: Vec<BatchItem>,
}

/// A complete line extracted from the buffer, classified like the
/// original bounded line reader.
enum LineEvent {
    /// Need more bytes.
    Pending,
    /// Clean end of input.
    Eof,
    Line(String),
    Oversized,
    NonUtf8,
}

/// What one parsed command line means.
enum Parsed {
    Req(Request),
    /// UPSERT: the body follows.
    NeedBody {
        name: String,
    },
    Error {
        line: String,
        reject: bool,
    },
    /// `BATCH <n>` opens a collection.
    BatchStart {
        want: usize,
    },
}

/// Incremental, non-blocking protocol parser for one session.
///
/// Feed bytes with [`SessionParser::push`], then drain events with
/// [`SessionParser::next_event`] until it returns `None`. Call
/// [`SessionParser::set_eof`] once input is exhausted so trailing
/// unterminated input is classified (a final line without a newline is
/// processed; a disconnect mid-UPSERT-body is a fatal
/// `err bad-request`). [`SessionParser::pending_since`] reports when the
/// first byte of the currently incomplete request arrived — the
/// deadline anchor for slow-loris enforcement.
pub struct SessionParser {
    max_line: usize,
    max_body: usize,
    framing: Framing,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted periodically.
    pos: usize,
    /// Text mode: discarding an oversized line up to its newline.
    draining: bool,
    state: State,
    batch: Option<BatchCollect>,
    pending_since: Option<Instant>,
    eof: bool,
}

impl SessionParser {
    /// A parser for one fresh session under the given limits.
    pub fn new(max_line: usize, max_body: usize) -> SessionParser {
        SessionParser {
            max_line,
            max_body,
            framing: Framing::Unknown,
            buf: Vec::new(),
            pos: 0,
            draining: false,
            state: State::Command,
            batch: None,
            pending_since: None,
            eof: false,
        }
    }

    /// The framing this session locked onto (after its first byte).
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        if !self.pending() {
            self.pending_since = Some(Instant::now());
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Marks clean end of input.
    pub fn set_eof(&mut self) {
        self.eof = true;
    }

    /// Whether a request is partially received (or parsed state is
    /// mid-request) — the condition the deadline scan watches.
    pub fn pending(&self) -> bool {
        self.pos < self.buf.len() || !matches!(self.state, State::Command) || self.batch.is_some()
    }

    /// When the first byte of the currently incomplete request arrived.
    pub fn pending_since(&self) -> Option<Instant> {
        if self.pending() {
            self.pending_since
        } else {
            None
        }
    }

    /// Produces the next event, or `None` when more input is needed (or
    /// input ended cleanly).
    pub fn next_event(&mut self) -> Option<ParseEvent> {
        if self.framing == Framing::Unknown {
            if self.pos >= self.buf.len() {
                return None;
            }
            self.framing = if self.buf[self.pos] == FRAME_REQUEST {
                Framing::Binary
            } else {
                Framing::Text
            };
        }
        let event = match self.framing {
            Framing::Binary => self.next_binary(),
            _ => self.next_text(),
        };
        if event.is_some() {
            // Whatever remains buffered belongs to the next request(s);
            // their deadline clock starts now.
            self.pending_since = self.pending().then(Instant::now);
        }
        self.compact();
        event
    }

    /// Reclaims consumed buffer space once it dominates the allocation.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    // ---- text framing ----

    /// Extracts the next complete line, mirroring the bounded reader the
    /// blocking loop used: oversized lines switch to drain mode (and
    /// report once, at the newline), CRLF folds to LF, invalid UTF-8 is
    /// classified rather than propagated, and trailing bytes at EOF
    /// surface as a final line.
    fn take_line(&mut self) -> LineEvent {
        if let Some(rel) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
            let start = self.pos;
            self.pos += rel + 1;
            if self.draining {
                self.draining = false;
                return LineEvent::Oversized;
            }
            let line = &self.buf[start..start + rel];
            if line.len() > self.max_line {
                return LineEvent::Oversized;
            }
            let line = match line.last() {
                Some(b'\r') => &line[..line.len() - 1],
                _ => line,
            };
            return match std::str::from_utf8(line) {
                Ok(text) => LineEvent::Line(text.to_string()),
                Err(_) => LineEvent::NonUtf8,
            };
        }
        if self.buf.len() - self.pos > self.max_line {
            self.draining = true;
        }
        if self.draining {
            // Nothing before the next newline survives; drop it now so a
            // flood never accumulates.
            self.pos = self.buf.len();
        }
        if self.eof {
            if self.pos >= self.buf.len() || self.draining {
                return LineEvent::Eof;
            }
            let line = &self.buf[self.pos..];
            let event = match std::str::from_utf8(line) {
                Ok(text) => LineEvent::Line(text.to_string()),
                Err(_) => LineEvent::NonUtf8,
            };
            self.pos = self.buf.len();
            return event;
        }
        LineEvent::Pending
    }

    fn next_text(&mut self) -> Option<ParseEvent> {
        loop {
            if !matches!(self.state, State::Body { .. }) {
                match self.take_line() {
                    LineEvent::Pending => return None,
                    LineEvent::Eof => {
                        if self.batch.take().is_some() {
                            return Some(ParseEvent::Fatal {
                                line: "err bad-request BATCH not completed".to_string(),
                                reject: true,
                            });
                        }
                        return None;
                    }
                    LineEvent::Oversized => {
                        let line = format!("err too-large line exceeds {} bytes", self.max_line);
                        if let Some(event) = self.deliver_failure(line) {
                            return Some(event);
                        }
                    }
                    LineEvent::NonUtf8 => {
                        if let Some(event) = self.deliver_failure("err bad-utf8".to_string()) {
                            return Some(event);
                        }
                    }
                    LineEvent::Line(text) => {
                        let trimmed = text.trim();
                        if trimmed.is_empty() {
                            continue;
                        }
                        match self.parse_command(trimmed) {
                            Parsed::NeedBody { name } => {
                                self.state = State::Body {
                                    name,
                                    body: String::new(),
                                    failed: None,
                                };
                            }
                            Parsed::Req(req) => {
                                if let Some(event) = self.deliver_request(req) {
                                    return Some(event);
                                }
                            }
                            Parsed::Error { line, reject } => {
                                if let Some(event) = self.deliver_error(line, reject) {
                                    return Some(event);
                                }
                            }
                            Parsed::BatchStart { want } => {
                                if self.batch.is_some() {
                                    // Unreachable from input (nested BATCH
                                    // parses as an item error), kept as a
                                    // defensive reply.
                                    if let Some(event) = self.deliver_error(
                                        "err bad-request BATCH cannot be nested".to_string(),
                                        true,
                                    ) {
                                        return Some(event);
                                    }
                                } else {
                                    self.batch = Some(BatchCollect {
                                        want,
                                        items: Vec::new(),
                                    });
                                }
                            }
                        }
                    }
                }
            } else {
                match self.take_line() {
                    LineEvent::Pending => return None,
                    LineEvent::Eof => {
                        self.state = State::Command;
                        self.batch = None;
                        return Some(ParseEvent::Fatal {
                            line: "err bad-request UPSERT body not terminated by `.`".to_string(),
                            reject: false,
                        });
                    }
                    LineEvent::Oversized => {
                        if let State::Body { failed, .. } = &mut self.state {
                            failed.get_or_insert(BodyFail::TooLarge);
                        }
                    }
                    LineEvent::NonUtf8 => {
                        if let State::Body { failed, .. } = &mut self.state {
                            failed.get_or_insert(BodyFail::BadUtf8);
                        }
                    }
                    LineEvent::Line(text) => {
                        if text.trim_end_matches(['\r', '\n']) == "." {
                            let state = std::mem::replace(&mut self.state, State::Command);
                            let State::Body { name, body, failed } = state else {
                                continue;
                            };
                            let outcome = match failed {
                                None => Ok(Request::Upsert { name, body }),
                                Some(BodyFail::TooLarge) => Err(format!(
                                    "err too-large body exceeds {} bytes",
                                    self.max_body
                                )),
                                Some(BodyFail::BadUtf8) => Err("err bad-utf8".to_string()),
                            };
                            let event = match outcome {
                                Ok(req) => self.deliver_request(req),
                                Err(line) => self.deliver_error(line, true),
                            };
                            if let Some(event) = event {
                                return Some(event);
                            }
                        } else if let State::Body { body, failed, .. } = &mut self.state {
                            if failed.is_none() {
                                body.push_str(&text);
                                body.push('\n');
                                if body.len() > self.max_body {
                                    body.clear();
                                    *failed = Some(BodyFail::TooLarge);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Routes a completed request: batch item, or a top-level event.
    fn deliver_request(&mut self, req: Request) -> Option<ParseEvent> {
        match &mut self.batch {
            Some(collect) => {
                let item = match req {
                    Request::Quit => BatchItem::Error {
                        line: "err bad-request QUIT inside BATCH".to_string(),
                        reject: true,
                    },
                    other => BatchItem::Run(other),
                };
                collect.items.push(item);
                self.finish_batch_if_complete()
            }
            None => Some(ParseEvent::Request(req)),
        }
    }

    /// Routes a protocol error: batch item, or a top-level event.
    fn deliver_error(&mut self, line: String, reject: bool) -> Option<ParseEvent> {
        match &mut self.batch {
            Some(collect) => {
                collect.items.push(BatchItem::Error { line, reject });
                self.finish_batch_if_complete()
            }
            None => Some(ParseEvent::Error { line, reject }),
        }
    }

    /// Routes a line-level failure (oversized / non-UTF-8), which always
    /// counts as rejected.
    fn deliver_failure(&mut self, line: String) -> Option<ParseEvent> {
        self.deliver_error(line, true)
    }

    fn finish_batch_if_complete(&mut self) -> Option<ParseEvent> {
        let done = self.batch.as_ref().is_some_and(|c| c.items.len() >= c.want);
        if done {
            let collect = self.batch.take()?;
            return Some(ParseEvent::Request(Request::Batch(collect.items)));
        }
        None
    }

    fn parse_command(&self, trimmed: &str) -> Parsed {
        let (command, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (trimmed, ""),
        };
        let require_name = |cmd: &str, build: &dyn Fn(String) -> Request| {
            if rest.is_empty() {
                Parsed::Error {
                    line: format!("err bad-request {cmd} requires a configuration name"),
                    reject: true,
                }
            } else {
                Parsed::Req(build(rest.to_string()))
            }
        };
        match command {
            "UPSERT" => {
                if rest.is_empty() {
                    Parsed::Error {
                        line: "err bad-request UPSERT requires a configuration name".to_string(),
                        reject: true,
                    }
                } else {
                    Parsed::NeedBody {
                        name: rest.to_string(),
                    }
                }
            }
            "REMOVE" => require_name("REMOVE", &|name| Request::Remove { name }),
            "GEN" => require_name("GEN", &|name| Request::Gen { name }),
            "LEARN" => Parsed::Req(Request::Learn),
            "CHECK" => Parsed::Req(Request::Check),
            "CONTRACTS" => Parsed::Req(Request::Contracts),
            "STATS" => Parsed::Req(Request::Stats),
            "CHECKPOINT" => Parsed::Req(Request::Checkpoint),
            "HEALTH" => Parsed::Req(Request::Health),
            "FAULT" => Parsed::Req(Request::Fault {
                rest: rest.to_string(),
            }),
            "QUIT" => {
                if self.batch.is_some() {
                    Parsed::Error {
                        line: "err bad-request QUIT inside BATCH".to_string(),
                        reject: true,
                    }
                } else {
                    Parsed::Req(Request::Quit)
                }
            }
            "BATCH" => {
                if self.batch.is_some() {
                    Parsed::Error {
                        line: "err bad-request BATCH cannot be nested".to_string(),
                        reject: true,
                    }
                } else {
                    match rest.parse::<usize>() {
                        Ok(n) if (1..=MAX_BATCH).contains(&n) => Parsed::BatchStart { want: n },
                        _ => Parsed::Error {
                            line: format!(
                                "err bad-request BATCH requires a count between 1 and {MAX_BATCH}"
                            ),
                            reject: true,
                        },
                    }
                }
            }
            other => Parsed::Error {
                line: format!("err unknown-command {other:?}"),
                reject: true,
            },
        }
    }

    // ---- binary framing ----

    fn next_binary(&mut self) -> Option<ParseEvent> {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            return None;
        }
        if avail[0] != FRAME_REQUEST {
            self.pos = self.buf.len();
            return Some(ParseEvent::Fatal {
                line: "err bad-request bad frame magic".to_string(),
                reject: true,
            });
        }
        if avail.len() < 10 {
            return None; // header incomplete (EOF mid-frame closes silently)
        }
        let name_len = u32::from_le_bytes([avail[2], avail[3], avail[4], avail[5]]) as usize;
        let body_len = u32::from_le_bytes([avail[6], avail[7], avail[8], avail[9]]) as usize;
        // Enforce limits before buffering a frame of that size: the
        // lengths are attacker-controlled and must never drive an
        // allocation past the configured bounds.
        if name_len > self.max_line {
            self.pos = self.buf.len();
            return Some(ParseEvent::Fatal {
                line: format!("err too-large line exceeds {} bytes", self.max_line),
                reject: true,
            });
        }
        if body_len > self.max_body {
            self.pos = self.buf.len();
            return Some(ParseEvent::Fatal {
                line: format!("err too-large body exceeds {} bytes", self.max_body),
                reject: true,
            });
        }
        let total = 10 + name_len + body_len;
        if avail.len() < total {
            return None;
        }
        let op = avail[1];
        // Zero-copy: name and body are validated as slices of the read
        // buffer; the only copy is the owned materialization inside the
        // built request.
        let name = &avail[10..10 + name_len];
        let body = &avail[10 + name_len..total];
        let event = if op == opcode::BATCH {
            Some(self.parse_binary_batch(body))
        } else {
            match build_binary_request(op, name, body, false) {
                BatchItem::Run(req) => Some(ParseEvent::Request(req)),
                BatchItem::Error { line, reject } => Some(ParseEvent::Error { line, reject }),
            }
        };
        self.pos += total;
        event
    }

    /// Parses the sub-frames of a binary BATCH body (`opcode u8 |
    /// name_len u32 | body_len u32 | name | body`, concatenated, no
    /// magic). The outer frame already passed the body limit, so the
    /// total is bounded; each sub-frame re-checks its own limits for
    /// parity with the text protocol.
    fn parse_binary_batch(&self, mut body: &[u8]) -> ParseEvent {
        let mut items = Vec::new();
        while !body.is_empty() {
            if body.len() < 9 || items.len() >= MAX_BATCH {
                return ParseEvent::Error {
                    line: "err bad-request malformed BATCH frame".to_string(),
                    reject: true,
                };
            }
            let name_len = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) as usize;
            let body_len = u32::from_le_bytes([body[5], body[6], body[7], body[8]]) as usize;
            let total = match 9usize
                .checked_add(name_len)
                .and_then(|n| n.checked_add(body_len))
            {
                Some(total) if total <= body.len() => total,
                _ => {
                    return ParseEvent::Error {
                        line: "err bad-request malformed BATCH frame".to_string(),
                        reject: true,
                    }
                }
            };
            let op = body[0];
            let item = if name_len > self.max_line {
                BatchItem::Error {
                    line: format!("err too-large line exceeds {} bytes", self.max_line),
                    reject: true,
                }
            } else if body_len > self.max_body {
                BatchItem::Error {
                    line: format!("err too-large body exceeds {} bytes", self.max_body),
                    reject: true,
                }
            } else {
                build_binary_request(op, &body[9..9 + name_len], &body[9 + name_len..total], true)
            };
            items.push(item);
            body = &body[total..];
        }
        if items.is_empty() {
            return ParseEvent::Error {
                line: format!("err bad-request BATCH requires a count between 1 and {MAX_BATCH}"),
                reject: true,
            };
        }
        ParseEvent::Request(Request::Batch(items))
    }
}

/// Builds one request from a binary frame's fields; protocol failures
/// come back as pre-rendered error items matching the text taxonomy.
fn build_binary_request(op: u8, name: &[u8], body: &[u8], in_batch: bool) -> BatchItem {
    let error = |line: String| BatchItem::Error { line, reject: true };
    let utf8 = |bytes: &[u8]| -> Result<String, BatchItem> {
        match std::str::from_utf8(bytes) {
            Ok(text) => Ok(text.to_string()),
            Err(_) => Err(error("err bad-utf8".to_string())),
        }
    };
    let named = |verb: &str, name: &[u8]| -> Result<String, BatchItem> {
        if name.is_empty() {
            return Err(error(format!(
                "err bad-request {verb} requires a configuration name"
            )));
        }
        utf8(name)
    };
    match op {
        opcode::UPSERT => match (named("UPSERT", name), utf8(body)) {
            (Ok(name), Ok(body)) => BatchItem::Run(Request::Upsert { name, body }),
            (Err(item), _) | (_, Err(item)) => item,
        },
        opcode::REMOVE => match named("REMOVE", name) {
            Ok(name) => BatchItem::Run(Request::Remove { name }),
            Err(item) => item,
        },
        opcode::GEN => match named("GEN", name) {
            Ok(name) => BatchItem::Run(Request::Gen { name }),
            Err(item) => item,
        },
        opcode::LEARN => BatchItem::Run(Request::Learn),
        opcode::CHECK => BatchItem::Run(Request::Check),
        opcode::CONTRACTS => BatchItem::Run(Request::Contracts),
        opcode::STATS => BatchItem::Run(Request::Stats),
        opcode::CHECKPOINT => BatchItem::Run(Request::Checkpoint),
        opcode::HEALTH => BatchItem::Run(Request::Health),
        opcode::FAULT => match utf8(name) {
            Ok(rest) => BatchItem::Run(Request::Fault { rest }),
            Err(item) => item,
        },
        opcode::QUIT => {
            if in_batch {
                error("err bad-request QUIT inside BATCH".to_string())
            } else {
                BatchItem::Run(Request::Quit)
            }
        }
        opcode::BATCH => error("err bad-request BATCH cannot be nested".to_string()),
        other => error(format!("err unknown-command \"opcode {other}\"")),
    }
}

/// Appends `response` to `out` in the session's framing: text verbatim,
/// or wrapped in one `0xC4` response frame whose status byte reflects
/// the final response line (`0` for `ok…`, `1` otherwise).
pub fn frame_response(framing: Framing, response: &[u8], out: &mut Vec<u8>) {
    match framing {
        Framing::Binary => {
            let status = match final_line(response) {
                Some(line) if line.starts_with(b"ok") => 0u8,
                _ => 1u8,
            };
            out.push(FRAME_RESPONSE);
            out.push(status);
            out.extend_from_slice(&(response.len() as u32).to_le_bytes());
            out.extend_from_slice(response);
        }
        _ => out.extend_from_slice(response),
    }
}

/// The last non-empty line of a response, which carries its status.
fn final_line(response: &[u8]) -> Option<&[u8]> {
    response.split(|&b| b == b'\n').rfind(|l| !l.is_empty())
}

/// Encodes one binary request frame (client-side helper for tests and
/// the throughput bench).
pub fn encode_frame(op: u8, name: &[u8], body: &[u8], out: &mut Vec<u8>) {
    // A top-level frame is the magic byte followed by the sub-frame layout.
    out.push(FRAME_REQUEST);
    encode_subframe(op, name, body, out);
}

/// Encodes the magic-less sub-frame layout used inside BATCH bodies.
pub fn encode_subframe(op: u8, name: &[u8], body: &[u8], out: &mut Vec<u8>) {
    out.push(op);
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(body);
}

/// Decodes one binary response frame from the front of `buf`:
/// `Some((status, payload, consumed))`, or `None` if incomplete.
pub fn decode_response(buf: &[u8]) -> Option<(u8, &[u8], usize)> {
    if buf.len() < 6 || buf[0] != FRAME_RESPONSE {
        return None;
    }
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
    let total = 6 + len;
    if buf.len() < total {
        return None;
    }
    Some((buf[1], &buf[6..total], total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(parser: &mut SessionParser) -> Vec<ParseEvent> {
        let mut events = Vec::new();
        while let Some(event) = parser.next_event() {
            events.push(event);
        }
        events
    }

    fn parse_all(input: &[u8], max_line: usize, max_body: usize) -> Vec<ParseEvent> {
        let mut parser = SessionParser::new(max_line, max_body);
        parser.push(input);
        parser.set_eof();
        drain(&mut parser)
    }

    #[test]
    fn text_commands_parse_and_pipelined_requests_queue_up() {
        let events = parse_all(b"LEARN\nCHECK\nGEN dev0\nQUIT\n", 1024, 4096);
        assert_eq!(
            events,
            vec![
                ParseEvent::Request(Request::Learn),
                ParseEvent::Request(Request::Check),
                ParseEvent::Request(Request::Gen {
                    name: "dev0".to_string()
                }),
                ParseEvent::Request(Request::Quit),
            ]
        );
    }

    #[test]
    fn upsert_body_collects_to_sentinel_across_partial_pushes() {
        let mut parser = SessionParser::new(1024, 4096);
        parser.push(b"UPSERT de");
        assert!(parser.next_event().is_none());
        assert!(parser.pending());
        parser.push(b"v0\nvlan 1\nvl");
        assert!(parser.next_event().is_none());
        parser.push(b"an 2\n.\n");
        assert_eq!(
            parser.next_event(),
            Some(ParseEvent::Request(Request::Upsert {
                name: "dev0".to_string(),
                body: "vlan 1\nvlan 2\n".to_string(),
            }))
        );
        assert!(!parser.pending());
    }

    #[test]
    fn crlf_and_trailing_line_without_newline_match_legacy_reader() {
        let events = parse_all(b"LEARN\r\nGEN dev0", 1024, 4096);
        assert_eq!(
            events,
            vec![
                ParseEvent::Request(Request::Learn),
                ParseEvent::Request(Request::Gen {
                    name: "dev0".to_string()
                }),
            ]
        );
    }

    #[test]
    fn protocol_errors_use_the_legacy_taxonomy() {
        let events = parse_all(b"FLY\nUPSERT\nREMOVE\nGEN\n", 1024, 4096);
        let lines: Vec<&str> = events
            .iter()
            .map(|e| match e {
                ParseEvent::Error { line, reject: true } => line.as_str(),
                other => panic!("expected rejecting error, got {other:?}"),
            })
            .collect();
        assert_eq!(
            lines,
            vec![
                "err unknown-command \"FLY\"",
                "err bad-request UPSERT requires a configuration name",
                "err bad-request REMOVE requires a configuration name",
                "err bad-request GEN requires a configuration name",
            ]
        );
    }

    #[test]
    fn oversized_line_drains_and_session_continues() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"LEARN\n");
        let events = parse_all(&input, 64, 4096);
        assert_eq!(events.len(), 2);
        assert!(
            matches!(&events[0], ParseEvent::Error { line, reject: true }
                if line == "err too-large line exceeds 64 bytes"),
            "{events:?}"
        );
        assert_eq!(events[1], ParseEvent::Request(Request::Learn));
    }

    #[test]
    fn unterminated_body_is_fatal_and_non_utf8_body_latches() {
        let events = parse_all(b"UPSERT dev0\nvlan 1\n", 1024, 4096);
        assert_eq!(
            events,
            vec![ParseEvent::Fatal {
                line: "err bad-request UPSERT body not terminated by `.`".to_string(),
                reject: false,
            }]
        );

        let mut input = Vec::new();
        input.extend_from_slice(b"UPSERT dev0\n");
        input.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        input.extend_from_slice(b".\nLEARN\n");
        let events = parse_all(&input, 1024, 4096);
        assert_eq!(
            events,
            vec![
                ParseEvent::Error {
                    line: "err bad-utf8".to_string(),
                    reject: true
                },
                ParseEvent::Request(Request::Learn),
            ]
        );
    }

    #[test]
    fn oversized_body_latches_too_large() {
        let body = "vlan 1\n".repeat(20);
        let input = format!("UPSERT huge\n{body}.\nGEN huge\n");
        let events = parse_all(input.as_bytes(), 1024, 32);
        assert_eq!(
            events,
            vec![
                ParseEvent::Error {
                    line: "err too-large body exceeds 32 bytes".to_string(),
                    reject: true
                },
                ParseEvent::Request(Request::Gen {
                    name: "huge".to_string()
                }),
            ]
        );
    }

    #[test]
    fn batch_collects_n_commands_including_bodies_and_errors() {
        let events = parse_all(
            b"BATCH 4\nCHECK\nUPSERT dev0\nvlan 1\n.\nQUIT\nNOPE\nGEN dev0\n",
            1024,
            4096,
        );
        assert_eq!(events.len(), 2, "{events:?}");
        let ParseEvent::Request(Request::Batch(items)) = &events[0] else {
            panic!("expected batch, got {events:?}");
        };
        assert_eq!(items.len(), 4);
        assert_eq!(items[0], BatchItem::Run(Request::Check));
        assert_eq!(
            items[1],
            BatchItem::Run(Request::Upsert {
                name: "dev0".to_string(),
                body: "vlan 1\n".to_string()
            })
        );
        assert_eq!(
            items[2],
            BatchItem::Error {
                line: "err bad-request QUIT inside BATCH".to_string(),
                reject: true
            }
        );
        assert_eq!(
            items[3],
            BatchItem::Error {
                line: "err unknown-command \"NOPE\"".to_string(),
                reject: true
            }
        );
        assert_eq!(
            events[1],
            ParseEvent::Request(Request::Gen {
                name: "dev0".to_string()
            })
        );
    }

    #[test]
    fn batch_count_is_validated_and_eof_mid_batch_is_fatal() {
        let events = parse_all(b"BATCH\nBATCH 0\nBATCH 4096\nBATCH zz\n", 1024, 4096);
        assert_eq!(events.len(), 4);
        for event in &events {
            assert!(
                matches!(event, ParseEvent::Error { line, .. }
                    if line == "err bad-request BATCH requires a count between 1 and 1024"),
                "{event:?}"
            );
        }
        let events = parse_all(b"BATCH 3\nCHECK\n", 1024, 4096);
        assert_eq!(
            events,
            vec![ParseEvent::Fatal {
                line: "err bad-request BATCH not completed".to_string(),
                reject: true
            }]
        );
    }

    #[test]
    fn nested_batch_is_an_item_error() {
        let events = parse_all(b"BATCH 2\nBATCH 2\nCHECK\n", 1024, 4096);
        let ParseEvent::Request(Request::Batch(items)) = &events[0] else {
            panic!("{events:?}");
        };
        assert_eq!(
            items[0],
            BatchItem::Error {
                line: "err bad-request BATCH cannot be nested".to_string(),
                reject: true
            }
        );
        assert_eq!(items[1], BatchItem::Run(Request::Check));
    }

    #[test]
    fn binary_frames_round_trip_every_opcode() {
        let mut input = Vec::new();
        encode_frame(opcode::UPSERT, b"dev0", b"vlan 1\n", &mut input);
        encode_frame(opcode::REMOVE, b"dev1", b"", &mut input);
        encode_frame(opcode::LEARN, b"", b"", &mut input);
        encode_frame(opcode::CHECK, b"", b"", &mut input);
        encode_frame(opcode::GEN, b"dev0", b"", &mut input);
        encode_frame(opcode::CONTRACTS, b"", b"", &mut input);
        encode_frame(opcode::STATS, b"", b"", &mut input);
        encode_frame(opcode::CHECKPOINT, b"", b"", &mut input);
        encode_frame(opcode::HEALTH, b"", b"", &mut input);
        encode_frame(opcode::FAULT, b"check", b"", &mut input);
        encode_frame(opcode::QUIT, b"", b"", &mut input);
        let events = parse_all(&input, 1024, 4096);
        assert_eq!(
            events,
            vec![
                ParseEvent::Request(Request::Upsert {
                    name: "dev0".to_string(),
                    body: "vlan 1\n".to_string()
                }),
                ParseEvent::Request(Request::Remove {
                    name: "dev1".to_string()
                }),
                ParseEvent::Request(Request::Learn),
                ParseEvent::Request(Request::Check),
                ParseEvent::Request(Request::Gen {
                    name: "dev0".to_string()
                }),
                ParseEvent::Request(Request::Contracts),
                ParseEvent::Request(Request::Stats),
                ParseEvent::Request(Request::Checkpoint),
                ParseEvent::Request(Request::Health),
                ParseEvent::Request(Request::Fault {
                    rest: "check".to_string()
                }),
                ParseEvent::Request(Request::Quit),
            ]
        );
    }

    #[test]
    fn binary_frame_split_across_pushes_stays_pending() {
        let mut frame = Vec::new();
        encode_frame(opcode::UPSERT, b"dev0", b"vlan 1\n", &mut frame);
        let mut parser = SessionParser::new(1024, 4096);
        parser.push(&frame[..7]);
        assert!(parser.next_event().is_none());
        assert_eq!(parser.framing(), Framing::Binary);
        assert!(parser.pending());
        parser.push(&frame[7..]);
        assert!(matches!(
            parser.next_event(),
            Some(ParseEvent::Request(Request::Upsert { .. }))
        ));
        assert!(!parser.pending());
    }

    #[test]
    fn binary_length_limits_are_enforced_before_buffering() {
        let mut input = vec![FRAME_REQUEST, opcode::UPSERT];
        input.extend_from_slice(&5u32.to_le_bytes());
        input.extend_from_slice(&(u32::MAX).to_le_bytes());
        let events = parse_all(&input, 1024, 4096);
        assert_eq!(
            events,
            vec![ParseEvent::Fatal {
                line: "err too-large body exceeds 4096 bytes".to_string(),
                reject: true
            }]
        );
    }

    #[test]
    fn binary_bad_magic_and_unknown_opcode() {
        let mut parser = SessionParser::new(1024, 4096);
        let mut input = Vec::new();
        encode_frame(opcode::LEARN, b"", b"", &mut input);
        input.push(0x00); // not a frame start
        parser.push(&input);
        parser.set_eof();
        assert_eq!(
            parser.next_event(),
            Some(ParseEvent::Request(Request::Learn))
        );
        assert_eq!(
            parser.next_event(),
            Some(ParseEvent::Fatal {
                line: "err bad-request bad frame magic".to_string(),
                reject: true
            })
        );

        let mut input = Vec::new();
        encode_frame(250, b"", b"", &mut input);
        let events = parse_all(&input, 1024, 4096);
        assert_eq!(
            events,
            vec![ParseEvent::Error {
                line: "err unknown-command \"opcode 250\"".to_string(),
                reject: true
            }]
        );
    }

    #[test]
    fn binary_batch_nests_subframes_without_magic() {
        let mut body = Vec::new();
        encode_subframe(opcode::CHECK, b"", b"", &mut body);
        encode_subframe(opcode::GEN, b"dev0", b"", &mut body);
        encode_subframe(opcode::QUIT, b"", b"", &mut body);
        let mut input = Vec::new();
        encode_frame(opcode::BATCH, b"", &body, &mut input);
        let events = parse_all(&input, 1024, 4096);
        let ParseEvent::Request(Request::Batch(items)) = &events[0] else {
            panic!("{events:?}");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], BatchItem::Run(Request::Check));
        assert_eq!(
            items[1],
            BatchItem::Run(Request::Gen {
                name: "dev0".to_string()
            })
        );
        assert_eq!(
            items[2],
            BatchItem::Error {
                line: "err bad-request QUIT inside BATCH".to_string(),
                reject: true
            }
        );
    }

    #[test]
    fn binary_batch_rejects_malformed_and_empty_bodies() {
        let mut input = Vec::new();
        encode_frame(opcode::BATCH, b"", &[opcode::CHECK, 9, 9], &mut input);
        let events = parse_all(&input, 1024, 4096);
        assert_eq!(
            events,
            vec![ParseEvent::Error {
                line: "err bad-request malformed BATCH frame".to_string(),
                reject: true
            }]
        );
        let mut input = Vec::new();
        encode_frame(opcode::BATCH, b"", b"", &mut input);
        let events = parse_all(&input, 1024, 4096);
        assert_eq!(
            events,
            vec![ParseEvent::Error {
                line: "err bad-request BATCH requires a count between 1 and 1024".to_string(),
                reject: true
            }]
        );
    }

    #[test]
    fn response_framing_wraps_payload_with_status() {
        let mut out = Vec::new();
        frame_response(Framing::Text, b"ok gen dev0 0\n", &mut out);
        assert_eq!(out, b"ok gen dev0 0\n");

        let mut out = Vec::new();
        frame_response(
            Framing::Binary,
            b"violation x\nok check 1 violations\n",
            &mut out,
        );
        let (status, payload, consumed) = decode_response(&out).expect("frame decodes");
        assert_eq!(status, 0);
        assert_eq!(payload, b"violation x\nok check 1 violations\n");
        assert_eq!(consumed, out.len());

        let mut out = Vec::new();
        frame_response(Framing::Binary, b"err unknown-config ghost\n", &mut out);
        let (status, _, _) = decode_response(&out).expect("frame decodes");
        assert_eq!(status, 1);
    }

    #[test]
    fn pending_since_anchors_on_first_byte_of_incomplete_request() {
        let mut parser = SessionParser::new(1024, 4096);
        assert!(parser.pending_since().is_none());
        parser.push(b"CHE");
        let started = parser.pending_since().expect("pending");
        assert!(parser.next_event().is_none());
        parser.push(b"C"); // still incomplete: anchor must not move
        assert_eq!(parser.pending_since(), Some(started));
        parser.push(b"K\n");
        assert_eq!(
            parser.next_event(),
            Some(ParseEvent::Request(Request::Check))
        );
        assert!(parser.pending_since().is_none());
    }
}
