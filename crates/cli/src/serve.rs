//! `concord serve`: a resident incremental engine behind a line protocol.
//!
//! The batch commands (`learn`, `check`) rebuild the pipeline from disk
//! on every invocation. `serve` instead holds one resident engine for
//! the whole session and absorbs single-configuration edits, so each
//! CHECK costs work proportional to what changed since the last one
//! (§3.7's interactive workflow).
//!
//! The protocol is plain text, one command per line (LF or CRLF):
//!
//! ```text
//! UPSERT <name>     -- followed by the configuration body, terminated
//!                      by a line containing only "."
//! REMOVE <name>
//! LEARN             -- relearn contracts from the current snapshot;
//!                      folds cached per-config sketches, re-mining
//!                      only edited configs (unless --full-relearn)
//! CHECK             -- report violations; recomputes only dirty configs
//! GEN <name>        -- the configuration's edit generation
//! CONTRACTS         -- how many contracts are loaded
//! STATS             -- one-line JSON engine snapshot (v6 schema)
//! CHECKPOINT        -- force a durable checkpoint (needs --state-dir)
//! QUIT
//! ```
//!
//! Every response line starts with `ok` or `err`; errors carry a stable
//! machine-readable code (`err busy`, `err deadline`, `err too-large`,
//! `err bad-utf8`, `err bad-request …`, `err unknown-command …`,
//! `err unknown-config …`, `err not-learned`, `err internal …`,
//! `err persist …`, `err poisoned`).
//!
//! # Robustness
//!
//! The engine is wrapped in [`ResilientEngine`]: a panic inside any
//! operation poisons the live snapshot and rebuilds from the
//! last-known-good image, so the process never dies and never answers
//! from suspect state. With `--state-dir` every acknowledged mutation
//! is WAL-logged (fsync'd) and periodically checkpointed, so `kill -9`
//! + restart resumes byte-identical.
//!
//! With `--listen`, connections are served by a fixed worker pool
//! (`--workers`). The accept loop sheds load with `err busy` once all
//! workers are occupied and the hand-off queue is full. Request lines
//! are read through a bounded byte reader: oversized lines
//! (`--max-line-bytes`) and bodies (`--max-body-bytes`) are rejected
//! without touching the engine, invalid UTF-8 is reported as
//! `err bad-utf8`, and a client that trickles a request slower than
//! `--deadline-ms` (slow-loris) is disconnected with `err deadline`.
//! Everything is `std`-only: [`std::net::TcpListener`], threads, and a
//! hand-rolled line reader.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use concord_engine::{EngineFault, EngineOptions, OpKind, ResilientEngine};
use concord_json::ToJson;

use crate::args::ServeArgs;
use crate::{build_lexer, read_file, read_glob, CliError};

/// Request-level limits shared by every connection.
#[derive(Debug, Clone, Copy)]
pub struct ServeLimits {
    /// Per-request deadline: covers reading one command (and its body)
    /// and waiting for the engine lock.
    pub deadline: Duration,
    /// Maximum bytes in one protocol line.
    pub max_line: usize,
    /// Maximum bytes in one UPSERT body.
    pub max_body: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            deadline: Duration::from_millis(5000),
            max_line: 64 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// State shared by every connection: the engine, the limits, and the
/// serve-layer robustness counters.
pub struct ServeShared {
    engine: Mutex<ResilientEngine>,
    limits: ServeLimits,
    /// `FAULT <op>` verb enabled (deterministic panic injection for the
    /// robustness harness; off unless `--enable-fault-injection`).
    faults_enabled: bool,
    requests_rejected: AtomicU64,
    deadlines_hit: AtomicU64,
}

impl ServeShared {
    /// Wraps an engine for serving.
    pub fn new(engine: ResilientEngine, limits: ServeLimits, faults_enabled: bool) -> ServeShared {
        ServeShared {
            engine: Mutex::new(engine),
            limits,
            faults_enabled,
            requests_rejected: AtomicU64::new(0),
            deadlines_hit: AtomicU64::new(0),
        }
    }

    fn reject(&self) {
        self.requests_rejected.fetch_add(1, Ordering::Relaxed);
    }

    fn deadline_hit(&self) {
        self.deadlines_hit.fetch_add(1, Ordering::Relaxed);
    }

    /// Locks the engine, waiting at most until `deadline`. A lock
    /// poisoned by a panicking holder is still usable: the engine
    /// beneath it recovers itself, so we take the guard regardless.
    fn lock_engine(&self, deadline: Instant) -> Option<MutexGuard<'_, ResilientEngine>> {
        loop {
            match self.engine.try_lock() {
                Ok(guard) => return Some(guard),
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    return Some(poisoned.into_inner())
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    if Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

/// Runs `concord serve`. Returns the process exit code.
pub fn run_serve(args: &ServeArgs, out: &mut dyn Write) -> Result<i32, CliError> {
    let engine = build_engine(args)?;
    let limits = ServeLimits {
        deadline: Duration::from_millis(args.deadline_ms.max(1)),
        max_line: args.max_line_bytes.max(64),
        max_body: args.max_body_bytes.max(64),
    };
    let shared = Arc::new(ServeShared::new(engine, limits, args.enable_faults));
    match &args.listen {
        Some(addr) => serve_tcp(&shared, addr, args.once, args.workers.max(1), out),
        None => {
            let stdin = std::io::stdin();
            serve_session(&shared, stdin.lock(), out)
                .map_err(|e| CliError::Io("<stdin>".to_string(), e))?;
            Ok(0)
        }
    }
}

/// Builds the session's engine from the serve arguments: optional
/// initial corpus, metadata globs, preloaded contracts, and state
/// directory. With `--state-dir`, an existing snapshot wins over the
/// corpus glob (the directory is the durable truth) and `--contracts`
/// applies only on a fresh (non-resumed) boot.
fn build_engine(args: &ServeArgs) -> Result<ResilientEngine, CliError> {
    let lexer = match &args.tokens {
        Some(path) => build_lexer(path)?,
        None => concord_lexer::Lexer::standard(),
    };
    let corpus = match &args.configs {
        Some(glob) => read_glob(glob)?,
        None => Vec::new(),
    };
    let metadata = match &args.metadata {
        Some(glob) => read_glob(glob)?,
        None => Vec::new(),
    };
    let options = EngineOptions {
        embed_context: args.embed,
        parallelism: args.parallelism,
        learn: args.params.clone(),
        staleness_threshold: args.staleness,
        lex_cache_cap: args.lex_cache_cap,
        delta_learn: !args.full_relearn,
    };
    let (mut engine, resumed) = match &args.state_dir {
        Some(dir) => {
            ResilientEngine::with_store(&corpus, &metadata, lexer, options, Path::new(dir))
                .map_err(|e| CliError::Invalid(e.to_string()))?
        }
        None => (
            ResilientEngine::new(&corpus, &metadata, lexer, options)
                .map_err(|e| CliError::Invalid(e.to_string()))?,
            false,
        ),
    };
    if !resumed {
        if let Some(path) = &args.contracts {
            let json = read_file(path)?;
            engine
                .set_contracts_json(&json)
                .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        }
    }
    Ok(engine)
}

fn serve_tcp(
    shared: &Arc<ServeShared>,
    addr: &str,
    once: bool,
    workers: usize,
    out: &mut dyn Write,
) -> Result<i32, CliError> {
    let io_err = |e: std::io::Error| CliError::Io(addr.to_string(), e);
    let listener = TcpListener::bind(addr).map_err(io_err)?;
    let local = listener.local_addr().map_err(io_err)?;
    // The bound port (OS-chosen under `--listen 127.0.0.1:0`) goes to
    // stdout so a driver can connect.
    let _ = writeln!(out, "listening on {local}");
    let _ = out.flush();

    // Fixed worker pool with a bounded hand-off queue: one slot per
    // worker. When every worker is busy and the queue is full, the
    // accept loop sheds the connection with `err busy` instead of
    // queueing unboundedly.
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers);
    let rx = Arc::new(Mutex::new(rx));
    let mut handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let shared = Arc::clone(shared);
        let rx = Arc::clone(&rx);
        let handle = std::thread::Builder::new()
            .name(format!("serve-worker-{i}"))
            .spawn(move || loop {
                let stream = {
                    let guard = match rx.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.recv()
                };
                match stream {
                    Ok(stream) => handle_connection(&shared, stream),
                    Err(_) => return, // channel closed: shut down
                }
            })
            .map_err(io_err)?;
        handles.push(handle);
    }

    let mut dispatched = 0usize;
    let mut tx = Some(tx);
    for stream in listener.incoming() {
        let stream = stream.map_err(io_err)?;
        let sender = tx
            .as_ref()
            .ok_or_else(|| CliError::Invalid("accept after shutdown".to_string()))?;
        match sender.try_send(stream) {
            Ok(()) => dispatched += 1,
            Err(TrySendError::Full(mut stream)) => {
                shared.reject();
                let _ = stream.write_all(b"err busy\n");
                // Dropping the stream closes the shed connection.
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
        if once && dispatched > 0 {
            break;
        }
    }
    // Close the queue and let the workers drain what was handed off.
    tx.take();
    for handle in handles {
        let _ = handle.join();
    }
    Ok(0)
}

/// Serves one TCP connection on a worker thread. Connection-level
/// errors end the connection, never the process.
fn handle_connection(shared: &ServeShared, stream: TcpStream) {
    // A short socket timeout keeps the reader loop responsive so it
    // can enforce per-request deadlines against slow-loris clients.
    let poll = shared.limits.deadline.min(Duration::from_millis(100));
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_write_timeout(Some(shared.limits.deadline));
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = stream;
    let _ = serve_session(shared, reader, &mut writer);
}

/// One protocol line, classified.
enum LineEvent {
    /// Clean end of input.
    Eof,
    /// A complete UTF-8 line (line terminator stripped, CRLF folded).
    Line(String),
    /// The line exceeded the byte limit (it was drained to its end).
    Oversized,
    /// The line was complete but not valid UTF-8.
    NonUtf8,
    /// The deadline elapsed while the line was incomplete.
    TimedOut,
}

/// A bounded, deadline-aware line reader over any [`Read`].
///
/// Unlike [`std::io::BufRead::read_line`], it never allocates beyond
/// the configured limit for hostile input, tolerates invalid UTF-8
/// (reported, not propagated as an error), and notices when a partial
/// line has been pending longer than the deadline.
struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// When the first byte of the pending (incomplete) line arrived.
    line_started: Option<Instant>,
    max_line: usize,
    /// Draining an oversized line: discard until the next newline.
    draining: bool,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R, max_line: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
            line_started: None,
            max_line,
            draining: false,
        }
    }

    /// Reads the next line. `line_deadline` bounds how long a partial
    /// line may stay pending; `overall` (when set) is an absolute
    /// cutoff that fires even while idle — used for request bodies so
    /// a client cannot park a worker mid-UPSERT forever.
    fn next_line(
        &mut self,
        line_deadline: Duration,
        overall: Option<Instant>,
    ) -> std::io::Result<LineEvent> {
        let mut chunk = [0u8; 4096];
        loop {
            // Consume a complete line if one is already buffered.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                self.line_started = None;
                if self.draining {
                    self.draining = false;
                    return Ok(LineEvent::Oversized);
                }
                if line.len() - 1 > self.max_line {
                    return Ok(LineEvent::Oversized);
                }
                let mut end = line.len() - 1; // strip '\n'
                if end > 0 && line[end - 1] == b'\r' {
                    end -= 1; // fold CRLF
                }
                return Ok(match String::from_utf8(line[..end].to_vec()) {
                    Ok(text) => LineEvent::Line(text),
                    Err(_) => LineEvent::NonUtf8,
                });
            }
            if self.buf.len() > self.max_line && !self.draining {
                // Too long and still no newline: switch to drain mode.
                self.draining = true;
            }
            if self.draining {
                self.buf.clear();
            }
            if let Some(cutoff) = overall {
                if Instant::now() >= cutoff {
                    return Ok(LineEvent::TimedOut);
                }
            }
            if let Some(started) = self.line_started {
                if started.elapsed() >= line_deadline {
                    return Ok(LineEvent::TimedOut);
                }
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() || self.draining {
                        return Ok(LineEvent::Eof);
                    }
                    // Trailing bytes without a newline: surface them as
                    // a final line, then EOF on the next call.
                    let line = std::mem::take(&mut self.buf);
                    self.line_started = None;
                    return Ok(match String::from_utf8(line) {
                        Ok(text) => LineEvent::Line(text),
                        Err(_) => LineEvent::NonUtf8,
                    });
                }
                Ok(n) => {
                    if !self.draining && self.buf.is_empty() && self.line_started.is_none() {
                        self.line_started = Some(Instant::now());
                    }
                    if self.line_started.is_none() {
                        self.line_started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Socket poll tick: loop to re-check the deadlines.
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// What a handled command decided about the session.
enum Flow {
    Continue,
    Quit,
}

/// Runs one protocol session over arbitrary byte transports.
///
/// The engine outlives the session: the TCP server passes the same
/// shared state to every connection, so edits persist across
/// reconnects.
pub fn serve_session<R: Read, W: Write + ?Sized>(
    shared: &ServeShared,
    input: R,
    out: &mut W,
) -> std::io::Result<()> {
    let limits = shared.limits;
    let mut reader = LineReader::new(input, limits.max_line);
    loop {
        match reader.next_line(limits.deadline, None)? {
            LineEvent::Eof => return Ok(()),
            LineEvent::Oversized => {
                shared.reject();
                writeln!(out, "err too-large line exceeds {} bytes", limits.max_line)?;
                out.flush()?;
            }
            LineEvent::NonUtf8 => {
                shared.reject();
                writeln!(out, "err bad-utf8")?;
                out.flush()?;
            }
            LineEvent::TimedOut => {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
                out.flush()?;
                return Ok(()); // Slow-loris: free the worker.
            }
            LineEvent::Line(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue; // Blank lines (and bare CRLF) are ignored.
                }
                match handle_command(shared, trimmed, &mut reader, out)? {
                    Flow::Continue => {}
                    Flow::Quit => return Ok(()),
                }
            }
        }
    }
}

/// Dispatches one command line; may consume an UPSERT body from
/// `reader`. Every response is flushed before returning.
fn handle_command<R: Read, W: Write + ?Sized>(
    shared: &ServeShared,
    trimmed: &str,
    reader: &mut LineReader<R>,
    out: &mut W,
) -> std::io::Result<Flow> {
    let limits = shared.limits;
    let started = Instant::now();
    let cutoff = started + limits.deadline;
    let (command, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (trimmed, ""),
    };
    let flow = match command {
        "UPSERT" => {
            if rest.is_empty() {
                shared.reject();
                writeln!(out, "err bad-request UPSERT requires a configuration name")?;
                Flow::Continue
            } else {
                match read_body(reader, limits, cutoff)? {
                    Body::Complete(body) => {
                        let Some(mut engine) = shared.lock_engine(cutoff) else {
                            shared.deadline_hit();
                            writeln!(out, "err deadline")?;
                            out.flush()?;
                            return Ok(Flow::Continue);
                        };
                        match engine.upsert(rest, &body) {
                            Ok(id) => match engine.config_generation(rest) {
                                Ok(Some(gen)) => {
                                    writeln!(out, "ok upsert {rest} id={} gen={gen}", id.0)?
                                }
                                Ok(None) => writeln!(out, "err unknown-config {rest}")?,
                                Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                            },
                            Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                        }
                        Flow::Continue
                    }
                    Body::TooLarge => {
                        shared.reject();
                        writeln!(out, "err too-large body exceeds {} bytes", limits.max_body)?;
                        Flow::Continue
                    }
                    Body::BadUtf8 => {
                        shared.reject();
                        writeln!(out, "err bad-utf8")?;
                        Flow::Continue
                    }
                    Body::TimedOut => {
                        shared.deadline_hit();
                        writeln!(out, "err deadline")?;
                        Flow::Quit
                    }
                    Body::Eof => {
                        // Disconnect mid-UPSERT: nothing reached the
                        // engine, the next connection starts clean.
                        writeln!(out, "err bad-request UPSERT body not terminated by `.`")?;
                        Flow::Quit
                    }
                }
            }
        }
        "REMOVE" => {
            if rest.is_empty() {
                shared.reject();
                writeln!(out, "err bad-request REMOVE requires a configuration name")?;
            } else if let Some(mut engine) = shared.lock_engine(cutoff) {
                match engine.remove(rest) {
                    Ok(Some(_)) => writeln!(out, "ok remove {rest}")?,
                    Ok(None) => writeln!(out, "err unknown-config {rest}")?,
                    Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                }
            } else {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
            }
            Flow::Continue
        }
        "LEARN" => {
            if let Some(mut engine) = shared.lock_engine(cutoff) {
                match engine.relearn() {
                    Ok(_) => match engine.contracts_len() {
                        Ok(Some(n)) => {
                            let delta = engine.learn_delta().unwrap_or_default();
                            writeln!(
                                out,
                                "ok learn {n} contracts mined={} reused={}",
                                delta.mined_last_learn, delta.reused_last_learn
                            )?
                        }
                        Ok(None) => writeln!(out, "err not-learned")?,
                        Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                    },
                    Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                }
            } else {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
            }
            Flow::Continue
        }
        "CHECK" => {
            if let Some(mut engine) = shared.lock_engine(cutoff) {
                match engine.check() {
                    Ok(result) => {
                        for v in &result.report.violations {
                            writeln!(out, "{v}")?;
                        }
                        let summary = result.report.coverage.summary();
                        writeln!(
                            out,
                            "ok check {} violations; coverage {:.1}% of {} lines; dirty={} reused={}",
                            result.report.violations.len(),
                            summary.fraction * 100.0,
                            summary.total_lines,
                            result.engine.dirty_configs,
                            result.engine.reused_configs,
                        )?;
                    }
                    Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                }
            } else {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
            }
            Flow::Continue
        }
        "GEN" => {
            if rest.is_empty() {
                shared.reject();
                writeln!(out, "err bad-request GEN requires a configuration name")?;
            } else if let Some(engine) = shared.lock_engine(cutoff) {
                match engine.config_generation(rest) {
                    Ok(Some(gen)) => writeln!(out, "ok gen {rest} {gen}")?,
                    Ok(None) => writeln!(out, "err unknown-config {rest}")?,
                    Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                }
            } else {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
            }
            Flow::Continue
        }
        "CONTRACTS" => {
            if let Some(engine) = shared.lock_engine(cutoff) {
                match engine.contracts_len() {
                    Ok(Some(n)) => writeln!(out, "ok contracts {n}")?,
                    Ok(None) => writeln!(out, "err not-learned")?,
                    Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                }
            } else {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
            }
            Flow::Continue
        }
        "STATS" => {
            if let Some(mut engine) = shared.lock_engine(cutoff) {
                engine.add_serve_counters(
                    shared.requests_rejected.load(Ordering::Relaxed),
                    shared.deadlines_hit.load(Ordering::Relaxed),
                );
                match engine.snapshot_stats() {
                    Ok(stats) => writeln!(out, "ok stats {}", stats.to_json().render())?,
                    Err(fault) => writeln!(out, "{}", fault_line(&fault))?,
                }
            } else {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
            }
            Flow::Continue
        }
        "CHECKPOINT" => {
            if let Some(mut engine) = shared.lock_engine(cutoff) {
                if engine.checkpoint() {
                    writeln!(out, "ok checkpoint")?;
                } else {
                    writeln!(out, "err persist checkpoint failed or no --state-dir")?;
                }
            } else {
                shared.deadline_hit();
                writeln!(out, "err deadline")?;
            }
            Flow::Continue
        }
        "FAULT" if shared.faults_enabled => {
            match OpKind::parse(rest) {
                Some(kind) => {
                    if let Some(mut engine) = shared.lock_engine(cutoff) {
                        engine.arm_panic(kind);
                        writeln!(out, "ok fault armed {rest}")?;
                    } else {
                        shared.deadline_hit();
                        writeln!(out, "err deadline")?;
                    }
                }
                None => {
                    shared.reject();
                    writeln!(out, "err bad-request unknown fault kind {rest:?}")?;
                }
            }
            Flow::Continue
        }
        "QUIT" => {
            writeln!(out, "ok bye")?;
            Flow::Quit
        }
        other => {
            shared.reject();
            writeln!(out, "err unknown-command {other:?}")?;
            Flow::Continue
        }
    };
    out.flush()?;
    Ok(flow)
}

/// The outcome of reading an UPSERT body.
enum Body {
    /// Body read fully (CRLF folded to LF, sentinel consumed).
    Complete(String),
    /// The body (or one of its lines) exceeded a limit; the rest was
    /// drained to the sentinel so the session can continue.
    TooLarge,
    /// A body line was not valid UTF-8 (drained to the sentinel).
    BadUtf8,
    /// The deadline elapsed mid-body.
    TimedOut,
    /// The client disconnected before the sentinel.
    Eof,
}

/// Reads an UPSERT body up to the `.` sentinel line, enforcing the
/// body byte limit and the request deadline.
fn read_body<R: Read>(
    reader: &mut LineReader<R>,
    limits: ServeLimits,
    cutoff: Instant,
) -> std::io::Result<Body> {
    let mut body = String::new();
    let mut failed: Option<Body> = None;
    loop {
        match reader.next_line(limits.deadline, Some(cutoff))? {
            LineEvent::Eof => return Ok(Body::Eof),
            LineEvent::TimedOut => return Ok(Body::TimedOut),
            LineEvent::Oversized => {
                failed.get_or_insert(Body::TooLarge);
            }
            LineEvent::NonUtf8 => {
                failed.get_or_insert(Body::BadUtf8);
            }
            LineEvent::Line(line) => {
                if line.trim_end_matches(['\r', '\n']) == "." {
                    return Ok(failed.unwrap_or(Body::Complete(body)));
                }
                if failed.is_none() {
                    body.push_str(&line);
                    body.push('\n');
                    if body.len() > limits.max_body {
                        body.clear();
                        failed = Some(Body::TooLarge);
                    }
                }
            }
        }
    }
}

/// Renders an [`EngineFault`] as a protocol error line. Messages are
/// flattened to one line so the framing survives arbitrary panic text.
fn fault_line(fault: &EngineFault) -> String {
    let one_line = |s: &str| s.replace(['\n', '\r'], " ");
    match fault {
        EngineFault::UnknownConfig(name) => format!("err unknown-config {}", one_line(name)),
        EngineFault::NoContracts => "err no contracts loaded".to_string(),
        EngineFault::BadContracts(e) => format!("err bad-request {}", one_line(e)),
        EngineFault::Panicked(msg) => format!("err internal {}", one_line(msg)),
        EngineFault::Persist(e) => format!("err persist {}", one_line(e)),
        EngineFault::Poisoned => "err poisoned".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn corpus() -> Vec<(String, String)> {
        (0..6)
            .map(|i| {
                (
                    format!("dev{i}"),
                    format!(
                        "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                        100 + i,
                        250 + i
                    ),
                )
            })
            .collect()
    }

    fn fresh_shared() -> ServeShared {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        ServeShared::new(engine, ServeLimits::default(), true)
    }

    fn session(shared: &ServeShared, script: &str) -> String {
        let mut out = Vec::new();
        serve_session(shared, Cursor::new(script.as_bytes().to_vec()), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn session_bytes(shared: &ServeShared, script: &[u8]) -> String {
        let mut out = Vec::new();
        serve_session(shared, Cursor::new(script.to_vec()), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn scripted_session_learns_edits_and_checks() {
        let shared = fresh_shared();
        let out = session(
            &shared,
            "LEARN\nCHECK\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nCHECK\nQUIT\n",
        );
        assert!(out.contains("ok learn"), "{out}");
        assert!(out.contains("ok check 0 violations"), "{out}");
        // The edited dev0 lost its bgp line: one dirty config, violations.
        assert!(out.contains("missing required line"), "{out}");
        assert!(out.contains("dirty=1 reused=5"), "{out}");
        assert!(out.ends_with("ok bye\n"), "{out}");
    }

    #[test]
    fn session_state_persists_across_sessions() {
        // Reconnecting (a second session on the same shared state) sees
        // the first session's edits — the engine outlives the transport.
        let shared = fresh_shared();
        session(&shared, "LEARN\nCHECK\nREMOVE dev5\n");
        let out = session(&shared, "CHECK\nSTATS\n");
        assert!(out.contains("dirty=0 reused=5"), "{out}");
        assert!(out.contains("\"edits\":1"), "{out}");
    }

    #[test]
    fn errors_are_reported_inline_and_engine_stays_usable() {
        let shared = fresh_shared();
        let out = session(
            &shared,
            "CHECK\nREMOVE nope\nUPSERT\nFLY\nREMOVE\nGEN nope\nLEARN\nCHECK\nQUIT\n",
        );
        assert!(out.contains("err no contracts loaded"), "{out}");
        assert!(out.contains("err unknown-config nope"), "{out}");
        assert!(out.contains("err bad-request UPSERT requires"), "{out}");
        assert!(out.contains("err unknown-command \"FLY\""), "{out}");
        assert!(out.contains("err bad-request REMOVE requires"), "{out}");
        // And after all those errors the engine still works.
        assert!(out.contains("ok learn"), "{out}");
        assert!(out.contains("ok check 0 violations"), "{out}");
    }

    #[test]
    fn unknown_config_generation_is_an_error_not_zero() {
        let shared = fresh_shared();
        let out = session(&shared, "GEN dev0\nGEN ghost\nQUIT\n");
        assert!(out.contains("ok gen dev0 0"), "{out}");
        assert!(out.contains("err unknown-config ghost"), "{out}");
    }

    #[test]
    fn contracts_before_learn_is_not_learned_not_zero() {
        let shared = fresh_shared();
        let out = session(&shared, "CONTRACTS\nLEARN\nCONTRACTS\nQUIT\n");
        assert!(out.contains("err not-learned"), "{out}");
        assert!(out.contains("ok contracts"), "{out}");
        assert!(!out.contains("ok contracts 0"), "{out}");
    }

    #[test]
    fn unterminated_upsert_body_ends_session_without_touching_engine() {
        let shared = fresh_shared();
        let out = session(&shared, "UPSERT dev9\nvlan 1\n");
        assert!(
            out.contains("err bad-request UPSERT body not terminated"),
            "{out}"
        );
        // dev9 must NOT exist: the partial body never reached the engine.
        let out = session(&shared, "GEN dev9\nQUIT\n");
        assert!(out.contains("err unknown-config dev9"), "{out}");
    }

    #[test]
    fn crlf_lines_are_equivalent_to_lf() {
        let shared = fresh_shared();
        let lf = session(&shared, "LEARN\nUPSERT dev0\nvlan 1\n.\nCHECK\nQUIT\n");
        let shared2 = fresh_shared();
        let crlf = session(
            &shared2,
            "LEARN\r\nUPSERT dev0\r\nvlan 1\r\n.\r\nCHECK\r\nQUIT\r\n",
        );
        assert_eq!(lf, crlf);
    }

    #[test]
    fn non_utf8_input_is_rejected_and_session_continues() {
        let shared = fresh_shared();
        let mut script = Vec::new();
        script.extend_from_slice(b"LEARN\n");
        script.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']);
        script.extend_from_slice(b"CHECK\nQUIT\n");
        let out = session_bytes(&shared, &script);
        assert!(out.contains("err bad-utf8"), "{out}");
        assert!(out.contains("ok check 0 violations"), "{out}");
        assert!(out.ends_with("ok bye\n"), "{out}");
    }

    #[test]
    fn oversized_line_is_rejected_and_session_continues() {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        let limits = ServeLimits {
            max_line: 64,
            ..ServeLimits::default()
        };
        let shared = ServeShared::new(engine, limits, false);
        let long = "X".repeat(1000);
        let out = session(&shared, &format!("{long}\nLEARN\nQUIT\n"));
        assert!(out.contains("err too-large"), "{out}");
        assert!(out.contains("ok learn"), "{out}");
    }

    #[test]
    fn oversized_body_is_rejected_but_engine_stays_clean() {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        let limits = ServeLimits {
            max_body: 32,
            ..ServeLimits::default()
        };
        let shared = ServeShared::new(engine, limits, false);
        let big_body = "vlan 1\n".repeat(20);
        let out = session(
            &shared,
            &format!("UPSERT huge\n{big_body}.\nGEN huge\nQUIT\n"),
        );
        assert!(out.contains("err too-large"), "{out}");
        assert!(out.contains("err unknown-config huge"), "{out}");
    }

    #[test]
    fn fault_verb_arms_a_panic_and_recovery_matches_oracle() {
        let shared = fresh_shared();
        let clean = session(&shared, "LEARN\nCHECK\n");
        let check_line = clean
            .lines()
            .find(|l| l.starts_with("ok check"))
            .unwrap()
            .to_string();
        let out = session(&shared, "FAULT check\nCHECK\nCHECK\nQUIT\n");
        assert!(out.contains("ok fault armed check"), "{out}");
        assert!(out.contains("err internal injected fault"), "{out}");
        // The recovered engine re-checks from scratch, same answer.
        assert!(out.contains(&check_line), "{out}");
    }

    #[test]
    fn fault_verb_is_refused_without_opt_in() {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        let shared = ServeShared::new(engine, ServeLimits::default(), false);
        let out = session(&shared, "FAULT check\nQUIT\n");
        assert!(out.contains("err unknown-command \"FAULT\""), "{out}");
    }

    #[test]
    fn learn_reports_delta_counters_and_stats_carry_learn_delta() {
        let shared = fresh_shared();
        let out = session(
            &shared,
            "LEARN\nLEARN\nUPSERT dev0\nvlan 1\n.\nLEARN\nSTATS\nQUIT\n",
        );
        let learns: Vec<&str> = out.lines().filter(|l| l.starts_with("ok learn")).collect();
        assert_eq!(learns.len(), 3, "{out}");
        assert!(learns[0].ends_with("mined=6 reused=0"), "{out}");
        assert!(learns[1].ends_with("mined=0 reused=6"), "{out}");
        assert!(learns[2].ends_with("mined=1 reused=5"), "{out}");
        let stats_line = out
            .lines()
            .find(|l| l.starts_with("ok stats "))
            .expect("stats line");
        let json =
            concord_json::Json::parse(stats_line.strip_prefix("ok stats ").unwrap()).unwrap();
        assert_eq!(json["learn_delta"]["enabled"].as_bool(), Some(true));
        assert_eq!(json["learn_delta"]["sketches"].as_u64(), Some(6));
        assert_eq!(json["learn_delta"]["mined_last_learn"].as_u64(), Some(1));
        assert_eq!(json["learn_delta"]["contracts_edits"].as_u64(), Some(1));
    }

    #[test]
    fn stats_is_one_json_line_with_robustness() {
        let shared = fresh_shared();
        let out = session(&shared, "NOPE\nSTATS\n");
        let stats_line = out
            .lines()
            .find(|l| l.starts_with("ok stats "))
            .expect("stats line");
        let json_part = stats_line.strip_prefix("ok stats ").unwrap();
        let json = concord_json::Json::parse(json_part).expect("valid JSON");
        assert_eq!(json["configs"].as_u64(), Some(6));
        assert!(json["contracts"].is_null());
        assert_eq!(
            json["robustness"]["requests_rejected"].as_u64(),
            Some(1),
            "{json_part}"
        );
    }
}
