//! `concord serve`: a resident incremental engine behind a line protocol.
//!
//! The batch commands (`learn`, `check`) rebuild the pipeline from disk
//! on every invocation. `serve` instead holds one [`Engine`] for the
//! whole session and absorbs single-configuration edits, so each CHECK
//! costs work proportional to what changed since the last one (§3.7's
//! interactive workflow).
//!
//! The protocol is plain text, one command per line:
//!
//! ```text
//! UPSERT <name>     -- followed by the configuration body, terminated
//!                      by a line containing only "."
//! REMOVE <name>
//! LEARN             -- relearn contracts from the current snapshot
//! CHECK             -- report violations; recomputes only dirty configs
//! STATS             -- one-line JSON engine snapshot
//! QUIT
//! ```
//!
//! Every response line starts with `ok` or `err`, so a driver can script
//! the session. By default the session runs over stdin/stdout; with
//! `--listen <addr>` it accepts TCP connections (one at a time — the
//! engine state persists across connections, and `--once` exits after
//! the first connection for smoke tests). Everything is `std`-only:
//! [`std::net::TcpListener`] and line-buffered reads.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

use concord_core::ContractSet;
use concord_engine::{Engine, EngineOptions};
use concord_json::ToJson;

use crate::args::ServeArgs;
use crate::{build_lexer, read_file, read_glob, CliError};

/// Runs `concord serve`. Returns the process exit code.
pub fn run_serve(args: &ServeArgs, out: &mut dyn Write) -> Result<i32, CliError> {
    let mut engine = build_engine(args)?;
    match &args.listen {
        Some(addr) => serve_tcp(&mut engine, addr, args.once, out),
        None => {
            let stdin = std::io::stdin();
            serve_session(&mut engine, stdin.lock(), out)
                .map_err(|e| CliError::Io("<stdin>".to_string(), e))?;
            Ok(0)
        }
    }
}

/// Builds the session's engine from the serve arguments: optional
/// initial corpus and metadata globs, optional preloaded contracts.
fn build_engine(args: &ServeArgs) -> Result<Engine, CliError> {
    let lexer = match &args.tokens {
        Some(path) => build_lexer(path)?,
        None => concord_lexer::Lexer::standard(),
    };
    let corpus = match &args.configs {
        Some(glob) => read_glob(glob)?,
        None => Vec::new(),
    };
    let metadata = match &args.metadata {
        Some(glob) => read_glob(glob)?,
        None => Vec::new(),
    };
    let options = EngineOptions {
        embed_context: args.embed,
        parallelism: args.parallelism,
        learn: args.params.clone(),
        staleness_threshold: args.staleness,
    };
    let mut engine = Engine::from_corpus_with_lexer(&corpus, &metadata, lexer, options)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    if let Some(path) = &args.contracts {
        let json = read_file(path)?;
        let contracts =
            ContractSet::from_json(&json).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        engine.set_contracts(contracts);
    }
    Ok(engine)
}

fn serve_tcp(
    engine: &mut Engine,
    addr: &str,
    once: bool,
    out: &mut dyn Write,
) -> Result<i32, CliError> {
    let listener = TcpListener::bind(addr).map_err(|e| CliError::Io(addr.to_string(), e))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    // The bound port (OS-chosen under `--listen 127.0.0.1:0`) goes to
    // stdout so a driver can connect.
    let _ = writeln!(out, "listening on {local}");
    let _ = out.flush();
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| CliError::Io(addr.to_string(), e))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| CliError::Io(addr.to_string(), e))?,
        );
        let mut writer = stream;
        // A dropped connection ends its session, not the server.
        if let Err(e) = serve_session(engine, reader, &mut writer) {
            let _ = writeln!(out, "connection error: {e}");
        }
        if once {
            break;
        }
    }
    Ok(0)
}

/// Runs one protocol session over arbitrary line-based transports.
///
/// The engine outlives the session: a TCP server passes the same engine
/// to every connection, so edits persist across reconnects.
pub fn serve_session<R: BufRead, W: Write + ?Sized>(
    engine: &mut Engine,
    mut input: R,
    out: &mut W,
) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(()); // EOF ends the session.
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (command, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (trimmed, ""),
        };
        match command {
            "UPSERT" => {
                if rest.is_empty() {
                    writeln!(out, "err UPSERT requires a configuration name")?;
                } else {
                    match read_body(&mut input)? {
                        Some(body) => {
                            let id = engine.upsert_config(rest, &body);
                            let gen = engine.config_generation(rest).unwrap_or(0);
                            writeln!(out, "ok upsert {rest} id={} gen={gen}", id.0)?;
                        }
                        None => {
                            writeln!(out, "err UPSERT body not terminated by `.`")?;
                            out.flush()?;
                            return Ok(());
                        }
                    }
                }
            }
            "REMOVE" => {
                if rest.is_empty() {
                    writeln!(out, "err REMOVE requires a configuration name")?;
                } else {
                    match engine.remove_config(rest) {
                        Some(_) => writeln!(out, "ok remove {rest}")?,
                        None => writeln!(out, "err no configuration named {rest}")?,
                    }
                }
            }
            "LEARN" => {
                engine.relearn();
                let n = engine.contracts().map(ContractSet::len).unwrap_or(0);
                writeln!(out, "ok learn {n} contracts")?;
            }
            "CHECK" => match engine.check_dirty() {
                Ok(result) => {
                    for v in &result.report.violations {
                        writeln!(out, "{v}")?;
                    }
                    let summary = result.report.coverage.summary();
                    writeln!(
                        out,
                        "ok check {} violations; coverage {:.1}% of {} lines; dirty={} reused={}",
                        result.report.violations.len(),
                        summary.fraction * 100.0,
                        summary.total_lines,
                        result.engine.dirty_configs,
                        result.engine.reused_configs,
                    )?;
                }
                Err(e) => writeln!(out, "err {e}")?,
            },
            "STATS" => {
                writeln!(
                    out,
                    "ok stats {}",
                    engine.snapshot_stats().to_json().render()
                )?;
            }
            "QUIT" => {
                writeln!(out, "ok bye")?;
                out.flush()?;
                return Ok(());
            }
            other => writeln!(out, "err unknown command {other:?}")?,
        }
        out.flush()?;
    }
}

/// Reads an UPSERT body up to the `.` sentinel line. `None` on EOF
/// before the sentinel.
fn read_body<R: BufRead>(input: &mut R) -> std::io::Result<Option<String>> {
    let mut body = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim_end_matches(['\r', '\n']) == "." {
            return Ok(Some(body));
        }
        body.push_str(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn fresh_engine() -> Engine {
        let corpus: Vec<(String, String)> = (0..6)
            .map(|i| {
                (
                    format!("dev{i}"),
                    format!(
                        "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                        100 + i,
                        250 + i
                    ),
                )
            })
            .collect();
        Engine::from_corpus(&corpus, &[], EngineOptions::default()).unwrap()
    }

    fn session(engine: &mut Engine, script: &str) -> String {
        let mut out = Vec::new();
        serve_session(engine, Cursor::new(script.to_string()), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn scripted_session_learns_edits_and_checks() {
        let mut engine = fresh_engine();
        let out = session(
            &mut engine,
            "LEARN\nCHECK\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nCHECK\nQUIT\n",
        );
        assert!(out.contains("ok learn"), "{out}");
        assert!(out.contains("ok check 0 violations"), "{out}");
        // The edited dev0 lost its bgp line: one dirty config, violations.
        assert!(out.contains("missing required line"), "{out}");
        assert!(out.contains("dirty=1 reused=5"), "{out}");
        assert!(out.ends_with("ok bye\n"), "{out}");
    }

    #[test]
    fn session_state_persists_across_sessions() {
        // Reconnecting (a second session on the same engine) sees the
        // first session's edits — the engine outlives the transport.
        let mut engine = fresh_engine();
        session(&mut engine, "LEARN\nCHECK\nREMOVE dev5\n");
        let out = session(&mut engine, "CHECK\nSTATS\n");
        assert!(out.contains("dirty=0 reused=5"), "{out}");
        assert!(out.contains("\"edits\":1"), "{out}");
    }

    #[test]
    fn errors_are_reported_inline() {
        let mut engine = fresh_engine();
        let out = session(
            &mut engine,
            "CHECK\nREMOVE nope\nUPSERT\nFLY\nREMOVE\nQUIT\n",
        );
        assert!(out.contains("err no contracts loaded"), "{out}");
        assert!(out.contains("err no configuration named nope"), "{out}");
        assert!(out.contains("err UPSERT requires"), "{out}");
        assert!(out.contains("err unknown command \"FLY\""), "{out}");
        assert!(out.contains("err REMOVE requires"), "{out}");
    }

    #[test]
    fn unterminated_upsert_body_ends_session() {
        let mut engine = fresh_engine();
        let out = session(&mut engine, "UPSERT dev9\nvlan 1\n");
        assert!(out.contains("err UPSERT body not terminated"), "{out}");
    }

    #[test]
    fn stats_is_one_json_line() {
        let mut engine = fresh_engine();
        let out = session(&mut engine, "STATS\n");
        let json_part = out
            .strip_prefix("ok stats ")
            .expect("stats prefix")
            .trim_end();
        let json = concord_json::Json::parse(json_part).expect("valid JSON");
        assert_eq!(json["configs"].as_u64(), Some(6));
        assert!(json["contracts"].is_null());
    }
}
