//! `concord serve`: a resident incremental engine behind a request
//! protocol.
//!
//! The batch commands (`learn`, `check`) rebuild the pipeline from disk
//! on every invocation. `serve` instead holds one resident engine for
//! the whole session and absorbs single-configuration edits, so each
//! CHECK costs work proportional to what changed since the last one
//! (§3.7's interactive workflow).
//!
//! The default protocol is plain text, one command per line (LF or
//! CRLF):
//!
//! ```text
//! UPSERT <name>     -- followed by the configuration body, terminated
//!                      by a line containing only "."
//! REMOVE <name>
//! LEARN             -- relearn contracts from the current snapshot;
//!                      folds cached per-config sketches, re-mining
//!                      only edited configs (unless --full-relearn)
//! CHECK             -- report violations; recomputes only dirty configs
//! GEN <name>        -- the configuration's edit generation
//! CONTRACTS         -- how many contracts are loaded
//! STATS             -- one-line JSON engine snapshot (v8 schema)
//! CHECKPOINT        -- force a durable checkpoint (needs --state-dir)
//! BATCH <n>         -- the next n commands execute under one engine
//!                      acquisition; their responses stream back in
//!                      order, then an `ok batch <n>` trailer
//! QUIT
//! ```
//!
//! A connection whose first byte is `0xC3` speaks the length-prefixed
//! binary framing instead (see [`crate::protocol`]); both framings
//! drive the same request handler, so stdin, TCP, text, and binary are
//! thin adapters over one engine API.
//!
//! Every response line starts with `ok` or `err`; errors carry a stable
//! machine-readable code (`err busy`, `err deadline`, `err too-large`,
//! `err bad-utf8`, `err bad-request …`, `err unknown-command …`,
//! `err unknown-config …`, `err not-learned`, `err internal …`,
//! `err persist …`, `err poisoned`).
//!
//! # Concurrency
//!
//! The engine sits behind a deadline-bounded read/write lock
//! ([`crate::sync::DeadlineRwLock`]) instead of a mutex: CHECK (when the
//! engine's tagged report cache is current), GEN, CONTRACTS, and STATS
//! run concurrently under the shared side, while UPSERT/REMOVE/LEARN,
//! CHECKPOINT, fault verbs, and any read that misses the shared path
//! take the exclusive side. On Linux (x86_64/aarch64) TCP connections
//! are served by a readiness event loop (`epoll` via raw syscalls, no
//! external crates): one I/O thread owns every socket and feeds parsed
//! requests to a small executor pool (`--workers`), pipelined requests
//! on one connection execute in order, and responses never interleave.
//! Other targets fall back to a thread-per-connection loop with the
//! same limits.
//!
//! # Robustness
//!
//! The engine is wrapped in [`ResilientEngine`]: a panic inside any
//! operation poisons the live snapshot and rebuilds from the
//! last-known-good image, so the process never dies and never answers
//! from suspect state. With `--state-dir` every acknowledged mutation
//! is WAL-logged (fsync'd) and periodically checkpointed, so `kill -9`
//! + restart resumes byte-identical.
//!
//! Load shedding caps concurrent connections (`--max-conns`, default
//! twice the worker count) with `err busy`. Oversized lines
//! (`--max-line-bytes`) and bodies (`--max-body-bytes`) are rejected
//! without touching the engine, invalid UTF-8 is reported as
//! `err bad-utf8`, and a client that trickles a request slower than
//! `--deadline-ms` (slow-loris) is disconnected with `err deadline`.
//! Everything is `std`-only.
//!
//! # Sharding
//!
//! With `--shards N` the resident engine is replaced by a
//! [`crate::fleet::Fleet`]: N shard engines behind a consistent-hash
//! router, each with its own WAL and checkpoint under `--state-dir`,
//! optionally followed by `--replicas M` WAL-tailing read replicas per
//! shard. Responses stay byte-identical to `--shards 1`; STATS grows a
//! `fleet` object (schema v8).

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use concord_core::ServeTransportStats;
use concord_engine::{EngineCheckReport, EngineFault, EngineOptions, OpKind, ResilientEngine};
use concord_json::ToJson;

use crate::args::ServeArgs;
use crate::protocol::{frame_response, BatchItem, Framing, ParseEvent, Request, SessionParser};
use crate::sync::DeadlineRwLock;
use crate::{build_lexer, read_file, read_glob, CliError};

/// Request-level limits shared by every connection.
#[derive(Debug, Clone, Copy)]
pub struct ServeLimits {
    /// Per-request deadline: covers reading one command (and its body)
    /// and waiting for the engine lock.
    pub deadline: Duration,
    /// Maximum bytes in one protocol line (or binary frame name).
    pub max_line: usize,
    /// Maximum bytes in one UPSERT body (or binary frame body).
    pub max_body: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            deadline: Duration::from_millis(5000),
            max_line: 64 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// Transport-layer counters, reported under `serve` in STATS (schema
/// v7). All relaxed: they are monotonic telemetry, not synchronization.
#[derive(Debug, Default)]
struct TransportCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    binary_frames: AtomicU64,
    shared_reads: AtomicU64,
    exclusive_ops: AtomicU64,
}

impl TransportCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServeTransportStats {
        ServeTransportStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            binary_frames: self.binary_frames.load(Ordering::Relaxed),
            shared_reads: self.shared_reads.load(Ordering::Relaxed),
            exclusive_ops: self.exclusive_ops.load(Ordering::Relaxed),
        }
    }
}

/// The engine(s) a session executes against: the classic single
/// resident engine, or a sharded fleet (`--shards` / `--replicas`).
// One `Backend` exists per process (inside the `Arc<ServeShared>`), so
// the variant size gap is irrelevant and boxing would only add a deref
// to every request.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Backend {
    Single(DeadlineRwLock<ResilientEngine>),
    Fleet(crate::fleet::Fleet),
}

/// State shared by every connection: the backend (single engine behind
/// its read/write lock, or the fleet), the limits, and the serve-layer
/// counters.
pub struct ServeShared {
    backend: Backend,
    limits: ServeLimits,
    /// `FAULT <op>` verb enabled (deterministic panic injection for the
    /// robustness harness; off unless `--enable-fault-injection`).
    faults_enabled: bool,
    requests_rejected: AtomicU64,
    deadlines_hit: AtomicU64,
    transport: TransportCounters,
}

impl ServeShared {
    /// Wraps an engine for serving.
    pub fn new(engine: ResilientEngine, limits: ServeLimits, faults_enabled: bool) -> ServeShared {
        ServeShared::with_backend(
            Backend::Single(DeadlineRwLock::new(engine)),
            limits,
            faults_enabled,
        )
    }

    /// Wraps a sharded fleet for serving.
    pub(crate) fn new_fleet(
        fleet: crate::fleet::Fleet,
        limits: ServeLimits,
        faults_enabled: bool,
    ) -> ServeShared {
        ServeShared::with_backend(Backend::Fleet(fleet), limits, faults_enabled)
    }

    fn with_backend(backend: Backend, limits: ServeLimits, faults_enabled: bool) -> ServeShared {
        ServeShared {
            backend,
            limits,
            faults_enabled,
            requests_rejected: AtomicU64::new(0),
            deadlines_hit: AtomicU64::new(0),
            transport: TransportCounters::default(),
        }
    }

    pub(crate) fn limits(&self) -> ServeLimits {
        self.limits
    }

    pub(crate) fn reject(&self) {
        self.requests_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn deadline_hit(&self) {
        self.deadlines_hit.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_connection(&self) {
        TransportCounters::bump(&self.transport.connections);
    }

    pub(crate) fn faults_enabled(&self) -> bool {
        self.faults_enabled
    }

    /// The serve-layer robustness overlay: `(requests_rejected,
    /// deadlines_hit)` — counted here, not in any engine.
    pub(crate) fn serve_overlay(&self) -> (u64, u64) {
        (
            self.requests_rejected.load(Ordering::Relaxed),
            self.deadlines_hit.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn transport_snapshot(&self) -> ServeTransportStats {
        self.transport.snapshot()
    }

    pub(crate) fn count_shared_read(&self) {
        TransportCounters::bump(&self.transport.shared_reads);
    }

    pub(crate) fn count_exclusive_op(&self) {
        TransportCounters::bump(&self.transport.exclusive_ops);
    }
}

/// One rendered response, already in the session's framing.
pub(crate) struct Reply {
    pub(crate) bytes: Vec<u8>,
    /// The session ends after this response is written.
    pub(crate) quit: bool,
}

/// Turns one parse event into its framed response, applying the
/// rejection taxonomy and executing requests against the engine. This
/// is the single request handler every transport drives.
pub(crate) fn respond(shared: &ServeShared, event: ParseEvent, framing: Framing) -> Reply {
    if framing == Framing::Binary {
        TransportCounters::bump(&shared.transport.binary_frames);
    }
    let (text, quit) = match event {
        ParseEvent::Request(req) => {
            TransportCounters::bump(&shared.transport.requests);
            execute_request(shared, req)
        }
        ParseEvent::Error { line, reject } => {
            if reject {
                shared.reject();
            }
            (format!("{line}\n"), false)
        }
        ParseEvent::Fatal { line, reject } => {
            if reject {
                shared.reject();
            }
            (format!("{line}\n"), true)
        }
    };
    let mut bytes = Vec::with_capacity(text.len() + 8);
    frame_response(framing, text.as_bytes(), &mut bytes);
    Reply { bytes, quit }
}

/// The framed `err deadline` response (the transport counts the hit and
/// closes the connection after writing it).
pub(crate) fn deadline_reply(framing: Framing) -> Vec<u8> {
    let mut bytes = Vec::new();
    frame_response(framing, b"err deadline\n", &mut bytes);
    bytes
}

/// Whether a request needs the exclusive side of the engine lock.
pub(crate) fn is_write_op(req: &Request) -> bool {
    matches!(
        req,
        Request::Upsert { .. }
            | Request::Remove { .. }
            | Request::Learn
            | Request::Checkpoint
            | Request::Fault { .. }
    )
}

/// Executes one top-level request; returns the response text and
/// whether the session ends.
fn execute_request(shared: &ServeShared, req: Request) -> (String, bool) {
    match req {
        Request::Quit => ("ok bye\n".to_string(), true),
        Request::Batch(items) => (execute_batch(shared, &items), false),
        req => {
            let engine = match &shared.backend {
                Backend::Fleet(fleet) => {
                    return (crate::fleet::execute(shared, fleet, &req), false)
                }
                Backend::Single(engine) => engine,
            };
            let cutoff = Instant::now() + shared.limits.deadline;
            if !is_write_op(&req) {
                // Shared-read fast path: concurrent CHECK/GEN/STATS
                // don't serialize behind each other.
                match engine.read(cutoff) {
                    Some(guard) => {
                        if let Some(text) = exec_shared(shared, &guard, &req) {
                            TransportCounters::bump(&shared.transport.shared_reads);
                            return (text, false);
                        }
                        // Cache miss (or a state the shared path must
                        // not serve): fall through to exclusive.
                    }
                    None => {
                        shared.deadline_hit();
                        return ("err deadline\n".to_string(), false);
                    }
                }
            }
            match engine.write(cutoff) {
                Some(mut guard) => {
                    TransportCounters::bump(&shared.transport.exclusive_ops);
                    (exec_exclusive(shared, &mut guard, &req), false)
                }
                None => {
                    shared.deadline_hit();
                    ("err deadline\n".to_string(), false)
                }
            }
        }
    }
}

/// Executes a BATCH under one engine acquisition. All-read batches run
/// under the shared lock; if any item misses the shared path the
/// partial output is discarded and the whole batch reruns exclusively
/// (reads are idempotent, so nothing double-fires). Any mutating item
/// takes the exclusive lock up front.
fn execute_batch(shared: &ServeShared, items: &[BatchItem]) -> String {
    TransportCounters::bump(&shared.transport.batches);
    shared
        .transport
        .batched_requests
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    let engine = match &shared.backend {
        Backend::Fleet(fleet) => return crate::fleet::execute_batch(shared, fleet, items),
        Backend::Single(engine) => engine,
    };
    let cutoff = Instant::now() + shared.limits.deadline;
    let needs_write = items
        .iter()
        .any(|item| matches!(item, BatchItem::Run(req) if is_write_op(req)));
    if !needs_write {
        match engine.read(cutoff) {
            Some(guard) => {
                let mut out = String::new();
                // Rejection counts are deferred until the shared run is
                // known to stick, so an exclusive rerun can't double-count.
                let mut rejects = 0u64;
                let mut complete = true;
                for item in items {
                    match item {
                        BatchItem::Error { line, reject } => {
                            if *reject {
                                rejects += 1;
                            }
                            out.push_str(line);
                            out.push('\n');
                        }
                        BatchItem::Run(req) => match exec_shared(shared, &guard, req) {
                            Some(text) => out.push_str(&text),
                            None => {
                                complete = false;
                                break;
                            }
                        },
                    }
                }
                if complete {
                    TransportCounters::bump(&shared.transport.shared_reads);
                    shared
                        .requests_rejected
                        .fetch_add(rejects, Ordering::Relaxed);
                    out.push_str(&format!("ok batch {}\n", items.len()));
                    return out;
                }
            }
            None => {
                shared.deadline_hit();
                return "err deadline\n".to_string();
            }
        }
    }
    match engine.write(cutoff) {
        Some(mut guard) => {
            TransportCounters::bump(&shared.transport.exclusive_ops);
            let mut out = String::new();
            for item in items {
                match item {
                    BatchItem::Error { line, reject } => {
                        if *reject {
                            shared.reject();
                        }
                        out.push_str(line);
                        out.push('\n');
                    }
                    BatchItem::Run(req) => out.push_str(&exec_exclusive(shared, &mut guard, req)),
                }
            }
            out.push_str(&format!("ok batch {}\n", items.len()));
            out
        }
        None => {
            shared.deadline_hit();
            "err deadline\n".to_string()
        }
    }
}

/// Attempts a request under the shared (read) lock. `None` means the
/// shared path cannot serve it — stale report cache, armed fault, or
/// post-recovery state that must go through the guarded exclusive path.
fn exec_shared(shared: &ServeShared, engine: &ResilientEngine, req: &Request) -> Option<String> {
    match req {
        Request::Check => engine.check_shared().map(|report| render_check(&report)),
        Request::Gen { name } => Some(render_gen(engine.config_generation(name), name)),
        Request::Contracts => Some(render_contracts(engine.contracts_len())),
        Request::Health => Some(render_health(&engine.storage_stats())),
        Request::Stats => engine.stats_shared().map(|mut stats| {
            if let Some(r) = &mut stats.robustness {
                r.requests_rejected = shared.requests_rejected.load(Ordering::Relaxed);
                r.deadlines_hit = shared.deadlines_hit.load(Ordering::Relaxed);
            }
            stats.serve = Some(shared.transport.snapshot());
            format!("ok stats {}\n", stats.to_json().render())
        }),
        _ => None,
    }
}

/// Executes a request under the exclusive lock (the original
/// single-mutex semantics, response strings byte-identical).
fn exec_exclusive(shared: &ServeShared, engine: &mut ResilientEngine, req: &Request) -> String {
    match req {
        Request::Upsert { name, body } => match engine.upsert(name, body) {
            Ok(id) => match engine.config_generation(name) {
                Ok(Some(gen)) => format!("ok upsert {name} id={} gen={gen}\n", id.0),
                Ok(None) => format!("err unknown-config {name}\n"),
                Err(fault) => format!("{}\n", fault_line(&fault)),
            },
            Err(fault) => format!("{}\n", fault_line(&fault)),
        },
        Request::Remove { name } => match engine.remove(name) {
            Ok(Some(_)) => format!("ok remove {name}\n"),
            Ok(None) => format!("err unknown-config {name}\n"),
            Err(fault) => format!("{}\n", fault_line(&fault)),
        },
        Request::Learn => match engine.relearn() {
            Ok(_) => match engine.contracts_len() {
                Ok(Some(n)) => {
                    let delta = engine.learn_delta().unwrap_or_default();
                    format!(
                        "ok learn {n} contracts mined={} reused={}\n",
                        delta.mined_last_learn, delta.reused_last_learn
                    )
                }
                Ok(None) => "err not-learned\n".to_string(),
                Err(fault) => format!("{}\n", fault_line(&fault)),
            },
            Err(fault) => format!("{}\n", fault_line(&fault)),
        },
        Request::Check => match engine.check() {
            Ok(result) => render_check(&result),
            Err(fault) => format!("{}\n", fault_line(&fault)),
        },
        Request::Gen { name } => render_gen(engine.config_generation(name), name),
        Request::Contracts => render_contracts(engine.contracts_len()),
        Request::Health => render_health(&engine.storage_stats()),
        Request::Stats => {
            engine.add_serve_counters(
                shared.requests_rejected.load(Ordering::Relaxed),
                shared.deadlines_hit.load(Ordering::Relaxed),
            );
            match engine.snapshot_stats() {
                Ok(mut stats) => {
                    stats.serve = Some(shared.transport.snapshot());
                    format!("ok stats {}\n", stats.to_json().render())
                }
                Err(fault) => format!("{}\n", fault_line(&fault)),
            }
        }
        Request::Checkpoint => {
            if engine.checkpoint() {
                "ok checkpoint\n".to_string()
            } else {
                "err persist checkpoint failed or no --state-dir\n".to_string()
            }
        }
        Request::Fault { rest } => {
            if !shared.faults_enabled {
                shared.reject();
                return "err unknown-command \"FAULT\"\n".to_string();
            }
            match OpKind::parse(rest) {
                Some(kind) => {
                    engine.arm_panic(kind);
                    format!("ok fault armed {rest}\n")
                }
                None => {
                    shared.reject();
                    format!("err bad-request unknown fault kind {rest:?}\n")
                }
            }
        }
        // Quit and Batch are routed before lock acquisition; reaching
        // here would be a dispatch bug, answered, not panicked over.
        Request::Quit | Request::Batch(_) => "err internal invalid request routing\n".to_string(),
    }
}

/// Renders a CHECK report: violation lines, then the summary line.
fn render_check(result: &EngineCheckReport) -> String {
    let mut out = String::new();
    for v in &result.report.violations {
        out.push_str(&format!("{v}\n"));
    }
    let summary = result.report.coverage.summary();
    out.push_str(&format!(
        "ok check {} violations; coverage {:.1}% of {} lines; dirty={} reused={}\n",
        result.report.violations.len(),
        summary.fraction * 100.0,
        summary.total_lines,
        result.engine.dirty_configs,
        result.engine.reused_configs,
    ));
    out
}

pub(crate) fn render_gen(result: Result<Option<u64>, EngineFault>, name: &str) -> String {
    match result {
        Ok(Some(gen)) => format!("ok gen {name} {gen}\n"),
        Ok(None) => format!("err unknown-config {name}\n"),
        Err(fault) => format!("{}\n", fault_line(&fault)),
    }
}

/// Renders the HEALTH response from the engine's storage counters.
pub(crate) fn render_health(storage: &concord_core::StorageStats) -> String {
    format!(
        "ok health {} faults={} retries={} transitions={} recoveries={}\n",
        if storage.degraded {
            "degraded"
        } else {
            "healthy"
        },
        storage.faults_injected,
        storage.retries,
        storage.degraded_transitions,
        storage.recoveries,
    )
}

fn render_contracts(result: Result<Option<usize>, EngineFault>) -> String {
    match result {
        Ok(Some(n)) => format!("ok contracts {n}\n"),
        Ok(None) => "err not-learned\n".to_string(),
        Err(fault) => format!("{}\n", fault_line(&fault)),
    }
}

/// Renders an [`EngineFault`] as a protocol error line. Messages are
/// flattened to one line so the framing survives arbitrary panic text.
pub(crate) fn fault_line(fault: &EngineFault) -> String {
    let one_line = |s: &str| s.replace(['\n', '\r'], " ");
    match fault {
        EngineFault::UnknownConfig(name) => format!("err unknown-config {}", one_line(name)),
        EngineFault::NoContracts => "err no contracts loaded".to_string(),
        EngineFault::BadContracts(e) => format!("err bad-request {}", one_line(e)),
        EngineFault::Panicked(msg) => format!("err internal {}", one_line(msg)),
        EngineFault::Persist(e) => format!("err persist {}", one_line(e)),
        EngineFault::StorageDegraded(e) => format!("err storage-degraded {}", one_line(e)),
        EngineFault::Poisoned => "err poisoned".to_string(),
    }
}

/// Runs `concord serve`. Returns the process exit code.
pub fn run_serve(args: &ServeArgs, out: &mut dyn Write) -> Result<i32, CliError> {
    let limits = ServeLimits {
        deadline: Duration::from_millis(args.deadline_ms.max(1)),
        max_line: args.max_line_bytes.max(64),
        max_body: args.max_body_bytes.max(64),
    };
    let shared = if args.shards > 1 || args.replicas > 0 {
        let fleet = crate::fleet::build_fleet(args)?;
        Arc::new(ServeShared::new_fleet(fleet, limits, args.enable_faults))
    } else {
        let engine = build_engine(args)?;
        Arc::new(ServeShared::new(engine, limits, args.enable_faults))
    };
    let workers = args.workers.max(1);
    let max_conns = if args.max_conns == 0 {
        workers * 2
    } else {
        args.max_conns
    };
    match &args.listen {
        Some(addr) => serve_tcp(&shared, addr, args.once, workers, max_conns, out),
        None => {
            let stdin = std::io::stdin();
            serve_session(&shared, stdin.lock(), out)
                .map_err(|e| CliError::Io("<stdin>".to_string(), e))?;
            Ok(0)
        }
    }
}

/// Builds the session's engine from the serve arguments: optional
/// initial corpus, metadata globs, preloaded contracts, and state
/// directory. With `--state-dir`, an existing snapshot wins over the
/// corpus glob (the directory is the durable truth) and `--contracts`
/// applies only on a fresh (non-resumed) boot.
fn build_engine(args: &ServeArgs) -> Result<ResilientEngine, CliError> {
    let (lexer, corpus, metadata, options) = engine_inputs(args)?;
    let (mut engine, resumed) = match &args.state_dir {
        Some(dir) => {
            ResilientEngine::with_store(&corpus, &metadata, lexer, options, Path::new(dir))
                .map_err(|e| CliError::Invalid(e.to_string()))?
        }
        None => (
            ResilientEngine::new(&corpus, &metadata, lexer, options)
                .map_err(|e| CliError::Invalid(e.to_string()))?,
            false,
        ),
    };
    if !resumed {
        if let Some(path) = &args.contracts {
            let json = read_file(path)?;
            engine
                .set_contracts_json(&json)
                .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        }
    }
    Ok(engine)
}

/// The inputs every serve engine boots from (shared by the single
/// engine and each fleet shard): lexer, corpus, metadata, and the
/// engine options derived from the flags.
#[allow(clippy::type_complexity)]
pub(crate) fn engine_inputs(
    args: &ServeArgs,
) -> Result<
    (
        concord_lexer::Lexer,
        Vec<(String, String)>,
        Vec<(String, String)>,
        EngineOptions,
    ),
    CliError,
> {
    let lexer = match &args.tokens {
        Some(path) => build_lexer(path)?,
        None => concord_lexer::Lexer::standard(),
    };
    let corpus = match &args.configs {
        Some(glob) => read_glob(glob)?,
        None => Vec::new(),
    };
    let metadata = match &args.metadata {
        Some(glob) => read_glob(glob)?,
        None => Vec::new(),
    };
    let options = EngineOptions {
        embed_context: args.embed,
        parallelism: args.parallelism,
        learn: args.params.clone(),
        staleness_threshold: args.staleness,
        lex_cache_cap: args.lex_cache_cap,
        delta_learn: !args.full_relearn,
    };
    Ok((lexer, corpus, metadata, options))
}

/// On Linux, TCP is served by the epoll readiness event loop.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn serve_tcp(
    shared: &Arc<ServeShared>,
    addr: &str,
    once: bool,
    workers: usize,
    max_conns: usize,
    out: &mut dyn Write,
) -> Result<i32, CliError> {
    crate::eventloop::run_event_loop(shared, addr, once, workers, max_conns, out)
}

/// Portable fallback: thread-per-connection with the same limits,
/// shedding, and protocol behavior (minus readiness-driven I/O).
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn serve_tcp(
    shared: &Arc<ServeShared>,
    addr: &str,
    once: bool,
    _workers: usize,
    max_conns: usize,
    out: &mut dyn Write,
) -> Result<i32, CliError> {
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;

    let io_err = |e: std::io::Error| CliError::Io(addr.to_string(), e);
    let listener = TcpListener::bind(addr).map_err(io_err)?;
    let local = listener.local_addr().map_err(io_err)?;
    // The bound port (OS-chosen under `--listen 127.0.0.1:0`) goes to
    // stdout so a driver can connect.
    let _ = writeln!(out, "listening on {local}");
    let _ = out.flush();

    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        let mut stream = stream.map_err(io_err)?;
        if once {
            prepare_stream(shared, &stream);
            let reader = match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => return Ok(0),
            };
            let _ = serve_session(shared, reader, &mut stream);
            return Ok(0);
        }
        if active.load(Ordering::SeqCst) >= max_conns {
            shared.reject();
            let _ = stream.write_all(b"err busy\n");
            continue; // dropping the stream closes the shed connection
        }
        active.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        let active = Arc::clone(&active);
        let spawned = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                prepare_stream(&shared, &stream);
                if let Ok(reader) = stream.try_clone() {
                    let mut writer = stream;
                    let _ = serve_session(&shared, reader, &mut writer);
                }
                active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::SeqCst);
        }
    }
    Ok(0)
}

/// Short read timeouts keep a blocking session responsive enough to
/// enforce deadlines against slow-loris clients.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn prepare_stream(shared: &ServeShared, stream: &std::net::TcpStream) {
    let poll = shared.limits.deadline.min(Duration::from_millis(100));
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_write_timeout(Some(shared.limits.deadline));
}

/// Runs one protocol session over arbitrary blocking byte transports
/// (stdin, a test cursor, the fallback TCP path).
///
/// The engine outlives the session: the TCP server passes the same
/// shared state to every connection, so edits persist across
/// reconnects.
pub fn serve_session<R: Read, W: Write + ?Sized>(
    shared: &ServeShared,
    mut input: R,
    out: &mut W,
) -> std::io::Result<()> {
    shared.count_connection();
    let limits = shared.limits;
    let mut parser = SessionParser::new(limits.max_line, limits.max_body);
    let mut chunk = [0u8; 8192];
    let mut eof = false;
    loop {
        while let Some(event) = parser.next_event() {
            let reply = respond(shared, event, parser.framing());
            out.write_all(&reply.bytes)?;
            out.flush()?;
            if reply.quit {
                return Ok(());
            }
        }
        if eof {
            return Ok(());
        }
        if let Some(since) = parser.pending_since() {
            if since.elapsed() >= limits.deadline {
                // Slow-loris: answer and free the session.
                shared.deadline_hit();
                out.write_all(&deadline_reply(parser.framing()))?;
                out.flush()?;
                return Ok(());
            }
        }
        match input.read(&mut chunk) {
            Ok(0) => {
                parser.set_eof();
                eof = true;
            }
            Ok(n) => parser.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Socket poll tick: loop to re-check the deadline.
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_response, encode_frame, encode_subframe, opcode};
    use std::io::Cursor;

    fn corpus() -> Vec<(String, String)> {
        (0..6)
            .map(|i| {
                (
                    format!("dev{i}"),
                    format!(
                        "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                        100 + i,
                        250 + i
                    ),
                )
            })
            .collect()
    }

    fn fresh_shared() -> ServeShared {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        ServeShared::new(engine, ServeLimits::default(), true)
    }

    fn session(shared: &ServeShared, script: &str) -> String {
        let mut out = Vec::new();
        serve_session(shared, Cursor::new(script.as_bytes().to_vec()), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn session_bytes(shared: &ServeShared, script: &[u8]) -> String {
        let mut out = Vec::new();
        serve_session(shared, Cursor::new(script.to_vec()), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    /// Runs a binary-framed session and returns the decoded
    /// `(status, payload)` responses.
    fn binary_session(shared: &ServeShared, script: &[u8]) -> Vec<(u8, String)> {
        let mut out = Vec::new();
        serve_session(shared, Cursor::new(script.to_vec()), &mut out).unwrap();
        let mut frames = Vec::new();
        let mut rest = &out[..];
        while !rest.is_empty() {
            let (status, payload, consumed) = decode_response(rest).expect("well-framed response");
            frames.push((status, String::from_utf8(payload.to_vec()).unwrap()));
            rest = &rest[consumed..];
        }
        frames
    }

    #[test]
    fn scripted_session_learns_edits_and_checks() {
        let shared = fresh_shared();
        let out = session(
            &shared,
            "LEARN\nCHECK\nUPSERT dev0\nhostname DEV100\nvlan 250\n.\nCHECK\nQUIT\n",
        );
        assert!(out.contains("ok learn"), "{out}");
        assert!(out.contains("ok check 0 violations"), "{out}");
        // The edited dev0 lost its bgp line: one dirty config, violations.
        assert!(out.contains("missing required line"), "{out}");
        assert!(out.contains("dirty=1 reused=5"), "{out}");
        assert!(out.ends_with("ok bye\n"), "{out}");
    }

    #[test]
    fn session_state_persists_across_sessions() {
        // Reconnecting (a second session on the same shared state) sees
        // the first session's edits — the engine outlives the transport.
        let shared = fresh_shared();
        session(&shared, "LEARN\nCHECK\nREMOVE dev5\n");
        let out = session(&shared, "CHECK\nSTATS\n");
        assert!(out.contains("dirty=0 reused=5"), "{out}");
        assert!(out.contains("\"edits\":1"), "{out}");
    }

    #[test]
    fn errors_are_reported_inline_and_engine_stays_usable() {
        let shared = fresh_shared();
        let out = session(
            &shared,
            "CHECK\nREMOVE nope\nUPSERT\nFLY\nREMOVE\nGEN nope\nLEARN\nCHECK\nQUIT\n",
        );
        assert!(out.contains("err no contracts loaded"), "{out}");
        assert!(out.contains("err unknown-config nope"), "{out}");
        assert!(out.contains("err bad-request UPSERT requires"), "{out}");
        assert!(out.contains("err unknown-command \"FLY\""), "{out}");
        assert!(out.contains("err bad-request REMOVE requires"), "{out}");
        // And after all those errors the engine still works.
        assert!(out.contains("ok learn"), "{out}");
        assert!(out.contains("ok check 0 violations"), "{out}");
    }

    #[test]
    fn unknown_config_generation_is_an_error_not_zero() {
        let shared = fresh_shared();
        let out = session(&shared, "GEN dev0\nGEN ghost\nQUIT\n");
        assert!(out.contains("ok gen dev0 0"), "{out}");
        assert!(out.contains("err unknown-config ghost"), "{out}");
    }

    #[test]
    fn contracts_before_learn_is_not_learned_not_zero() {
        let shared = fresh_shared();
        let out = session(&shared, "CONTRACTS\nLEARN\nCONTRACTS\nQUIT\n");
        assert!(out.contains("err not-learned"), "{out}");
        assert!(out.contains("ok contracts"), "{out}");
        assert!(!out.contains("ok contracts 0"), "{out}");
    }

    #[test]
    fn unterminated_upsert_body_ends_session_without_touching_engine() {
        let shared = fresh_shared();
        let out = session(&shared, "UPSERT dev9\nvlan 1\n");
        assert!(
            out.contains("err bad-request UPSERT body not terminated"),
            "{out}"
        );
        // dev9 must NOT exist: the partial body never reached the engine.
        let out = session(&shared, "GEN dev9\nQUIT\n");
        assert!(out.contains("err unknown-config dev9"), "{out}");
    }

    #[test]
    fn crlf_lines_are_equivalent_to_lf() {
        let shared = fresh_shared();
        let lf = session(&shared, "LEARN\nUPSERT dev0\nvlan 1\n.\nCHECK\nQUIT\n");
        let shared2 = fresh_shared();
        let crlf = session(
            &shared2,
            "LEARN\r\nUPSERT dev0\r\nvlan 1\r\n.\r\nCHECK\r\nQUIT\r\n",
        );
        assert_eq!(lf, crlf);
    }

    #[test]
    fn non_utf8_input_is_rejected_and_session_continues() {
        let shared = fresh_shared();
        let mut script = Vec::new();
        script.extend_from_slice(b"LEARN\n");
        script.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']);
        script.extend_from_slice(b"CHECK\nQUIT\n");
        let out = session_bytes(&shared, &script);
        assert!(out.contains("err bad-utf8"), "{out}");
        assert!(out.contains("ok check 0 violations"), "{out}");
        assert!(out.ends_with("ok bye\n"), "{out}");
    }

    #[test]
    fn oversized_line_is_rejected_and_session_continues() {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        let limits = ServeLimits {
            max_line: 64,
            ..ServeLimits::default()
        };
        let shared = ServeShared::new(engine, limits, false);
        let long = "X".repeat(1000);
        let out = session(&shared, &format!("{long}\nLEARN\nQUIT\n"));
        assert!(out.contains("err too-large"), "{out}");
        assert!(out.contains("ok learn"), "{out}");
    }

    #[test]
    fn oversized_body_is_rejected_but_engine_stays_clean() {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        let limits = ServeLimits {
            max_body: 32,
            ..ServeLimits::default()
        };
        let shared = ServeShared::new(engine, limits, false);
        let big_body = "vlan 1\n".repeat(20);
        let out = session(
            &shared,
            &format!("UPSERT huge\n{big_body}.\nGEN huge\nQUIT\n"),
        );
        assert!(out.contains("err too-large"), "{out}");
        assert!(out.contains("err unknown-config huge"), "{out}");
    }

    #[test]
    fn fault_verb_arms_a_panic_and_recovery_matches_oracle() {
        let shared = fresh_shared();
        let clean = session(&shared, "LEARN\nCHECK\n");
        let check_line = clean
            .lines()
            .find(|l| l.starts_with("ok check"))
            .unwrap()
            .to_string();
        let out = session(&shared, "FAULT check\nCHECK\nCHECK\nQUIT\n");
        assert!(out.contains("ok fault armed check"), "{out}");
        assert!(out.contains("err internal injected fault"), "{out}");
        // The recovered engine re-checks from scratch, same answer.
        assert!(out.contains(&check_line), "{out}");
    }

    #[test]
    fn fault_verb_is_refused_without_opt_in() {
        let engine = ResilientEngine::new(
            &corpus(),
            &[],
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .unwrap();
        let shared = ServeShared::new(engine, ServeLimits::default(), false);
        let out = session(&shared, "FAULT check\nQUIT\n");
        assert!(out.contains("err unknown-command \"FAULT\""), "{out}");
    }

    #[test]
    fn learn_reports_delta_counters_and_stats_carry_learn_delta() {
        let shared = fresh_shared();
        let out = session(
            &shared,
            "LEARN\nLEARN\nUPSERT dev0\nvlan 1\n.\nLEARN\nSTATS\nQUIT\n",
        );
        let learns: Vec<&str> = out.lines().filter(|l| l.starts_with("ok learn")).collect();
        assert_eq!(learns.len(), 3, "{out}");
        assert!(learns[0].ends_with("mined=6 reused=0"), "{out}");
        assert!(learns[1].ends_with("mined=0 reused=6"), "{out}");
        assert!(learns[2].ends_with("mined=1 reused=5"), "{out}");
        let stats_line = out
            .lines()
            .find(|l| l.starts_with("ok stats "))
            .expect("stats line");
        let json =
            concord_json::Json::parse(stats_line.strip_prefix("ok stats ").unwrap()).unwrap();
        assert_eq!(json["learn_delta"]["enabled"].as_bool(), Some(true));
        assert_eq!(json["learn_delta"]["sketches"].as_u64(), Some(6));
        assert_eq!(json["learn_delta"]["mined_last_learn"].as_u64(), Some(1));
        assert_eq!(json["learn_delta"]["contracts_edits"].as_u64(), Some(1));
    }

    #[test]
    fn stats_is_one_json_line_with_robustness() {
        let shared = fresh_shared();
        let out = session(&shared, "NOPE\nSTATS\n");
        let stats_line = out
            .lines()
            .find(|l| l.starts_with("ok stats "))
            .expect("stats line");
        let json_part = stats_line.strip_prefix("ok stats ").unwrap();
        let json = concord_json::Json::parse(json_part).expect("valid JSON");
        assert_eq!(json["configs"].as_u64(), Some(6));
        assert!(json["contracts"].is_null());
        assert_eq!(
            json["robustness"]["requests_rejected"].as_u64(),
            Some(1),
            "{json_part}"
        );
    }

    #[test]
    fn stats_reports_serve_transport_counters() {
        let shared = fresh_shared();
        let out = session(&shared, "GEN dev0\nSTATS\nQUIT\n");
        let stats_line = out
            .lines()
            .find(|l| l.starts_with("ok stats "))
            .expect("stats line");
        let json =
            concord_json::Json::parse(stats_line.strip_prefix("ok stats ").unwrap()).unwrap();
        assert_eq!(json["serve"]["connections"].as_u64(), Some(1), "{out}");
        // GEN served under the shared lock; STATS itself may be shared
        // or exclusive depending on cache state, so only GEN is pinned.
        assert!(json["serve"]["shared_reads"].as_u64() >= Some(1), "{out}");
        assert_eq!(json["serve"]["batches"].as_u64(), Some(0), "{out}");
    }

    #[test]
    fn batch_matches_the_same_commands_sent_singly() {
        // Byte-equality oracle: a BATCH response is the concatenation of
        // the N single-command responses plus the trailer.
        let shared = fresh_shared();
        session(&shared, "LEARN\nCHECK\n"); // warm contracts + report cache
        let singles = session(&shared, "CHECK\nGEN dev0\nCONTRACTS\nGEN ghost\nNOPE\n");
        let shared2 = fresh_shared();
        session(&shared2, "LEARN\nCHECK\n");
        let batched = session(
            &shared2,
            "BATCH 5\nCHECK\nGEN dev0\nCONTRACTS\nGEN ghost\nNOPE\nQUIT\n",
        );
        assert_eq!(batched, format!("{singles}ok batch 5\nok bye\n"));
    }

    #[test]
    fn batch_with_mutations_executes_in_order_under_one_lock() {
        let shared = fresh_shared();
        let out = session(
            &shared,
            "LEARN\nCHECK\nBATCH 3\nUPSERT dev0\nhostname DEV100\nrouter bgp 65000\nvlan 250\n.\nCHECK\nGEN dev0\nQUIT\n",
        );
        assert!(out.contains("ok upsert dev0"), "{out}");
        assert!(out.contains("dirty=1 reused=5"), "{out}");
        assert!(out.contains("ok gen dev0 1"), "{out}");
        assert!(out.contains("ok batch 3"), "{out}");
        assert!(out.ends_with("ok bye\n"), "{out}");
    }

    #[test]
    fn batch_count_validation_and_eof_mid_batch() {
        let shared = fresh_shared();
        let out = session(&shared, "BATCH 0\nBATCH 9999\nQUIT\n");
        assert_eq!(
            out.matches("err bad-request BATCH requires a count between 1 and 1024")
                .count(),
            2,
            "{out}"
        );
        let out = session(&shared, "BATCH 3\nCHECK\n");
        assert!(out.contains("err bad-request BATCH not completed"), "{out}");
    }

    #[test]
    fn binary_session_matches_text_session_payloads() {
        let shared_text = fresh_shared();
        let text = session(
            &shared_text,
            "LEARN\nUPSERT dev0\nvlan 1\n.\nCHECK\nGEN dev0\nQUIT\n",
        );

        let shared_bin = fresh_shared();
        let mut script = Vec::new();
        encode_frame(opcode::LEARN, b"", b"", &mut script);
        encode_frame(opcode::UPSERT, b"dev0", b"vlan 1\n", &mut script);
        encode_frame(opcode::CHECK, b"", b"", &mut script);
        encode_frame(opcode::GEN, b"dev0", b"", &mut script);
        encode_frame(opcode::QUIT, b"", b"", &mut script);
        let frames = binary_session(&shared_bin, &script);
        let joined: String = frames.iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(joined, text, "binary payloads must match text protocol");
        assert!(frames.iter().all(|(status, _)| *status == 0), "{frames:?}");
    }

    #[test]
    fn binary_error_frames_carry_status_one() {
        let shared = fresh_shared();
        let mut script = Vec::new();
        encode_frame(opcode::GEN, b"ghost", b"", &mut script);
        encode_frame(opcode::QUIT, b"", b"", &mut script);
        let frames = binary_session(&shared, &script);
        assert_eq!(frames[0].0, 1, "{frames:?}");
        assert_eq!(frames[0].1, "err unknown-config ghost\n");
        assert_eq!(frames[1].0, 0);
        assert_eq!(frames[1].1, "ok bye\n");
    }

    #[test]
    fn binary_batch_executes_like_text_batch() {
        let shared = fresh_shared();
        session(&shared, "LEARN\nCHECK\n");
        let text = session(&shared, "BATCH 2\nCHECK\nGEN dev0\nQUIT\n");
        let expected_payload = text.strip_suffix("ok bye\n").expect("quit trailer");

        let shared2 = fresh_shared();
        session(&shared2, "LEARN\nCHECK\n");
        let mut body = Vec::new();
        encode_subframe(opcode::CHECK, b"", b"", &mut body);
        encode_subframe(opcode::GEN, b"dev0", b"", &mut body);
        let mut script = Vec::new();
        encode_frame(opcode::BATCH, b"", &body, &mut script);
        encode_frame(opcode::QUIT, b"", b"", &mut script);
        let frames = binary_session(&shared2, &script);
        assert_eq!(frames[0].1, expected_payload);
        assert_eq!(frames[1].1, "ok bye\n");
    }

    #[test]
    fn binary_garbage_frames_never_touch_the_engine() {
        let shared = fresh_shared();
        session(&shared, "LEARN\nCHECK\n");
        // A hostile "frame": valid magic, nonsense lengths and opcodes.
        let mut script = vec![0xC3, 0x77];
        script.extend_from_slice(&u32::MAX.to_le_bytes());
        script.extend_from_slice(&u32::MAX.to_le_bytes());
        script.extend_from_slice(&[0xC3, 0x00, 0x01]);
        let frames = binary_session(&shared, &script);
        assert!(frames.iter().all(|(status, _)| *status == 1), "{frames:?}");
        // The engine state is untouched: a clean session still answers.
        let out = session(&shared, "CHECK\nQUIT\n");
        assert!(out.contains("ok check 0 violations"), "{out}");
    }
}
