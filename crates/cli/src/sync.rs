//! Deadline-bounded read/write lock for the serve engine.
//!
//! [`DeadlineRwLock`] is the serve layer's replacement for the old
//! `Mutex<ResilientEngine>` + spin-poll `lock_engine` pair: readers
//! (CHECK/GEN/STATS/CONTRACTS on a healthy engine) share the lock,
//! writers (UPSERT/REMOVE/LEARN, fault verbs, and any read that misses
//! the shared-path cache) get it exclusively, and both acquisitions park
//! on a `Condvar` until granted or a caller-supplied deadline passes —
//! no core is burned while waiting.
//!
//! Writers have priority: once a writer is queued, new readers wait
//! behind it. Without this, a steady stream of pipelined CHECKs could
//! starve an UPSERT indefinitely; with it, the writer's wait is bounded
//! by the in-flight readers, and readers resume as soon as it leaves.
//! `std::sync::RwLock` is not used because it has no deadline-bounded
//! acquisition and leaves reader-vs-writer policy to the OS.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Who holds the lock right now.
#[derive(Debug, Default)]
struct State {
    /// Active shared readers.
    readers: usize,
    /// Whether a writer currently holds the lock.
    writer: bool,
    /// Writers parked in `write`; readers defer to them.
    writers_waiting: usize,
}

/// A reader/writer lock whose acquisitions park until granted or until
/// an absolute deadline passes (returning `None` — the serve layer turns
/// that into `err deadline`).
#[derive(Debug, Default)]
pub(crate) struct DeadlineRwLock<T> {
    state: Mutex<State>,
    /// Readers and writers both park here; state transitions are rare
    /// and cheap enough that one wait queue keeps the code simple.
    changed: Condvar,
    data: UnsafeCell<T>,
}

// SAFETY: the state machine guarantees the standard RwLock exclusion
// invariant — `&mut T` is only reachable through a `WriteGuard`, which
// exists only while `state.writer` is set and `state.readers == 0`, and
// `&T` only through `ReadGuard`s counted in `state.readers` while no
// writer is active. `T: Send` suffices for `Send`; `Sync` additionally
// needs `T: Send + Sync` because guards hand out `&T` across threads.
unsafe impl<T: Send> Send for DeadlineRwLock<T> {}
unsafe impl<T: Send + Sync> Sync for DeadlineRwLock<T> {}

impl<T> DeadlineRwLock<T> {
    pub(crate) fn new(value: T) -> Self {
        DeadlineRwLock {
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Locks the inner state mutex, riding through poisoning: a panic
    /// inside a `Condvar` wait or a guard drop never leaves the lock
    /// unusable (the engine behind it has its own poison handling).
    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires a shared read guard, parking until granted or until
    /// `deadline`; `None` on deadline expiry.
    pub(crate) fn read(&self, deadline: Instant) -> Option<ReadGuard<'_, T>> {
        let mut state = self.state();
        while state.writer || state.writers_waiting > 0 {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) = match self.changed.wait_timeout(state, deadline - now) {
                Ok((guard, timeout)) => (guard, timeout),
                Err(poisoned) => {
                    let (guard, timeout) = poisoned.into_inner();
                    (guard, timeout)
                }
            };
            state = next;
            if timeout.timed_out() && (state.writer || state.writers_waiting > 0) {
                return None;
            }
        }
        state.readers += 1;
        Some(ReadGuard { lock: self })
    }

    /// Acquires the exclusive write guard, parking until granted or
    /// until `deadline`; `None` on deadline expiry. Queued writers block
    /// new readers, so the wait is bounded by in-flight readers plus any
    /// earlier writers.
    pub(crate) fn write(&self, deadline: Instant) -> Option<WriteGuard<'_, T>> {
        let mut state = self.state();
        state.writers_waiting += 1;
        while state.writer || state.readers > 0 {
            let now = Instant::now();
            if now >= deadline {
                state.writers_waiting -= 1;
                // A reader may be parked solely because we were queued.
                self.changed.notify_all();
                return None;
            }
            let (next, timeout) = match self.changed.wait_timeout(state, deadline - now) {
                Ok((guard, timeout)) => (guard, timeout),
                Err(poisoned) => {
                    let (guard, timeout) = poisoned.into_inner();
                    (guard, timeout)
                }
            };
            state = next;
            if timeout.timed_out() && (state.writer || state.readers > 0) {
                state.writers_waiting -= 1;
                self.changed.notify_all();
                return None;
            }
        }
        state.writers_waiting -= 1;
        state.writer = true;
        Some(WriteGuard { lock: self })
    }
}

/// Shared access; releases (and wakes waiters) on drop, including
/// during a panic unwind — the engine's own catch_unwind layer decides
/// what a panic means, the lock just stays usable.
pub(crate) struct ReadGuard<'a, T> {
    lock: &'a DeadlineRwLock<T>,
}

impl<T> Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: constructed only while readers > 0 and no writer.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        let mut state = self.lock.state();
        state.readers -= 1;
        if state.readers == 0 {
            drop(state);
            self.lock.changed.notify_all();
        }
    }
}

/// Exclusive access; releases (and wakes waiters) on drop.
pub(crate) struct WriteGuard<'a, T> {
    lock: &'a DeadlineRwLock<T>,
}

impl<T> Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: constructed only while `writer` is set and readers == 0.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; the guard is the unique access path.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        let mut state = self.lock.state();
        state.writer = false;
        drop(state);
        self.lock.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn soon(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn readers_share_and_writer_excludes() {
        let lock = DeadlineRwLock::new(7u32);
        let a = lock.read(soon(100)).expect("first reader");
        let b = lock.read(soon(100)).expect("second reader shares");
        assert_eq!((*a, *b), (7, 7));
        assert!(
            lock.write(soon(30)).is_none(),
            "writer times out behind readers"
        );
        drop(a);
        drop(b);
        let mut w = lock.write(soon(100)).expect("writer after readers leave");
        *w = 8;
        drop(w);
        assert_eq!(*lock.read(soon(100)).expect("reads again"), 8);
    }

    #[test]
    fn deadline_expiry_returns_none_without_burning_a_core() {
        let lock = Arc::new(DeadlineRwLock::new(0u32));
        let held = lock.write(soon(100)).expect("holds");
        let contender = Arc::clone(&lock);
        let t = std::thread::spawn(move || {
            let started = Instant::now();
            let got = contender.read(soon(50));
            (got.is_none(), started.elapsed())
        });
        let (timed_out, waited) = t.join().expect("joins");
        assert!(timed_out);
        assert!(
            waited >= Duration::from_millis(40),
            "parked rather than failing fast: {waited:?}"
        );
        drop(held);
    }

    #[test]
    fn queued_writer_blocks_new_readers_but_gets_through() {
        let lock = Arc::new(DeadlineRwLock::new(Vec::<u32>::new()));
        let reader = lock.read(soon(1000)).expect("reader in");
        let order = Arc::new(AtomicUsize::new(0));

        let wl = Arc::clone(&lock);
        let wo = Arc::clone(&order);
        let writer = std::thread::spawn(move || {
            let mut g = wl.write(soon(2000)).expect("writer eventually");
            g.push(1);
            wo.fetch_add(1, Ordering::SeqCst);
        });
        // Wait until the writer is queued, then prove a fresh reader
        // defers to it instead of barging past.
        loop {
            let queued = { lock.state().writers_waiting > 0 };
            if queued {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            lock.read(soon(30)).is_none(),
            "new reader defers to the queued writer"
        );
        drop(reader);
        writer.join().expect("writer joins");
        assert_eq!(order.load(Ordering::SeqCst), 1);
        let g = lock.read(soon(100)).expect("readers resume after writer");
        assert_eq!(*g, vec![1]);
    }

    #[test]
    fn many_concurrent_readers_one_writer_stays_consistent() {
        let lock = Arc::new(DeadlineRwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let g = l.read(soon(2000)).expect("read");
                    let v = *g;
                    assert!(v <= 400, "torn or out-of-range value {v}");
                }
            }));
        }
        for _ in 0..2 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut g = l.write(soon(2000)).expect("write");
                    *g += 1;
                }
            }));
        }
        for h in handles {
            h.join().expect("joins");
        }
        assert_eq!(*lock.read(soon(100)).expect("final read"), 400);
    }
}
