//! Differential testing: the Pike VM against a naive backtracking
//! reference matcher over the same AST.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord_regex::{Ast, ClassItem, ClassSet, Regex};
use proptest::prelude::*;

/// A tiny backtracking matcher: returns every possible match length of
/// `ast` starting at `pos` (the VM's longest match must be its maximum).
fn match_lengths(ast: &Ast, chars: &[char], pos: usize, total_len: usize) -> Vec<usize> {
    match ast {
        Ast::Empty => vec![0],
        Ast::Literal(c) => {
            if chars.get(pos) == Some(c) {
                vec![1]
            } else {
                vec![]
            }
        }
        Ast::Dot => {
            if chars.get(pos).is_some_and(|&c| c != '\n') {
                vec![1]
            } else {
                vec![]
            }
        }
        Ast::Class(set) => {
            if chars.get(pos).is_some_and(|&c| set.contains(c)) {
                vec![1]
            } else {
                vec![]
            }
        }
        Ast::StartAnchor => {
            if pos == 0 {
                vec![0]
            } else {
                vec![]
            }
        }
        Ast::EndAnchor => {
            if pos == total_len {
                vec![0]
            } else {
                vec![]
            }
        }
        Ast::Concat(parts) => {
            let mut lengths = vec![0usize];
            for part in parts {
                let mut next = Vec::new();
                for &len in &lengths {
                    for extra in match_lengths(part, chars, pos + len, total_len) {
                        next.push(len + extra);
                    }
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    return vec![];
                }
                lengths = next;
            }
            lengths
        }
        Ast::Alternate(branches) => {
            let mut lengths: Vec<usize> = branches
                .iter()
                .flat_map(|b| match_lengths(b, chars, pos, total_len))
                .collect();
            lengths.sort_unstable();
            lengths.dedup();
            lengths
        }
        Ast::Repeat { node, min, max } => {
            // Lengths achievable with exactly k repetitions, k from min to
            // max (bounded to the input length to terminate).
            let cap = max.map(|m| m as usize).unwrap_or(chars.len() + 1);
            let mut per_count = vec![0usize];
            let mut result: Vec<usize> = if *min == 0 { vec![0] } else { vec![] };
            for k in 1..=cap {
                let mut next = Vec::new();
                for &len in &per_count {
                    for extra in match_lengths(node, chars, pos + len, total_len) {
                        // Zero-width repetition loops forever; cut it.
                        if extra > 0 || k <= *min as usize {
                            next.push(len + extra);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    break;
                }
                if k >= *min as usize {
                    result.extend(&next);
                }
                per_count = next;
            }
            result.sort_unstable();
            result.dedup();
            result
        }
    }
}

/// Strategy for small ASTs rendered back to pattern strings.
fn arb_pattern() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[abc]".prop_map(|s| s),
        Just(".".to_string()),
        Just("[ab]".to_string()),
        Just("[^c]".to_string()),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(?:{a}|{b})")),
            inner.clone().prop_map(|a| format!("(?:{a})*")),
            inner.clone().prop_map(|a| format!("(?:{a})?")),
            inner.clone().prop_map(|a| format!("(?:{a})+")),
            inner.prop_map(|a| format!("(?:{a}){{1,2}}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The VM's longest match equals the reference matcher's maximum
    /// match length at every start position.
    #[test]
    fn vm_agrees_with_backtracking_reference(pattern in arb_pattern(), input in "[abc]{0,8}") {
        let regex = Regex::new(&pattern).unwrap();
        let ast = parse_for_reference(&pattern);
        let chars: Vec<char> = input.chars().collect();
        for start in 0..=chars.len() {
            let byte_start: usize = chars[..start].iter().map(|c| c.len_utf8()).sum();
            let vm = regex.match_at(&input, byte_start);
            let mut reference = match_lengths(&ast, &chars, start, chars.len());
            reference.sort_unstable();
            let expected = reference.last().copied();
            prop_assert_eq!(
                vm, expected,
                "pattern {:?} input {:?} start {}", pattern, input, start
            );
        }
    }
}

/// Re-parses a pattern into the public AST (the parser itself is under
/// test elsewhere; here it is the shared ground truth).
fn parse_for_reference(pattern: &str) -> Ast {
    // `Regex::new` validated the pattern; re-derive the AST through the
    // public parse path by rebuilding with the same grammar.
    concord_regex_parse(pattern)
}

/// Minimal mirror of the engine's grammar for test purposes, built on the
/// public `Ast` type. Panics on invalid input (inputs come from
/// `arb_pattern`, which only emits valid patterns).
fn concord_regex_parse(pattern: &str) -> Ast {
    // The engine does not expose its parser; reconstruct the AST with a
    // tiny recursive-descent parser for the restricted grammar used by
    // `arb_pattern`: literals a-c, `.`, classes, `(?:..|..)`, postfix
    // `*?+{1,2}` on groups.
    Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    }
    .alternate()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn alternate(&mut self) -> Ast {
        let mut branches = vec![self.concat()];
        while self.eat('|') {
            branches.push(self.concat());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        }
    }

    fn concat(&mut self) -> Ast {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat());
        }
        match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        }
    }

    fn repeat(&mut self) -> Ast {
        let atom = self.atom();
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                // Only `{1,2}` appears in generated patterns.
                self.pos += "{1,2}".len();
                (1, Some(2))
            }
            _ => return atom,
        };
        Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        }
    }

    fn atom(&mut self) -> Ast {
        match self.bump().unwrap() {
            '(' => {
                // Always `(?:`.
                self.pos += 2;
                let inner = self.alternate();
                assert!(self.eat(')'));
                inner
            }
            '[' => {
                let negated = self.eat('^');
                let mut items = Vec::new();
                loop {
                    let c = self.bump().unwrap();
                    if c == ']' {
                        break;
                    }
                    items.push(ClassItem::Char(c));
                }
                Ast::Class(ClassSet { items, negated })
            }
            '.' => Ast::Dot,
            c => Ast::Literal(c),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}
