//! Edge-case tests for the regex engine beyond the unit suites.

use concord_regex::Regex;

fn re(p: &str) -> Regex {
    Regex::new(p).unwrap_or_else(|e| panic!("{p:?}: {e}"))
}

#[test]
fn anchors_inside_alternation() {
    let r = re("^a|b$");
    assert_eq!(r.find("a"), Some((0, 1)));
    assert_eq!(r.find("xb"), Some((1, 2)));
    assert_eq!(r.find("xa"), None); // `a` must be at the start.
    assert_eq!(r.find("bx"), None); // `b` must be at the end.
}

#[test]
fn empty_alternative_branches() {
    let r = re("ab|");
    assert!(r.is_full_match(""));
    assert!(r.is_full_match("ab"));
    assert_eq!(r.match_at("abab", 0), Some(2));
}

#[test]
fn nested_groups_with_bounds() {
    let r = re("((ab){2}c){2}");
    assert!(r.is_full_match("ababcababc"));
    assert!(!r.is_full_match("ababcabc"));
}

#[test]
fn zero_repetition_bound() {
    let r = re("a{0}b");
    assert!(r.is_full_match("b"));
    assert!(!r.is_full_match("ab"));
    let r = re("a{0,2}b");
    assert!(r.is_full_match("b"));
    assert!(r.is_full_match("aab"));
    assert!(!r.is_full_match("aaab"));
}

#[test]
fn class_full_ascii_range() {
    let r = re("[ -~]+"); // Printable ASCII.
    assert!(r.is_full_match("Hello, World! 123"));
    assert!(!r.is_match("\t"));
}

#[test]
fn negated_class_and_newline() {
    // Unlike `.`, a negated class matches `\n` unless excluded.
    let r = re("[^x]");
    assert!(r.is_full_match("\n"));
    let r = re(".");
    assert!(!r.is_match("\n"));
}

#[test]
fn repeated_empty_matching_group_terminates() {
    // `(a?)*` can match the empty string infinitely many "times"; the VM
    // must still terminate and report the right longest match.
    let r = re("(a?)*b");
    assert!(r.is_full_match("aaab"));
    assert!(r.is_full_match("b"));
    assert_eq!(r.match_at("aaa", 0), None);
}

#[test]
fn alternation_inside_repetition_longest() {
    let r = re("(a|ab)+");
    // Longest overall match wins regardless of branch order.
    assert_eq!(r.match_at("abaab", 0), Some(5));
}

#[test]
fn long_literal_patterns() {
    let long = "x".repeat(500);
    let r = re(&long);
    assert!(r.is_full_match(&long));
    assert!(!r.is_full_match(&"x".repeat(499)));
}

#[test]
fn large_bounded_repeat() {
    let r = re("a{64}");
    assert!(r.is_full_match(&"a".repeat(64)));
    assert!(!r.is_full_match(&"a".repeat(63)));
    assert_eq!(r.match_at(&"a".repeat(100), 0), Some(64));
}

#[test]
fn find_prefers_leftmost() {
    let r = re("a+");
    assert_eq!(re("a+").find("baaab"), Some((1, 4)));
    let _ = r;
}

#[test]
fn pathological_nested_quantifiers_stay_fast() {
    // (a*)*(b*)*c against a long non-matching input: linear-time check.
    let r = re("(a*)*(b*)*c");
    let input = "ab".repeat(2_000);
    let start = std::time::Instant::now();
    assert!(!r.is_match(&input));
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "matching took {:?}",
        start.elapsed()
    );
}

#[test]
fn table_1_user_patterns_compile_and_match() {
    // Every example row of the paper's Table 1 works as written.
    let cases: &[(&str, &str, bool)] = &[
        ("([aA]e|[eE]t)-?[0-9]+", "Et49", true),
        ("description .+", "description core uplink 1", true),
        ("true|false", "maybe", false),
        ("[1-9][0-9]*", "65015", true),
        ("(0x|0)[0-9]+", "0x17", true),
        ("[0-9a-zA-Z]+(:[0-9a-zA-Z]+){5}", "00:00:0c:d3:00:6e", true),
        (r"[0-9]+(\.[0-9]+){3}", "10.14.14.34", true),
        (r"[0-9]+(\.[0-9]+){3}/[0-9]+", "10.14.14.34/32", true),
    ];
    for (pattern, input, should_match) in cases {
        let r = re(pattern);
        assert_eq!(
            r.is_full_match(input),
            *should_match,
            "{pattern:?} vs {input:?}"
        );
    }
}
