//! Property-based tests for the regex engine.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord_regex::Regex;
use proptest::prelude::*;

proptest! {
    /// A literal pattern (with metacharacters escaped) matches exactly its
    /// own text.
    #[test]
    fn escaped_literal_matches_itself(s in "[a-zA-Z0-9 .:/+*?()\\[\\]{}|^$-]{0,24}") {
        let escaped: String = s
            .chars()
            .map(|c| {
                if "\\.+*?()[]{}|^$-/:".contains(c) {
                    format!("\\{c}")
                } else {
                    c.to_string()
                }
            })
            .collect();
        let re = Regex::new(&escaped).unwrap();
        prop_assert!(re.is_full_match(&s));
    }

    /// `match_at` never reports a length extending past the end of input.
    #[test]
    fn match_len_in_bounds(s in "[a-c]{0,32}") {
        let re = Regex::new("a+(b|c)*").unwrap();
        for start in 0..=s.len() {
            if let Some(len) = re.match_at(&s, start) {
                prop_assert!(start + len <= s.len());
            }
        }
    }

    /// Digit runs are fully consumed by `\d+` (maximal munch).
    #[test]
    fn digits_maximal_munch(prefix in "[a-z]{0,8}", digits in "[0-9]{1,12}", suffix in "[a-z]{0,8}") {
        let text = format!("{prefix}{digits}{suffix}");
        let re = Regex::new("[0-9]+").unwrap();
        let m = re.find(&text).unwrap();
        prop_assert_eq!(&text[m.0..m.1], digits.as_str());
    }

    /// `find_all` yields non-overlapping, strictly increasing ranges.
    #[test]
    fn find_all_monotone(s in "[ab0-9]{0,40}") {
        let re = Regex::new("[0-9]+").unwrap();
        let matches = re.find_all(&s);
        for w in matches.windows(2) {
            prop_assert!(w[0].1 <= w[1].0);
        }
        for (a, b) in &matches {
            prop_assert!(a < b);
            prop_assert!(s[*a..*b].chars().all(|c| c.is_ascii_digit()));
        }
    }

    /// The IPv4 token pattern from the paper accepts every dotted quad.
    #[test]
    fn ipv4_token_accepts_dotted_quads(a in 0u32..=255, b in 0u32..=255, c in 0u32..=255, d in 0u32..=255) {
        let re = Regex::new(r"[0-9]+(\.[0-9]+){3}").unwrap();
        let quad = format!("{a}.{b}.{c}.{d}");
        prop_assert!(re.is_full_match(&quad));
    }

    /// Compiling never panics on arbitrary input (it may error).
    #[test]
    fn new_never_panics(s in "\\PC{0,24}") {
        let _ = Regex::new(&s);
    }

    /// Matching is deterministic: two runs agree.
    #[test]
    fn deterministic(s in "[a-d]{0,24}") {
        let re = Regex::new("(a|ab)*c?d+").unwrap();
        prop_assert_eq!(re.find(&s), re.find(&s));
    }
}
