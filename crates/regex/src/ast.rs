//! Abstract syntax tree for regular expressions.

/// One entry of a character class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character, e.g. `a`.
    Char(char),
    /// An inclusive character range, e.g. `a-z`.
    Range(char, char),
}

/// A (possibly negated) character class such as `[a-z0-9_]` or `[^:]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// The items in the class, in source order.
    pub items: Vec<ClassItem>,
    /// Whether the class is negated (`[^...]`).
    pub negated: bool,
}

impl ClassSet {
    /// Returns `true` if `c` is matched by this class.
    pub fn contains(&self, c: char) -> bool {
        let inside = self.items.iter().any(|item| match *item {
            ClassItem::Char(ch) => ch == c,
            ClassItem::Range(lo, hi) => lo <= c && c <= hi,
        });
        inside != self.negated
    }
}

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches a single literal character.
    Literal(char),
    /// Matches any character except `\n`.
    Dot,
    /// Matches a character class.
    Class(ClassSet),
    /// Matches the start of the input (`^`).
    StartAnchor,
    /// Matches the end of the input (`$`).
    EndAnchor,
    /// Matches a sequence of sub-expressions.
    Concat(Vec<Ast>),
    /// Matches any one of the alternatives.
    Alternate(Vec<Ast>),
    /// Matches `node` between `min` and `max` times (`max = None` means
    /// unbounded).
    Repeat {
        /// The repeated sub-expression.
        node: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
    },
}

impl Ast {
    /// Returns `true` if this expression can match the empty string.
    pub fn matches_empty(&self) -> bool {
        match self {
            Ast::Empty | Ast::StartAnchor | Ast::EndAnchor => true,
            Ast::Literal(_) | Ast::Dot | Ast::Class(_) => false,
            Ast::Concat(parts) => parts.iter().all(Ast::matches_empty),
            Ast::Alternate(parts) => parts.iter().any(Ast::matches_empty),
            Ast::Repeat { node, min, .. } => *min == 0 || node.matches_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_contains() {
        let class = ClassSet {
            items: vec![ClassItem::Range('a', 'c'), ClassItem::Char('z')],
            negated: false,
        };
        assert!(class.contains('a'));
        assert!(class.contains('b'));
        assert!(class.contains('z'));
        assert!(!class.contains('d'));
    }

    #[test]
    fn negated_class_contains() {
        let class = ClassSet {
            items: vec![ClassItem::Char(':')],
            negated: true,
        };
        assert!(class.contains('a'));
        assert!(!class.contains(':'));
    }

    #[test]
    fn matches_empty() {
        assert!(Ast::Empty.matches_empty());
        assert!(!Ast::Literal('a').matches_empty());
        assert!(Ast::Repeat {
            node: Box::new(Ast::Literal('a')),
            min: 0,
            max: None,
        }
        .matches_empty());
        assert!(!Ast::Repeat {
            node: Box::new(Ast::Literal('a')),
            min: 1,
            max: None,
        }
        .matches_empty());
        assert!(Ast::Alternate(vec![Ast::Literal('a'), Ast::Empty]).matches_empty());
        assert!(!Ast::Concat(vec![Ast::Empty, Ast::Literal('a')]).matches_empty());
    }
}
