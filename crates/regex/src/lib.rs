#![warn(missing_docs)]

//! A small regular-expression engine used by the Concord lexer.
//!
//! The engine implements the classic pipeline: a recursive-descent parser
//! builds an [`Ast`], the compiler lowers it to a Thompson NFA program,
//! and a Pike-style virtual machine simulates the NFA over the input. The simulation tracks every live thread at once, so
//! matching is linear in the input size with no exponential backtracking.
//!
//! Unlike general-purpose engines, the matcher is tuned for tokenization:
//! [`Regex::match_at`] returns the *longest* match starting at a given
//! position (leftmost-longest, POSIX style), which is exactly the rule a
//! maximal-munch lexer needs.
//!
//! Supported syntax: literals, `.`, escapes (`\d`, `\w`, `\s`, `\D`, `\W`,
//! `\S`, and escaped metacharacters), character classes with ranges and
//! negation (`[a-z0-9]`, `[^:]`), alternation, grouping (`(...)` and
//! `(?:...)`), the quantifiers `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`, and
//! the anchors `^` and `$`.
//!
//! # Examples
//!
//! ```
//! use concord_regex::Regex;
//!
//! let re = Regex::new(r"[0-9]+(\.[0-9]+){3}").unwrap();
//! assert!(re.is_full_match("10.14.14.34"));
//! assert_eq!(re.match_at("ip address 10.0.0.1 secondary", 11), Some(8));
//! ```

mod ast;
mod compile;
mod parse;
mod program;
mod vm;

pub use ast::{Ast, ClassItem, ClassSet};
pub use parse::ParseError;

use program::Program;

/// A compiled regular expression.
///
/// Construction validates and compiles the pattern once; matching never
/// fails and runs in `O(len(input) * len(program))` time.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

impl Regex {
    /// Compiles `pattern` into a [`Regex`].
    ///
    /// Returns a [`ParseError`] describing the offending position when the
    /// pattern is malformed.
    ///
    /// # Examples
    ///
    /// ```
    /// use concord_regex::Regex;
    ///
    /// assert!(Regex::new("a|b").is_ok());
    /// assert!(Regex::new("a{3,1}").is_err());
    /// ```
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let ast = parse::parse(pattern)?;
        let program = compile::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// Returns the source pattern this regex was compiled from.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns the length (in bytes) of the longest match starting exactly
    /// at byte offset `start`, or `None` if no match starts there.
    ///
    /// A zero-length match is reported as `Some(0)` only when the pattern
    /// can match the empty string.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a character boundary of `text`.
    pub fn match_at(&self, text: &str, start: usize) -> Option<usize> {
        vm::longest_match_at(&self.program, text, start)
    }

    /// Returns `true` if the whole of `text` matches the pattern.
    pub fn is_full_match(&self, text: &str) -> bool {
        self.match_at(text, 0) == Some(text.len())
    }

    /// Returns `true` if the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Finds the leftmost-longest match in `text`.
    ///
    /// Returns the byte range of the match, or `None` when the pattern does
    /// not occur. A zero-length match is reported only when the pattern can
    /// match the empty string.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        let mut start = 0;
        loop {
            if let Some(len) = self.match_at(text, start) {
                if len > 0 || self.program.matches_empty {
                    return Some((start, start + len));
                }
            }
            match text[start..].chars().next() {
                Some(c) => start += c.len_utf8(),
                None => return None,
            }
        }
    }

    /// Finds all non-overlapping leftmost-longest matches in `text`.
    ///
    /// Zero-length matches advance the scan position by one character so
    /// the iteration always terminates.
    pub fn find_all(&self, text: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos <= text.len() {
            let rest = &text[pos..];
            match self.find(rest) {
                Some((s, e)) => {
                    out.push((pos + s, pos + e));
                    if e > s {
                        pos += e;
                    } else {
                        // Zero-length match: step over one character.
                        pos += s + rest[s..].chars().next().map(|c| c.len_utf8()).unwrap_or(1);
                    }
                }
                None => break,
            }
        }
        out
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?} failed: {e}"))
    }

    #[test]
    fn literal_match() {
        let r = re("abc");
        assert!(r.is_full_match("abc"));
        assert!(!r.is_full_match("ab"));
        assert!(!r.is_full_match("abcd"));
        assert_eq!(r.find("xxabcxx"), Some((2, 5)));
    }

    #[test]
    fn alternation() {
        let r = re("true|false");
        assert!(r.is_full_match("true"));
        assert!(r.is_full_match("false"));
        assert!(!r.is_full_match("truefalse"));
    }

    #[test]
    fn alternation_prefers_longest() {
        // POSIX longest-match semantics: "ab" wins over "a".
        let r = re("a|ab");
        assert_eq!(r.match_at("ab", 0), Some(2));
    }

    #[test]
    fn star_and_plus() {
        let r = re("ab*c");
        assert!(r.is_full_match("ac"));
        assert!(r.is_full_match("abbbc"));
        let r = re("ab+c");
        assert!(!r.is_full_match("ac"));
        assert!(r.is_full_match("abc"));
    }

    #[test]
    fn optional() {
        let r = re("colou?r");
        assert!(r.is_full_match("color"));
        assert!(r.is_full_match("colour"));
    }

    #[test]
    fn bounded_repeat() {
        let r = re("a{2,3}");
        assert!(!r.is_full_match("a"));
        assert!(r.is_full_match("aa"));
        assert!(r.is_full_match("aaa"));
        assert!(!r.is_full_match("aaaa"));
        let r = re("a{3}");
        assert!(r.is_full_match("aaa"));
        assert!(!r.is_full_match("aa"));
        let r = re("a{2,}");
        assert!(r.is_full_match("aaaaa"));
        assert!(!r.is_full_match("a"));
    }

    #[test]
    fn char_class() {
        let r = re("[a-c0-2]+");
        assert!(r.is_full_match("ab012c"));
        assert!(!r.is_full_match("d"));
        let r = re("[^:]+");
        assert!(r.is_full_match("abc"));
        assert!(!r.is_match(":"));
    }

    #[test]
    fn class_with_escape_and_literal_dash() {
        let r = re(r"[\d-]+");
        assert!(r.is_full_match("12-34"));
        let r = re(r"[a\]b]+");
        assert!(r.is_full_match("a]b"));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        let r = re("a.c");
        assert!(r.is_full_match("abc"));
        assert!(r.is_full_match("a=c"));
        assert!(!r.is_full_match("a\nc"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d+").is_full_match("12345"));
        assert!(re(r"\w+").is_full_match("abc_123"));
        assert!(re(r"\s+").is_full_match(" \t"));
        assert!(re(r"\D+").is_full_match("ab-"));
        assert!(!re(r"\D").is_match("7"));
        assert!(re(r"\.").is_full_match("."));
        assert!(!re(r"\.").is_match("a"));
        assert!(re(r"\\").is_full_match("\\"));
    }

    #[test]
    fn anchors() {
        let r = re("^abc$");
        assert!(r.is_full_match("abc"));
        assert_eq!(r.find("xabc"), None);
        let r = re("abc$");
        assert_eq!(r.find("xxabc"), Some((2, 5)));
        assert_eq!(r.find("abcx"), None);
    }

    #[test]
    fn grouping() {
        let r = re("(ab)+");
        assert!(r.is_full_match("ababab"));
        assert!(!r.is_full_match("aba"));
        let r = re("(?:ab|cd)e");
        assert!(r.is_full_match("abe"));
        assert!(r.is_full_match("cde"));
    }

    #[test]
    fn ipv4_pattern() {
        let r = re(r"[0-9]+(\.[0-9]+){3}");
        assert!(r.is_full_match("10.14.14.34"));
        assert!(r.is_full_match("0.0.0.0"));
        assert!(!r.is_full_match("10.14.14"));
        assert_eq!(r.match_at("10.1.2.3/24", 0), Some(8));
    }

    #[test]
    fn prefix_pattern() {
        let r = re(r"[0-9]+(\.[0-9]+){3}/[0-9]+");
        assert!(r.is_full_match("10.1.2.0/24"));
        assert!(!r.is_full_match("10.1.2.0"));
    }

    #[test]
    fn mac_pattern() {
        let r = re("[0-9a-zA-Z]+(:[0-9a-zA-Z]+){5}");
        assert!(r.is_full_match("00:00:0c:d3:00:6e"));
        assert!(!r.is_full_match("00:00:0c:d3:00"));
    }

    #[test]
    fn iface_pattern() {
        let r = re("([aA]e|[eE]t)-?[0-9]+");
        assert!(r.is_full_match("Et1"));
        assert!(r.is_full_match("ae-42"));
        assert!(!r.is_full_match("xe-0"));
    }

    #[test]
    fn match_at_mid_string() {
        let r = re(r"\d+");
        assert_eq!(r.match_at("abc 123 def", 4), Some(3));
        assert_eq!(r.match_at("abc 123 def", 0), None);
    }

    #[test]
    fn longest_match_wins() {
        let r = re(r"\d+");
        assert_eq!(r.match_at("123456", 0), Some(6));
        let r = re("a*");
        assert_eq!(r.match_at("aaab", 0), Some(3));
        assert_eq!(r.match_at("b", 0), Some(0));
    }

    #[test]
    fn find_all_non_overlapping() {
        let r = re(r"\d+");
        assert_eq!(r.find_all("a1b22c333"), vec![(1, 2), (3, 5), (6, 9)]);
    }

    #[test]
    fn empty_pattern_matches_empty() {
        let r = re("");
        assert_eq!(r.match_at("abc", 0), Some(0));
        assert!(r.is_full_match(""));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"\q").is_err());
        assert!(Regex::new("a{").is_err());
    }

    #[test]
    fn brace_without_digits_is_literal() {
        // `{` not followed by a valid bound spec is treated as an error by
        // this engine (strict mode), matching the documented grammar.
        assert!(Regex::new("a{x}").is_err());
    }

    #[test]
    fn unicode_input() {
        let r = re("é+");
        assert!(r.is_full_match("ééé"));
        let r = re(".");
        assert!(r.is_full_match("é"));
    }

    #[test]
    fn nested_repetition_no_blowup() {
        // A classic catastrophic-backtracking pattern; the Pike VM must
        // stay linear.
        let r = re("(a+)+$");
        let input = "a".repeat(64) + "b";
        assert!(!r.is_match(&input));
    }

    #[test]
    fn display_roundtrip() {
        let r = re("ab|cd");
        assert_eq!(r.to_string(), "ab|cd");
        assert_eq!(r.pattern(), "ab|cd");
    }
}
