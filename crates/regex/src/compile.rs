//! Lowers an [`Ast`] to a flat NFA [`Program`] (Thompson construction).

use crate::ast::Ast;
use crate::program::{Inst, Program};

/// Compiles `ast` into an executable NFA program.
pub fn compile(ast: &Ast) -> Program {
    let mut compiler = Compiler { insts: Vec::new() };
    compiler.emit_node(ast);
    compiler.insts.push(Inst::Match);
    Program {
        insts: compiler.insts,
        matches_empty: ast.matches_empty(),
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn pc(&self) -> usize {
        self.insts.len()
    }

    /// Emits the program fragment for `node`; on entry the fragment starts
    /// at the current pc, and on exit execution falls through to the next
    /// emitted instruction.
    fn emit_node(&mut self, node: &Ast) {
        match node {
            Ast::Empty => {}
            Ast::Literal(c) => self.insts.push(Inst::Char(*c)),
            Ast::Dot => self.insts.push(Inst::AnyChar),
            Ast::Class(set) => self.insts.push(Inst::Class(set.clone())),
            Ast::StartAnchor => self.insts.push(Inst::AssertStart),
            Ast::EndAnchor => self.insts.push(Inst::AssertEnd),
            Ast::Concat(parts) => {
                for part in parts {
                    self.emit_node(part);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // Chain of splits: each split tries the next branch first and
        // falls back to the remaining alternatives. Jumps at the end of
        // every branch converge on a common exit.
        let mut jump_ends = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            let last = i == branches.len() - 1;
            if !last {
                let split_pc = self.pc();
                self.insts.push(Inst::Split(0, 0)); // Patched below.
                self.emit_node(branch);
                jump_ends.push(self.pc());
                self.insts.push(Inst::Jmp(0)); // Patched below.
                let next_branch = self.pc();
                self.insts[split_pc] = Inst::Split(split_pc + 1, next_branch);
            } else {
                self.emit_node(branch);
            }
        }
        let end = self.pc();
        for pc in jump_ends {
            self.insts[pc] = Inst::Jmp(end);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        match (min, max) {
            (0, Some(1)) => {
                // `e?`
                let split_pc = self.pc();
                self.insts.push(Inst::Split(0, 0));
                self.emit_node(node);
                let end = self.pc();
                self.insts[split_pc] = Inst::Split(split_pc + 1, end);
            }
            (0, None) => {
                // `e*`
                let split_pc = self.pc();
                self.insts.push(Inst::Split(0, 0));
                self.emit_node(node);
                self.insts.push(Inst::Jmp(split_pc));
                let end = self.pc();
                self.insts[split_pc] = Inst::Split(split_pc + 1, end);
            }
            (1, None) => {
                // `e+`
                let start = self.pc();
                self.emit_node(node);
                let split_pc = self.pc();
                self.insts.push(Inst::Split(start, split_pc + 1));
            }
            (min, None) => {
                // `e{n,}` = n-1 copies followed by `e+`.
                for _ in 0..min.saturating_sub(1) {
                    self.emit_node(node);
                }
                self.emit_repeat(node, 1, None);
            }
            (min, Some(max)) => {
                // `e{n,m}` = n copies followed by m-n optional copies.
                for _ in 0..min {
                    self.emit_node(node);
                }
                let optional = max - min;
                // Each optional copy can bail out to the common end.
                let mut split_pcs = Vec::new();
                for _ in 0..optional {
                    let split_pc = self.pc();
                    self.insts.push(Inst::Split(0, 0));
                    split_pcs.push(split_pc);
                    self.emit_node(node);
                }
                let end = self.pc();
                for pc in split_pcs {
                    self.insts[pc] = Inst::Split(pc + 1, end);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn program(p: &str) -> Program {
        compile(&parse(p).unwrap())
    }

    #[test]
    fn literal_program_shape() {
        let prog = program("ab");
        assert_eq!(prog.len(), 3); // Char, Char, Match.
        assert!(matches!(prog.insts[2], Inst::Match));
    }

    #[test]
    fn empty_program_matches_empty() {
        let prog = program("");
        assert!(prog.matches_empty);
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn star_program_matches_empty_flag() {
        assert!(program("a*").matches_empty);
        assert!(!program("a+").matches_empty);
    }

    #[test]
    fn bounded_repeat_unrolls() {
        // `a{3}` should be three Char instructions plus Match.
        let prog = program("a{3}");
        assert_eq!(prog.len(), 4);
    }

    #[test]
    fn split_targets_in_range() {
        for pattern in ["a|b|c", "(ab|cd)*e?", "x{2,5}", "(a+)+", "a{0,3}"] {
            let prog = program(pattern);
            for inst in &prog.insts {
                match inst {
                    Inst::Split(a, b) => {
                        assert!(*a < prog.len(), "{pattern}: split target {a} oob");
                        assert!(*b < prog.len(), "{pattern}: split target {b} oob");
                    }
                    Inst::Jmp(t) => assert!(*t < prog.len(), "{pattern}: jmp target {t} oob"),
                    _ => {}
                }
            }
        }
    }
}
