//! Pike-style NFA simulation.
//!
//! The VM advances a set of live threads (program counters) one input
//! character at a time. Because the thread set is deduplicated, the total
//! work per character is bounded by the program size, giving linear-time
//! matching regardless of the pattern.

use crate::program::{Inst, Program};

/// Returns the length in bytes of the longest match of `program` starting
/// at byte offset `start` of `text`, or `None` when nothing matches there.
pub fn longest_match_at(program: &Program, text: &str, start: usize) -> Option<usize> {
    assert!(
        text.is_char_boundary(start),
        "start offset {start} is not a char boundary"
    );
    let n = program.len();
    let mut current = ThreadSet::new(n);
    let mut next = ThreadSet::new(n);
    let mut best: Option<usize> = None;

    let at_input_start = start == 0;
    add_thread(program, &mut current, 0, at_input_start, {
        // Whether position `start` is at the end of input.
        start == text.len()
    });
    if current.matched {
        best = Some(0);
    }

    let mut consumed = 0;
    let tail = &text[start..];
    let chars = tail.char_indices().peekable();
    for (offset, c) in chars {
        if current.is_dead() {
            break;
        }
        let next_offset = offset + c.len_utf8();
        let at_end_after = start + next_offset == text.len();
        next.clear();
        for i in 0..current.pcs.len() {
            let pc = current.pcs[i];
            let advance = match &program.insts[pc] {
                Inst::Char(ch) => *ch == c,
                Inst::AnyChar => c != '\n',
                Inst::Class(set) => set.contains(c),
                // Epsilon instructions never sit in the thread list; they
                // are resolved eagerly by `add_thread`.
                _ => false,
            };
            if advance {
                add_thread(program, &mut next, pc + 1, false, at_end_after);
            }
        }
        consumed = next_offset;
        if next.matched {
            best = Some(consumed);
        }
        std::mem::swap(&mut current, &mut next);
    }
    let _ = consumed;
    best
}

/// A deduplicated set of live program counters.
///
/// Membership marks are generation-stamped so that `clear` is `O(1)` and
/// also forgets epsilon instructions that were visited but never stored in
/// `pcs`.
struct ThreadSet {
    pcs: Vec<usize>,
    stamp: Vec<u64>,
    generation: u64,
    matched: bool,
}

impl ThreadSet {
    fn new(n: usize) -> Self {
        ThreadSet {
            pcs: Vec::with_capacity(n),
            stamp: vec![0; n],
            generation: 1,
            matched: false,
        }
    }

    fn clear(&mut self) {
        self.generation += 1;
        self.pcs.clear();
        self.matched = false;
    }

    fn visited(&mut self, pc: usize) -> bool {
        if self.stamp[pc] == self.generation {
            true
        } else {
            self.stamp[pc] = self.generation;
            false
        }
    }

    fn is_dead(&self) -> bool {
        self.pcs.is_empty()
    }
}

/// Adds `pc` to the thread set, eagerly following epsilon transitions
/// (splits, jumps, and satisfied anchors).
fn add_thread(program: &Program, set: &mut ThreadSet, pc: usize, at_start: bool, at_end: bool) {
    if set.visited(pc) {
        return;
    }
    match &program.insts[pc] {
        Inst::Jmp(t) => add_thread(program, set, *t, at_start, at_end),
        Inst::Split(a, b) => {
            add_thread(program, set, *a, at_start, at_end);
            add_thread(program, set, *b, at_start, at_end);
        }
        Inst::AssertStart => {
            if at_start {
                add_thread(program, set, pc + 1, at_start, at_end);
            }
        }
        Inst::AssertEnd => {
            if at_end {
                add_thread(program, set, pc + 1, at_start, at_end);
            }
        }
        Inst::Match => set.matched = true,
        Inst::Char(_) | Inst::AnyChar | Inst::Class(_) => set.pcs.push(pc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parse::parse;

    fn run(pattern: &str, text: &str, start: usize) -> Option<usize> {
        let program = compile(&parse(pattern).unwrap());
        longest_match_at(&program, text, start)
    }

    #[test]
    fn simple_runs() {
        assert_eq!(run("abc", "abcdef", 0), Some(3));
        assert_eq!(run("abc", "xabc", 0), None);
        assert_eq!(run("abc", "xabc", 1), Some(3));
    }

    #[test]
    fn longest_of_alternatives() {
        assert_eq!(run("a|aa|aaa", "aaaa", 0), Some(3));
    }

    #[test]
    fn anchors_respect_position() {
        assert_eq!(run("^a", "ab", 0), Some(1));
        assert_eq!(run("^a", "ba", 1), None);
        assert_eq!(run("a$", "ba", 1), Some(1));
        assert_eq!(run("a$", "ab", 0), None);
    }

    #[test]
    fn start_anchor_mid_string_never_matches() {
        assert_eq!(run("^b", "ab", 1), None);
    }

    #[test]
    #[should_panic(expected = "char boundary")]
    fn non_boundary_start_panics() {
        run("a", "é", 1);
    }

    #[test]
    fn dead_threads_stop_early() {
        // Would loop forever if the VM failed to detect thread death.
        assert_eq!(run("z", &"a".repeat(10_000), 0), None);
    }
}
