//! Compiled NFA program representation.

use crate::ast::ClassSet;

/// A single NFA instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Match a single literal character and advance.
    Char(char),
    /// Match any character except `\n` and advance.
    AnyChar,
    /// Match a character class and advance.
    Class(ClassSet),
    /// Fork execution to both targets (epsilon transition).
    Split(usize, usize),
    /// Jump to the target (epsilon transition).
    Jmp(usize),
    /// Succeed only at the start of the input.
    AssertStart,
    /// Succeed only at the end of the input.
    AssertEnd,
    /// Accept the input consumed so far.
    Match,
}

/// A compiled NFA program: a flat instruction list starting at pc 0.
#[derive(Debug, Clone)]
pub struct Program {
    /// The instructions; `Inst::Match` terminates accepting threads.
    pub insts: Vec<Inst>,
    /// Whether the pattern can match the empty string.
    pub matches_empty: bool,
}

impl Program {
    /// Returns the number of instructions (always at least 1: a compiled
    /// pattern ends with `Match`).
    pub fn len(&self) -> usize {
        self.insts.len()
    }
}
