//! Recursive-descent parser for the supported regex grammar.
//!
//! Grammar (ignoring whitespace, which is significant):
//!
//! ```text
//! alternate := concat ('|' concat)*
//! concat    := repeat*
//! repeat    := atom quantifier?
//! quantifier := '*' | '+' | '?' | '{' n '}' | '{' n ',' '}' | '{' n ',' m '}'
//! atom      := literal | '.' | '^' | '$' | escape | class | '(' alternate ')'
//! ```

use crate::ast::{Ast, ClassItem, ClassSet};

/// An error produced while parsing a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the pattern at which the error was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "regex parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let ast = parser.alternate()?;
    if parser.pos < parser.chars.len() {
        return Err(parser.error(format!(
            "unexpected character {:?}",
            parser.chars[parser.pos]
        )));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternate(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().expect("one part")),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                self.pos += 1;
                let bounds = self.bounds()?;
                (bounds.0, bounds.1)
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::Empty | Ast::StartAnchor | Ast::EndAnchor) {
            return Err(self.error("quantifier applied to empty expression or anchor"));
        }
        if let Some(m) = max {
            if min > m {
                return Err(self.error(format!("invalid bound {{{min},{m}}}: min > max")));
            }
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Parses the inside of a `{...}` bound; the opening brace is consumed.
    fn bounds(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let min = self.number()?;
        if self.eat('}') {
            return Ok((min, Some(min)));
        }
        if !self.eat(',') {
            return Err(self.error("expected ',' or '}' in repetition bound"));
        }
        if self.eat('}') {
            return Ok((min, None));
        }
        let max = self.number()?;
        if !self.eat('}') {
            return Err(self.error("expected '}' closing repetition bound"));
        }
        Ok((min, Some(max)))
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<u32>()
            .map_err(|_| self.error(format!("repetition bound {text:?} out of range")))
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        let c = self
            .bump()
            .ok_or_else(|| self.error("unexpected end of pattern"))?;
        match c {
            '(' => {
                // Support the non-capturing prefix `(?:` transparently —
                // this engine has no capture groups, so both spellings
                // compile identically.
                if self.peek() == Some('?') {
                    let save = self.pos;
                    self.pos += 1;
                    if !self.eat(':') {
                        self.pos = save;
                        return Err(self.error("unsupported group flag; only (?: is allowed"));
                    }
                }
                let inner = self.alternate()?;
                if !self.eat(')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            '[' => self.class(),
            '.' => Ok(Ast::Dot),
            '^' => Ok(Ast::StartAnchor),
            '$' => Ok(Ast::EndAnchor),
            '\\' => self.escape(),
            '*' | '+' | '?' => Err(self.error(format!("dangling quantifier {c:?}"))),
            '{' => Err(self.error("dangling repetition bound")),
            ')' => Err(self.error("unmatched ')'")),
            c => Ok(Ast::Literal(c)),
        }
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        let c = self
            .bump()
            .ok_or_else(|| self.error("trailing backslash"))?;
        let class = |items: Vec<ClassItem>, negated: bool| Ast::Class(ClassSet { items, negated });
        Ok(match c {
            'd' => class(vec![ClassItem::Range('0', '9')], false),
            'D' => class(vec![ClassItem::Range('0', '9')], true),
            'w' => class(word_items(), false),
            'W' => class(word_items(), true),
            's' => class(space_items(), false),
            'S' => class(space_items(), true),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '.' | '\\' | '+' | '*' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$'
            | '-' | '/' | ':' => Ast::Literal(c),
            other => return Err(self.error(format!("unknown escape \\{other}"))),
        })
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        loop {
            let c = self
                .bump()
                .ok_or_else(|| self.error("unclosed character class"))?;
            match c {
                ']' if !items.is_empty() || negated => break,
                ']' if items.is_empty() => {
                    // A `]` first in a class is a literal, POSIX style.
                    items.push(self.class_item(']')?);
                }
                '\\' => {
                    let e = self
                        .bump()
                        .ok_or_else(|| self.error("trailing backslash in class"))?;
                    match e {
                        'd' => items.push(ClassItem::Range('0', '9')),
                        'w' => items.extend(word_items()),
                        's' => items.extend(space_items()),
                        'n' => items.push(self.class_item('\n')?),
                        't' => items.push(self.class_item('\t')?),
                        'r' => items.push(self.class_item('\r')?),
                        '\\' | ']' | '[' | '^' | '-' | '.' | '/' | ':' => {
                            items.push(self.class_item(e)?)
                        }
                        other => {
                            return Err(self.error(format!("unknown escape \\{other} in class")))
                        }
                    }
                }
                c => items.push(self.class_item(c)?),
            }
        }
        Ok(Ast::Class(ClassSet { items, negated }))
    }

    /// Parses an optional `-hi` range suffix after the class member `lo`.
    fn class_item(&mut self, lo: char) -> Result<ClassItem, ParseError> {
        if self.peek() == Some('-') {
            // A `-` immediately before `]` is a literal dash.
            if self.chars.get(self.pos + 1) == Some(&']') {
                return Ok(ClassItem::Char(lo));
            }
            self.pos += 1;
            let hi = match self.bump() {
                Some('\\') => self
                    .bump()
                    .ok_or_else(|| self.error("trailing backslash in class range"))?,
                Some(c) => c,
                None => return Err(self.error("unclosed character class")),
            };
            if lo > hi {
                return Err(self.error(format!("invalid class range {lo}-{hi}")));
            }
            Ok(ClassItem::Range(lo, hi))
        } else {
            Ok(ClassItem::Char(lo))
        }
    }
}

fn word_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Range('a', 'z'),
        ClassItem::Range('A', 'Z'),
        ClassItem::Range('0', '9'),
        ClassItem::Char('_'),
    ]
}

fn space_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Char(' '),
        ClassItem::Char('\t'),
        ClassItem::Char('\n'),
        ClassItem::Char('\r'),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn parses_alternation() {
        assert_eq!(
            parse("a|b").unwrap(),
            Ast::Alternate(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn parses_empty_alternative() {
        assert_eq!(
            parse("a|").unwrap(),
            Ast::Alternate(vec![Ast::Literal('a'), Ast::Empty])
        );
    }

    #[test]
    fn parses_repeat_bounds() {
        match parse("a{2,5}").unwrap() {
            Ast::Repeat { min, max, .. } => {
                assert_eq!(min, 2);
                assert_eq!(max, Some(5));
            }
            other => panic!("unexpected ast {other:?}"),
        }
        match parse("a{7}").unwrap() {
            Ast::Repeat { min, max, .. } => {
                assert_eq!(min, 7);
                assert_eq!(max, Some(7));
            }
            other => panic!("unexpected ast {other:?}"),
        }
        match parse("a{3,}").unwrap() {
            Ast::Repeat { min, max, .. } => {
                assert_eq!(min, 3);
                assert_eq!(max, None);
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_bounds() {
        assert!(parse("a{5,2}").is_err());
        assert!(parse("a{,2}").is_err());
        assert!(parse("a{2").is_err());
    }

    #[test]
    fn rejects_quantified_anchor() {
        assert!(parse("^*").is_err());
        assert!(parse("$+").is_err());
    }

    #[test]
    fn class_leading_bracket_literal() {
        match parse("[]a]").unwrap() {
            Ast::Class(set) => {
                assert!(set.contains(']'));
                assert!(set.contains('a'));
                assert!(!set.contains('b'));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn class_trailing_dash_literal() {
        match parse("[a-]").unwrap() {
            Ast::Class(set) => {
                assert!(set.contains('a'));
                assert!(set.contains('-'));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn rejects_reversed_range() {
        assert!(parse("[z-a]").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse("ab)").unwrap_err();
        assert_eq!(err.position, 2);
        assert!(err.to_string().contains("unexpected"));
    }

    #[test]
    fn non_capturing_group() {
        assert_eq!(parse("(?:ab)").unwrap(), parse("(ab)").unwrap());
        assert!(parse("(?i:ab)").is_err());
    }
}
