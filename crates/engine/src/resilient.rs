//! Panic isolation, graceful degradation, and durable state for the
//! engine.
//!
//! [`ResilientEngine`] wraps an [`Engine`] with three guarantees the
//! raw engine does not make:
//!
//! 1. **Panic isolation.** Every operation runs under
//!    [`std::panic::catch_unwind`]. A panic escaping the engine marks
//!    the live snapshot *poisoned* — its incremental caches can no
//!    longer be trusted — and the wrapper immediately rebuilds a fresh
//!    engine from the last-known-good [`EngineImage`], which the
//!    panicking operation never touched (the image is only updated
//!    *after* an operation succeeds). The rebuild is oracle-equivalent
//!    by construction: a from-scratch engine over the same corpus and
//!    contracts, so the next check is byte-identical to a batch run.
//! 2. **Durability.** With a [`StateDir`] attached, every successful
//!    mutation is appended to an fsync'd WAL before it is acknowledged,
//!    and the image is checkpointed atomically every
//!    `checkpoint_every` appends. A killed process resumes from
//!    snapshot + WAL replay exactly where it stopped.
//! 3. **Deterministic fault injection.** Tests arm panics per
//!    operation kind ([`ResilientEngine::arm_panic`]); the injected
//!    panic fires inside the guarded region, exercising the real
//!    recovery path with no timing dependence.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use concord_core::{
    ContractSet, DatasetError, EngineStats, LearnStats, RobustnessStats, StorageStats,
};
use concord_lexer::Lexer;

use crate::image::{EngineImage, ImageError};
use crate::store::{StateDir, StoreError};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::WalOp;
use crate::{CheckParts, ConfigId, Engine, EngineCheckReport, EngineError, EngineOptions};

/// Bounded retries before a failing append/checkpoint degrades the
/// engine to read-only. Attempt `n` sleeps `1 << (n - 1)` ms first
/// (1/2/4 ms), so a transient hiccup is absorbed in under 10 ms.
const STORAGE_RETRY_LIMIT: u32 = 3;

/// The operation kinds a fault can be armed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`ResilientEngine::upsert`].
    Upsert,
    /// [`ResilientEngine::remove`].
    Remove,
    /// [`ResilientEngine::relearn`].
    Learn,
    /// [`ResilientEngine::set_contracts_json`].
    SetContracts,
    /// [`ResilientEngine::check`].
    Check,
    /// [`ResilientEngine::snapshot_stats`].
    Stats,
}

impl OpKind {
    /// Parses the lowercase name used by the serve protocol's
    /// fault-injection verb.
    pub fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "upsert" => OpKind::Upsert,
            "remove" => OpKind::Remove,
            "learn" => OpKind::Learn,
            "set-contracts" => OpKind::SetContracts,
            "check" => OpKind::Check,
            "stats" => OpKind::Stats,
            _ => return None,
        })
    }
}

/// Why a resilient-engine operation failed. Every variant leaves the
/// engine usable for the next request (possibly after an internal
/// rebuild), except [`EngineFault::Poisoned`] which reports that the
/// rebuild itself failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineFault {
    /// A named configuration does not exist.
    UnknownConfig(String),
    /// No contracts are loaded yet.
    NoContracts,
    /// A supplied contract set failed to parse.
    BadContracts(String),
    /// The operation panicked; the engine was rebuilt from the
    /// last-known-good image and the operation was *not* applied.
    Panicked(String),
    /// The operation was applied in memory but could not be made
    /// durable (WAL append failed).
    Persist(String),
    /// Storage is persistently failing: the engine is in degraded
    /// read-only mode. Reads keep serving from the resident snapshot;
    /// writes are rejected until a re-probe succeeds.
    StorageDegraded(String),
    /// The engine is poisoned and could not be rebuilt.
    Poisoned,
}

impl std::fmt::Display for EngineFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineFault::UnknownConfig(name) => write!(f, "unknown config {name:?}"),
            EngineFault::NoContracts => f.write_str("no contracts loaded"),
            EngineFault::BadContracts(e) => write!(f, "bad contracts: {e}"),
            EngineFault::Panicked(msg) => write!(f, "operation panicked: {msg}"),
            EngineFault::Persist(e) => write!(f, "persistence failed: {e}"),
            EngineFault::StorageDegraded(e) => {
                write!(f, "storage degraded, serving read-only: {e}")
            }
            EngineFault::Poisoned => f.write_str("engine poisoned and rebuild failed"),
        }
    }
}

impl std::error::Error for EngineFault {}

/// Why a [`ResilientEngine`] could not boot.
#[derive(Debug)]
pub enum BootError {
    /// The seed corpus failed to build.
    Dataset(DatasetError),
    /// The state directory was unreadable.
    Store(StoreError),
    /// The persisted image failed to decode or rebuild.
    Image(ImageError),
}

impl std::fmt::Display for BootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootError::Dataset(e) => write!(f, "building seed corpus: {e}"),
            BootError::Store(e) => write!(f, "opening state dir: {e}"),
            BootError::Image(e) => write!(f, "restoring snapshot: {e}"),
        }
    }
}

impl std::error::Error for BootError {}

impl From<DatasetError> for BootError {
    fn from(e: DatasetError) -> BootError {
        BootError::Dataset(e)
    }
}

impl From<StoreError> for BootError {
    fn from(e: StoreError) -> BootError {
        BootError::Store(e)
    }
}

impl From<ImageError> for BootError {
    fn from(e: ImageError) -> BootError {
        BootError::Image(e)
    }
}

/// A fault-isolated, optionally durable [`Engine`] wrapper.
pub struct ResilientEngine {
    /// `None` while poisoned (a panic escaped and the rebuild failed).
    engine: Option<Engine>,
    /// Last-known-good pure-data mirror; never touched by a failing op.
    image: EngineImage,
    lexer: Lexer,
    options: EngineOptions,
    store: Option<StateDir>,
    robustness: RobustnessStats,
    /// The next successful check runs on a freshly rebuilt engine and
    /// is counted as degraded (recomputed from scratch, still exact).
    degraded_pending: bool,
    /// Armed fault injections, consumed one per matching operation.
    armed: Vec<OpKind>,
    checkpoint_every: u64,
    appends_since_checkpoint: u64,
    /// Cumulative segmented-checkpoint counters (v9 `memory` stats).
    segments_written: u64,
    segments_skipped: u64,
    /// Storage is persistently failing: writes are rejected, reads keep
    /// serving from the resident snapshot, and every write attempt
    /// re-probes the storage stack for recovery (v10 `storage` stats).
    degraded: bool,
    storage_retries: u64,
    degraded_transitions: u64,
    storage_recoveries: u64,
}

impl ResilientEngine {
    /// Builds a memory-only resilient engine over a corpus.
    pub fn new(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: Lexer,
        options: EngineOptions,
    ) -> Result<ResilientEngine, DatasetError> {
        let engine =
            Engine::from_corpus_with_lexer(configs, metadata, lexer.clone(), options.clone())?;
        let image = EngineImage::from_corpus(configs, metadata);
        Ok(ResilientEngine {
            engine: Some(engine),
            image,
            lexer,
            options,
            store: None,
            robustness: RobustnessStats::default(),
            degraded_pending: false,
            armed: Vec::new(),
            checkpoint_every: 64,
            appends_since_checkpoint: 0,
            segments_written: 0,
            segments_skipped: 0,
            degraded: false,
            storage_retries: 0,
            degraded_transitions: 0,
            storage_recoveries: 0,
        })
    }

    /// Builds a durable resilient engine backed by `dir`. A fresh
    /// directory is seeded from `configs` and checkpointed immediately;
    /// a directory with a usable snapshot resumes from it (plus WAL
    /// replay) and **ignores** `configs`. Returns whether the engine
    /// resumed from persisted state.
    pub fn with_store(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: Lexer,
        options: EngineOptions,
        dir: &Path,
    ) -> Result<(ResilientEngine, bool), BootError> {
        Self::with_store_vfs(configs, metadata, lexer, options, dir, Arc::new(RealVfs))
    }

    /// Like [`ResilientEngine::with_store`] but with every filesystem
    /// operation routed through `vfs` — the fault-injection and
    /// crash-point entry point.
    pub fn with_store_vfs(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: Lexer,
        options: EngineOptions,
        dir: &Path,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(ResilientEngine, bool), BootError> {
        let (store, load) = StateDir::open_vfs(dir, vfs)?;
        let resumed = load.image.is_some();
        let mut me = match load.image {
            Some(image) => {
                let engine = Engine::from_image(&image, lexer.clone(), options.clone())?;
                ResilientEngine {
                    engine: Some(engine),
                    image,
                    lexer,
                    options,
                    store: Some(store),
                    robustness: RobustnessStats::default(),
                    degraded_pending: false,
                    armed: Vec::new(),
                    checkpoint_every: 64,
                    appends_since_checkpoint: 0,
                    segments_written: 0,
                    segments_skipped: 0,
                    degraded: false,
                    storage_retries: 0,
                    degraded_transitions: 0,
                    storage_recoveries: 0,
                }
            }
            None => {
                let mut me = Self::new(configs, metadata, lexer, options)?;
                me.store = Some(store);
                me
            }
        };
        if !load.replay.is_empty() {
            me.robustness.wal_replays += 1;
            me.robustness.wal_records_replayed += load.replay.len() as u64;
            for record in &load.replay {
                me.replay_op(&record.op, record.seq);
            }
        }
        // Fold the replayed (or seeded) state into a fresh checkpoint
        // so the next crash replays from here.
        me.checkpoint();
        Ok((me, resumed))
    }

    /// The last-known-good image (also the soak oracle's input).
    pub fn image(&self) -> &EngineImage {
        &self.image
    }

    /// Robustness counters accumulated so far.
    pub fn robustness(&self) -> RobustnessStats {
        self.robustness
    }

    /// Adds serve-layer rejections/deadlines into the robustness
    /// counters reported by [`ResilientEngine::snapshot_stats`].
    pub fn add_serve_counters(&mut self, requests_rejected: u64, deadlines_hit: u64) {
        self.robustness.requests_rejected = requests_rejected;
        self.robustness.deadlines_hit = deadlines_hit;
    }

    /// Sets the auto-checkpoint cadence (`0` disables auto
    /// checkpoints; explicit [`ResilientEngine::checkpoint`] calls
    /// still work).
    pub fn set_checkpoint_every(&mut self, every: u64) {
        self.checkpoint_every = every;
    }

    /// Arms one injected panic against the next operation of `kind`.
    /// Test support: the panic fires inside the guarded region, so it
    /// exercises the exact production recovery path.
    pub fn arm_panic(&mut self, kind: OpKind) {
        self.armed.push(kind);
    }

    /// Whether the engine is currently poisoned (rebuild failed).
    pub fn poisoned(&self) -> bool {
        self.engine.is_none()
    }

    /// The edit generation of `name`, if it exists.
    pub fn config_generation(&self, name: &str) -> Result<Option<u64>, EngineFault> {
        Ok(self
            .engine
            .as_ref()
            .ok_or(EngineFault::Poisoned)?
            .config_generation(name))
    }

    /// The incremental-learn cache counters of the live engine.
    pub fn learn_delta(&self) -> Result<concord_core::LearnDeltaStats, EngineFault> {
        Ok(self
            .engine
            .as_ref()
            .ok_or(EngineFault::Poisoned)?
            .learn_delta())
    }

    /// The number of loaded contracts, if any are loaded.
    pub fn contracts_len(&self) -> Result<Option<usize>, EngineFault> {
        Ok(self
            .engine
            .as_ref()
            .ok_or(EngineFault::Poisoned)?
            .contracts()
            .map(ContractSet::len))
    }

    /// Inserts or replaces one configuration.
    pub fn upsert(&mut self, name: &str, text: &str) -> Result<ConfigId, EngineFault> {
        self.ensure_writable()?;
        let id = self.guarded(OpKind::Upsert, |e| e.upsert_config(name, text))?;
        self.image.upsert(name, text);
        self.sync_counters();
        self.log(WalOp::Upsert {
            name: name.to_string(),
            text: text.to_string(),
        })?;
        Ok(id)
    }

    /// Removes one configuration; `Ok(None)` when it did not exist.
    pub fn remove(&mut self, name: &str) -> Result<Option<ConfigId>, EngineFault> {
        self.ensure_writable()?;
        let id = self.guarded(OpKind::Remove, |e| e.remove_config(name))?;
        if id.is_some() {
            self.image.remove(name);
            self.sync_counters();
            self.log(WalOp::Remove {
                name: name.to_string(),
            })?;
        }
        Ok(id)
    }

    /// Learns a fresh contract set from the current snapshot.
    pub fn relearn(&mut self) -> Result<LearnStats, EngineFault> {
        self.ensure_writable()?;
        let stats = self.guarded(OpKind::Learn, |e| e.relearn())?;
        self.image.contracts = self.current_contracts_json();
        self.sync_counters();
        self.log(WalOp::Learn)?;
        Ok(stats)
    }

    /// Swaps in a contract set from its JSON serialization, returning
    /// the number of contracts loaded.
    pub fn set_contracts_json(&mut self, json: &str) -> Result<usize, EngineFault> {
        self.ensure_writable()?;
        let contracts =
            ContractSet::from_json(json).map_err(|e| EngineFault::BadContracts(e.to_string()))?;
        let len = contracts.len();
        self.guarded(OpKind::SetContracts, move |e| e.set_contracts(contracts))?;
        let canonical = self.current_contracts_json();
        self.image.contracts = canonical.clone();
        self.sync_counters();
        self.log(WalOp::SetContracts {
            json: canonical.unwrap_or_default(),
        })?;
        Ok(len)
    }

    /// Checks the current snapshot (incremental when the engine is
    /// healthy, full-recompute right after a recovery — both exact).
    pub fn check(&mut self) -> Result<EngineCheckReport, EngineFault> {
        let result = self.guarded(OpKind::Check, |e| e.check_dirty())?;
        let report = result.map_err(|e| match e {
            EngineError::NoContracts => EngineFault::NoContracts,
        })?;
        if self.degraded_pending {
            self.robustness.degraded_checks += 1;
            self.degraded_pending = false;
        }
        Ok(report)
    }

    /// Checks the current snapshot and returns the unassembled
    /// per-configuration parts (see [`Engine::check_parts`]) — the
    /// sharded fleet's CHECK primitive. Guarded exactly like
    /// [`ResilientEngine::check`]: an armed `Check` fault fires inside
    /// this path too, and a post-recovery run counts as degraded.
    pub fn check_parts(&mut self) -> Result<CheckParts, EngineFault> {
        let result = self.guarded(OpKind::Check, |e| e.check_parts())?;
        let parts = result.map_err(|e| match e {
            EngineError::NoContracts => EngineFault::NoContracts,
        })?;
        if self.degraded_pending {
            self.robustness.degraded_checks += 1;
            self.degraded_pending = false;
        }
        Ok(parts)
    }

    /// Shared-read CHECK: serves the cached report through `&self` when
    /// that is provably equivalent to [`ResilientEngine::check`].
    ///
    /// Returns `None` — caller must fall back to the exclusive path —
    /// whenever the exclusive path would do observable work this path
    /// cannot replicate: no cached report for the current snapshot, an
    /// armed injected fault (the panic must fire inside the guarded
    /// region), a pending degraded-check acknowledgement (the
    /// `degraded_checks` counter must stay exact), or a poisoned engine
    /// (the caller surfaces `EngineFault::Poisoned` exclusively).
    pub fn check_shared(&self) -> Option<EngineCheckReport> {
        if !self.armed.is_empty() || self.degraded_pending {
            return None;
        }
        self.engine.as_ref()?.check_cached()
    }

    /// Engine statistics with the robustness counters and segmented-
    /// checkpoint counters attached.
    pub fn snapshot_stats(&mut self) -> Result<EngineStats, EngineFault> {
        let mut stats = self.guarded(OpKind::Stats, |e| e.snapshot_stats())?;
        stats.robustness = Some(self.robustness);
        stats.memory.segments_written = self.segments_written;
        stats.memory.segments_skipped = self.segments_skipped;
        stats.storage = Some(self.storage_stats());
        Ok(stats)
    }

    /// Shared-read STATS: snapshots statistics through `&self`.
    ///
    /// `None` when an injected fault is armed (it must fire inside the
    /// exclusive guarded region) or the engine is poisoned; the caller
    /// falls back to [`ResilientEngine::snapshot_stats`].
    pub fn stats_shared(&self) -> Option<EngineStats> {
        if !self.armed.is_empty() {
            return None;
        }
        let mut stats = self.engine.as_ref()?.snapshot_stats();
        stats.robustness = Some(self.robustness);
        stats.memory.segments_written = self.segments_written;
        stats.memory.segments_skipped = self.segments_skipped;
        stats.storage = Some(self.storage_stats());
        Some(stats)
    }

    /// Whether the engine is in degraded read-only mode (storage is
    /// persistently failing; reads still serve from the snapshot).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The storage-health counters (v10 `storage` stats and the serve
    /// protocol's `HEALTH` verb). All zero for a memory-only engine.
    pub fn storage_stats(&self) -> StorageStats {
        StorageStats {
            degraded: self.degraded,
            faults_injected: self.store.as_ref().map_or(0, StateDir::injected_faults),
            retries: self.storage_retries,
            degraded_transitions: self.degraded_transitions,
            recoveries: self.storage_recoveries,
            gc_remove_errors: self.store.as_ref().map_or(0, StateDir::gc_remove_errors),
        }
    }

    /// Checkpoints now (no-op without a store). Returns whether a
    /// checkpoint was written; failures are counted, not fatal.
    pub fn checkpoint(&mut self) -> bool {
        if self.store.is_none() {
            return false;
        }
        // Learn sketches are derived state synced into the image only
        // here, not per-op: WAL replay reconstructs them (edits mark
        // configs dirty, a replayed Learn re-mines), so serializing them
        // on every append would be wasted work. An image config only
        // needs a fill when its sketch is `None` — at a fixed
        // (id, generation) a sketch is written at most once, so a
        // `Some` is already final and the segment holding it can be
        // skipped by the store.
        if let Some(engine) = self.engine.as_ref() {
            for config in &mut self.image.configs {
                if config.sketch.is_none() {
                    config.sketch = engine.export_sketch_for(&config.name).map(|j| j.render());
                }
            }
        }
        let mut attempt = 0u32;
        loop {
            let Some(store) = self.store.as_mut() else {
                return false;
            };
            match store.checkpoint(&self.image) {
                Ok(stats) => {
                    self.note_storage_ok();
                    self.robustness.checkpoints += 1;
                    self.segments_written += stats.segments_written;
                    self.segments_skipped += stats.segments_skipped;
                    self.appends_since_checkpoint = 0;
                    return true;
                }
                Err(e) => {
                    if !e.retryable() || attempt >= STORAGE_RETRY_LIMIT {
                        self.robustness.persist_errors += 1;
                        self.note_storage_degraded();
                        return false;
                    }
                    attempt += 1;
                    self.storage_retries += 1;
                    std::thread::sleep(Duration::from_millis(1u64 << (attempt - 1)));
                }
            }
        }
    }

    /// Runs `f` on the live engine under `catch_unwind`, poisoning and
    /// rebuilding on escape.
    fn guarded<T>(
        &mut self,
        kind: OpKind,
        f: impl FnOnce(&mut Engine) -> T,
    ) -> Result<T, EngineFault> {
        self.ensure_engine()?;
        let inject = self.take_armed(kind);
        let engine = self.engine.as_mut().ok_or(EngineFault::Poisoned)?;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected fault: {kind:?}");
            }
            f(engine)
        }));
        match result {
            Ok(value) => Ok(value),
            Err(payload) => {
                let msg = panic_message(payload);
                self.engine = None;
                self.rebuild_from_image();
                Err(EngineFault::Panicked(msg))
            }
        }
    }

    /// Rebuilds from the last-known-good image, guarding the rebuild
    /// itself (a panic there leaves the engine poisoned).
    fn rebuild_from_image(&mut self) {
        let image = self.image.clone();
        let lexer = self.lexer.clone();
        let options = self.options.clone();
        let rebuilt = catch_unwind(AssertUnwindSafe(|| {
            Engine::from_image(&image, lexer, options)
        }));
        match rebuilt {
            Ok(Ok(engine)) => {
                self.engine = Some(engine);
                self.robustness.panics_recovered += 1;
                self.degraded_pending = true;
            }
            Ok(Err(_)) | Err(_) => {
                self.engine = None;
            }
        }
    }

    fn ensure_engine(&mut self) -> Result<(), EngineFault> {
        if self.engine.is_none() {
            self.rebuild_from_image();
        }
        if self.engine.is_none() {
            return Err(EngineFault::Poisoned);
        }
        Ok(())
    }

    fn take_armed(&mut self, kind: OpKind) -> bool {
        match self.armed.iter().position(|k| *k == kind) {
            Some(i) => {
                self.armed.remove(i);
                true
            }
            None => false,
        }
    }

    fn sync_counters(&mut self) {
        if let Some(engine) = &self.engine {
            self.image.counters = engine.counters();
        }
    }

    fn current_contracts_json(&self) -> Option<String> {
        self.engine
            .as_ref()
            .and_then(Engine::contracts)
            .map(ContractSet::to_json)
    }

    /// Appends one op to the WAL (when a store is attached), advancing
    /// `applied_seq` and auto-checkpointing on cadence.
    ///
    /// A failed append is retried up to [`STORAGE_RETRY_LIMIT`] times
    /// with exponential backoff; the WAL tail is repaired between
    /// attempts, because a mid-write failure can leave a torn line that
    /// would bury the retried record where replay cannot see it.
    /// Exhausting the retries (or a non-retryable corruption error)
    /// degrades the engine to read-only.
    fn log(&mut self, op: WalOp) -> Result<(), EngineFault> {
        if self.store.is_none() {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            let store = self.store.as_mut().expect("store attached");
            match store.append(&op) {
                Ok(seq) => {
                    self.note_storage_ok();
                    self.image.applied_seq = seq;
                    self.appends_since_checkpoint += 1;
                    if self.checkpoint_every > 0
                        && self.appends_since_checkpoint >= self.checkpoint_every
                    {
                        self.checkpoint();
                    }
                    return Ok(());
                }
                Err(e) => {
                    if !e.retryable() || attempt >= STORAGE_RETRY_LIMIT {
                        self.robustness.persist_errors += 1;
                        self.note_storage_degraded();
                        return Err(EngineFault::StorageDegraded(e.to_string()));
                    }
                    attempt += 1;
                    self.storage_retries += 1;
                    // Repair the torn tail before retrying; if the
                    // repair itself fails, the retried append surfaces
                    // the same error and the loop degrades as usual.
                    let store = self.store.as_mut().expect("store attached");
                    let _ = store.recover_wal();
                    std::thread::sleep(Duration::from_millis(1u64 << (attempt - 1)));
                }
            }
        }
    }

    /// A write-path operation succeeded: leave degraded mode if we were
    /// in it.
    fn note_storage_ok(&mut self) {
        if self.degraded {
            self.degraded = false;
            self.storage_recoveries += 1;
        }
    }

    /// A write-path operation failed after retries: enter degraded
    /// read-only mode (idempotent).
    fn note_storage_degraded(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.degraded_transitions += 1;
        }
    }

    /// Gate at the top of every mutation. Healthy engines pass through;
    /// a degraded engine re-probes the storage stack (repairing the WAL
    /// tail first, since the failure that degraded us may have torn it)
    /// and either recovers or rejects the write without touching the
    /// in-memory snapshot — degraded mode is genuinely read-only.
    fn ensure_writable(&mut self) -> Result<(), EngineFault> {
        if !self.degraded {
            return Ok(());
        }
        let Some(store) = self.store.as_mut() else {
            self.degraded = false;
            return Ok(());
        };
        match store.recover_wal().and_then(|()| store.probe()) {
            Ok(()) => {
                self.note_storage_ok();
                Ok(())
            }
            Err(e) => Err(EngineFault::StorageDegraded(e.to_string())),
        }
    }

    /// Applies one replayed WAL op to engine + image without re-logging.
    fn replay_op(&mut self, op: &WalOp, seq: u64) {
        match op {
            WalOp::Upsert { name, text } => {
                if let Some(engine) = self.engine.as_mut() {
                    engine.upsert_config(name, text);
                }
                self.image.upsert(name, text);
            }
            WalOp::Remove { name } => {
                if let Some(engine) = self.engine.as_mut() {
                    engine.remove_config(name);
                }
                self.image.remove(name);
            }
            WalOp::Learn => {
                if let Some(engine) = self.engine.as_mut() {
                    engine.relearn();
                }
                self.image.contracts = self.current_contracts_json();
            }
            WalOp::SetContracts { json } => {
                if let Ok(contracts) = ContractSet::from_json(json) {
                    if let Some(engine) = self.engine.as_mut() {
                        engine.set_contracts(contracts);
                    }
                    self.image.contracts = Some(json.clone());
                }
            }
        }
        self.sync_counters();
        self.image.applied_seq = seq;
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn corpus() -> Vec<(String, String)> {
        (0..6)
            .map(|i| {
                (
                    format!("dev{i}"),
                    format!("hostname DEV{}\nvlan {}\nmtu 1500\n", 100 + i, 250 + i),
                )
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("concord-resilient-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn oracle_report(me: &ResilientEngine) -> crate::EngineCheckReport {
        let image = me.image();
        let mut oracle =
            Engine::from_corpus(&image.corpus(), &image.metadata, EngineOptions::default())
                .expect("oracle builds");
        if let Some(json) = &image.contracts {
            oracle.set_contracts(ContractSet::from_json(json).expect("contracts parse"));
        }
        oracle.check_dirty().expect("oracle checks")
    }

    #[test]
    fn injected_panic_recovers_and_next_check_matches_oracle() {
        let mut me =
            ResilientEngine::new(&corpus(), &[], Lexer::standard(), EngineOptions::default())
                .expect("builds");
        me.relearn().expect("learns");
        me.check().expect("checks");

        me.arm_panic(OpKind::Upsert);
        let err = me.upsert("dev0", "vlan 999\n").expect_err("panic injected");
        assert!(matches!(err, EngineFault::Panicked(_)), "{err:?}");
        assert!(!me.poisoned(), "rebuilt eagerly");
        assert_eq!(me.robustness().panics_recovered, 1);

        // The failed upsert must NOT have been applied.
        let got = me.check().expect("post-recovery check");
        assert_eq!(me.robustness().degraded_checks, 1);
        let want = oracle_report(&me);
        assert_eq!(got.report.violations, want.report.violations);

        // And the engine is fully usable: the same upsert now succeeds.
        me.upsert("dev0", "vlan 999\n")
            .expect("works after recovery");
        let got = me.check().expect("checks");
        let want = oracle_report(&me);
        assert_eq!(got.report.violations, want.report.violations);
    }

    #[test]
    fn panic_during_check_recovers_too() {
        let mut me =
            ResilientEngine::new(&corpus(), &[], Lexer::standard(), EngineOptions::default())
                .expect("builds");
        me.relearn().expect("learns");
        me.arm_panic(OpKind::Check);
        assert!(matches!(me.check(), Err(EngineFault::Panicked(_))));
        let got = me.check().expect("recovered");
        let want = oracle_report(&me);
        assert_eq!(got.report.violations, want.report.violations);
    }

    #[test]
    fn shared_reads_match_exclusive_and_refuse_armed_or_degraded_state() {
        let mut me =
            ResilientEngine::new(&corpus(), &[], Lexer::standard(), EngineOptions::default())
                .expect("builds");
        me.relearn().expect("learns");
        assert!(
            me.check_shared().is_none(),
            "no report cached before the first exclusive check"
        );
        let exclusive = me.check().expect("checks");
        let shared = me.check_shared().expect("cached report is current");
        assert_eq!(shared.report.violations, exclusive.report.violations);
        assert_eq!(
            shared.report.coverage.per_config,
            exclusive.report.coverage.per_config
        );

        let shared_stats = me.stats_shared().expect("healthy engine");
        assert_eq!(shared_stats.robustness, Some(me.robustness()));
        assert_eq!(
            shared_stats.configs,
            me.snapshot_stats().expect("exclusive stats").configs
        );

        // Mutations invalidate the shared CHECK until the next exclusive
        // check republishes a report.
        me.upsert("dev0", "vlan 999\n").expect("upserts");
        assert!(me.check_shared().is_none(), "edit invalidated the cache");
        me.check().expect("checks");
        assert!(me.check_shared().is_some());

        // An armed fault must fire inside the exclusive guarded region,
        // so both shared paths step aside while one is pending.
        me.arm_panic(OpKind::Check);
        assert!(me.check_shared().is_none(), "armed fault forces exclusive");
        assert!(me.stats_shared().is_none(), "armed fault forces exclusive");
        assert!(matches!(me.check(), Err(EngineFault::Panicked(_))));

        // Post-recovery the first check is degraded and must be counted
        // by the exclusive path, not silently served from a stale cache.
        assert!(me.check_shared().is_none(), "degraded check pending");
        me.check().expect("recovered");
        assert_eq!(me.robustness().degraded_checks, 1);
        assert!(me.check_shared().is_some(), "healthy again");
    }

    #[test]
    fn durable_engine_resumes_after_drop_without_checkpoint() {
        let dir = tmp_dir("resume");
        let (mut me, resumed) = ResilientEngine::with_store(
            &corpus(),
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("boots");
        assert!(!resumed);
        me.set_checkpoint_every(0); // force crash-style WAL-only recovery
        me.relearn().expect("learns");
        me.upsert("dev0", "vlan 999\nmtu 9000\n").expect("upserts");
        me.remove("dev5").expect("removes");
        let want_gens = {
            let e = me.engine.as_ref().expect("live");
            e.generations()
        };
        let want = me.check().expect("checks").report;
        drop(me); // simulated kill: no checkpoint since the edits

        let (mut back, resumed) = ResilientEngine::with_store(
            &[],
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("reboots");
        assert!(resumed);
        assert!(back.robustness().wal_replays >= 1);
        assert_eq!(back.engine.as_ref().expect("live").generations(), want_gens);
        let got = back.check().expect("checks").report;
        assert_eq!(got.violations, want.violations);
        assert_eq!(
            got.coverage.per_config.len(),
            want.coverage.per_config.len()
        );
    }

    #[test]
    fn sketches_survive_checkpoint_and_reboot() {
        let dir = tmp_dir("sketches");
        let (mut me, _) = ResilientEngine::with_store(
            &corpus(),
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("boots");
        me.relearn().expect("learns");
        me.checkpoint();
        let want_contracts = me
            .engine
            .as_ref()
            .expect("live")
            .contracts()
            .expect("learned")
            .to_json();
        drop(me); // simulated kill after the checkpoint

        let (mut back, resumed) = ResilientEngine::with_store(
            &[],
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("reboots");
        assert!(resumed);
        let ld = back.snapshot_stats().expect("stats").learn_delta;
        assert_eq!(ld.sketches, 6, "sketches restored from the snapshot");
        assert_eq!(ld.dirty, 0);

        // A relearn on the resumed engine reuses every persisted sketch
        // and reproduces the pre-crash contracts byte for byte.
        back.relearn().expect("relearns");
        let ld = back.snapshot_stats().expect("stats").learn_delta;
        assert_eq!(ld.mined_last_learn, 0);
        assert_eq!(ld.reused_last_learn, 6);
        assert_eq!(
            back.engine
                .as_ref()
                .expect("live")
                .contracts()
                .expect("learned")
                .to_json(),
            want_contracts
        );
    }

    #[test]
    fn kill_between_checkpoint_and_learn_replays_edits_over_stale_sketches() {
        let dir = tmp_dir("stale-sketches");
        let (mut me, _) = ResilientEngine::with_store(
            &corpus(),
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("boots");
        me.set_checkpoint_every(0);
        me.relearn().expect("learns");
        me.checkpoint();
        // Edits after the checkpoint live only in the WAL; the persisted
        // sketches for the edited configs are now stale.
        me.upsert("dev0", "vlan 999\nmtu 9000\n").expect("upserts");
        me.remove("dev5").expect("removes");
        me.relearn().expect("relearns");
        let want_contracts = me
            .engine
            .as_ref()
            .expect("live")
            .contracts()
            .expect("learned")
            .to_json();
        drop(me); // kill: sketches on disk predate the replayed edits

        let (back, resumed) = ResilientEngine::with_store(
            &[],
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("reboots");
        assert!(resumed);
        assert!(back.robustness().wal_replays >= 1);
        // The replayed Learn re-mined the edited configs over the
        // surviving sketches; the result matches the pre-kill learn.
        assert_eq!(
            back.engine
                .as_ref()
                .expect("live")
                .contracts()
                .expect("learned")
                .to_json(),
            want_contracts
        );
    }

    #[test]
    fn transient_storage_fault_is_absorbed_by_retries() {
        use crate::vfs::{FaultKind, FaultVfs};
        let dir = tmp_dir("retry");
        let fault = FaultVfs::new(0xA11);
        let (mut me, _) = ResilientEngine::with_store_vfs(
            &corpus(),
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
            Arc::new(fault.clone()),
        )
        .expect("boots");
        me.set_checkpoint_every(0);
        me.relearn().expect("learns");

        // One failing fsync on the next append: the retry loop must
        // absorb it and acknowledge the op.
        fault.fail_next_syncs(1, FaultKind::Eio);
        me.upsert("dev0", "vlan 999\n")
            .expect("retry absorbs fault");
        let storage = me.storage_stats();
        assert!(!storage.degraded);
        assert!(storage.retries >= 1, "{storage:?}");
        assert!(storage.faults_injected >= 1, "{storage:?}");
        assert_eq!(storage.degraded_transitions, 0);

        // The retried record must be replayable: reboot and compare.
        let want_gens = me.engine.as_ref().expect("live").generations();
        let want = me.check().expect("checks").report;
        drop(me);
        let (mut back, resumed) = ResilientEngine::with_store(
            &[],
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("reboots");
        assert!(resumed);
        assert!(back.robustness().wal_replays >= 1);
        assert_eq!(
            back.engine.as_ref().expect("live").generations(),
            want_gens,
            "the retried upsert survived the reboot"
        );
        let got = back.check().expect("checks").report;
        assert_eq!(got.violations, want.violations);
    }

    #[test]
    fn persistent_storage_failure_degrades_then_recovers() {
        use crate::vfs::{FaultKind, FaultVfs};
        let dir = tmp_dir("degrade");
        let fault = FaultVfs::new(0xDE6);
        let (mut me, _) = ResilientEngine::with_store_vfs(
            &corpus(),
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
            Arc::new(fault.clone()),
        )
        .expect("boots");
        me.set_checkpoint_every(0);
        me.relearn().expect("learns");
        me.check().expect("checks");

        // The disk goes persistently bad: the first write exhausts its
        // retries and flips the engine into degraded read-only mode.
        fault.fail_all_writes(Some(FaultKind::Eio));
        let err = me.upsert("dev0", "vlan 999\n").expect_err("disk is dead");
        assert!(matches!(err, EngineFault::StorageDegraded(_)), "{err:?}");
        assert!(me.degraded());
        let storage = me.storage_stats();
        assert_eq!(storage.degraded_transitions, 1);
        assert_eq!(storage.retries, STORAGE_RETRY_LIMIT as u64);

        // Degraded mode is genuinely read-only: rejected writes never
        // touch the in-memory snapshot...
        let err = me.upsert("brand-new", "vlan 1\n").expect_err("read-only");
        assert!(matches!(err, EngineFault::StorageDegraded(_)), "{err:?}");
        assert_eq!(
            me.config_generation("brand-new").expect("live"),
            None,
            "rejected write must not be applied"
        );
        // ...while reads keep serving from the resident snapshot.
        let got = me.check().expect("reads still work");
        let want = oracle_report(&me);
        assert_eq!(got.report.violations, want.report.violations);

        // Storage heals: the next write re-probes, recovers, and is
        // applied + durable again.
        fault.fail_all_writes(None);
        me.upsert("brand-new", "vlan 1\n").expect("recovered");
        assert!(!me.degraded());
        let storage = me.storage_stats();
        assert_eq!(storage.recoveries, 1);
        assert!(me.checkpoint(), "checkpoint works again");

        // The healed state (including the edit that triggered the
        // degrade, which the checkpoint persisted from the image) is
        // what a reboot sees.
        drop(me);
        let (mut back, resumed) = ResilientEngine::with_store(
            &[],
            &[],
            Lexer::standard(),
            EngineOptions::default(),
            &dir,
        )
        .expect("reboots");
        assert!(resumed);
        let got = back.check().expect("checks");
        let want = oracle_report(&back);
        assert_eq!(got.report.violations, want.report.violations);
        assert!(back
            .engine
            .as_ref()
            .expect("live")
            .config_generation("brand-new")
            .is_some());
    }

    #[test]
    fn stats_carry_robustness_counters() {
        let mut me =
            ResilientEngine::new(&corpus(), &[], Lexer::standard(), EngineOptions::default())
                .expect("builds");
        me.relearn().expect("learns");
        me.arm_panic(OpKind::Learn);
        assert!(me.relearn().is_err());
        me.add_serve_counters(3, 2);
        let stats = me.snapshot_stats().expect("stats");
        let rob = stats.robustness.expect("attached");
        assert_eq!(rob.panics_recovered, 1);
        assert_eq!(rob.requests_rejected, 3);
        assert_eq!(rob.deadlines_hit, 2);
    }
}
