//! Deterministic fault-injection support for the resilient engine.
//!
//! A [`FaultPlan`] is a seeded [`concord_rng::StdRng`] plus generators
//! for every fault class the hardening work defends against: torn WAL
//! tails, truncated snapshots, malformed / non-UTF-8 / oversized
//! requests, mid-session disconnects, and forced panics inside engine
//! operations. Everything is a pure function of the seed — no
//! wall-clock, no OS randomness — so a failing soak run replays
//! exactly from its seed.
//!
//! The module lives in the library (not `#[cfg(test)]`) because the
//! soak tests in `concord-bench` and the serve robustness tests in
//! `concord-cli` both drive it; it has no effect on production paths
//! unless explicitly invoked.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io;
use std::path::Path;

use concord_rng::{Rng, SeedableRng, StdRng};

use crate::store::SegRef;

/// The fault classes a soak run rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Truncate the live WAL mid-record (simulated crash during append).
    TornWal,
    /// Truncate the live checkpoint manifest mid-payload (simulated
    /// crash during checkpoint, or bit rot). Falls back to truncating a
    /// legacy `snapshot.json` when no manifest exists.
    TruncatedSnapshot,
    /// Truncate a segment file referenced only by the live manifest
    /// (bit rot inside one config's segment), forcing recovery through
    /// the backup manifest plus WAL replay.
    TornSegment,
    /// Arm a panic inside an upsert.
    PanicUpsert,
    /// Arm a panic inside a check.
    PanicCheck,
    /// Arm a panic inside a learn.
    PanicLearn,
    /// Send a malformed (possibly non-UTF-8) request line.
    MalformedRequest,
    /// Send a request line larger than the configured limit.
    OversizedRequest,
    /// Disconnect mid-request (e.g. between an UPSERT header and its
    /// body sentinel).
    Disconnect,
    /// Suppress a read replica's WAL polling for a few writes, forcing
    /// visible replication lag before the replica catches up.
    ReplicaLag,
    /// Crash one shard's leader (armed panic inside its next operation)
    /// so reads fail over to the shard's replica while the leader
    /// rebuilds.
    ShardCrash,
    /// Read from a deliberately lag-suppressed replica *without* the
    /// catch-up poll, exercising the stale-read reporting path.
    StaleReplicaRead,
}

/// All fault kinds, in rotation order.
pub const ALL_FAULTS: [FaultKind; 12] = [
    FaultKind::TornWal,
    FaultKind::TruncatedSnapshot,
    FaultKind::TornSegment,
    FaultKind::PanicUpsert,
    FaultKind::PanicCheck,
    FaultKind::PanicLearn,
    FaultKind::MalformedRequest,
    FaultKind::OversizedRequest,
    FaultKind::Disconnect,
    FaultKind::ReplicaLag,
    FaultKind::ShardCrash,
    FaultKind::StaleReplicaRead,
];

/// The fleet-only fault kinds, in rotation order — what a sharded soak
/// adds on top of [`ALL_FAULTS`]'s single-engine classes.
pub const FLEET_FAULTS: [FaultKind; 3] = [
    FaultKind::ReplicaLag,
    FaultKind::ShardCrash,
    FaultKind::StaleReplicaRead,
];

/// A seeded source of faults and hostile inputs.
pub struct FaultPlan {
    rng: StdRng,
}

impl FaultPlan {
    /// Builds a plan from a seed; two plans with the same seed produce
    /// the same fault sequence on any platform.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Picks the next fault to inject.
    pub fn pick(&mut self) -> FaultKind {
        ALL_FAULTS[self.rng.gen_range(0..ALL_FAULTS.len())]
    }

    /// Uniform integer in `[0, bound)` (for choosing targets).
    pub fn index(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound.max(1))
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A deterministic device name for edit traffic.
    pub fn device_name(&mut self, pool: usize) -> String {
        format!("dev{}", self.rng.gen_range(0..pool.max(1)))
    }

    /// A deterministic configuration text: mostly well-formed lines so
    /// the corpus keeps learnable structure, with occasional oddities.
    pub fn config_text(&mut self) -> String {
        let vlan = self.rng.gen_range(1..4000u32);
        let mtu = [1500u32, 9000, 1400][self.rng.gen_range(0..3usize)];
        let host = self.rng.gen_range(100..999u32);
        let mut text = format!("hostname DEV{host}\nvlan {vlan}\nmtu {mtu}\n");
        if self.rng.gen_bool(0.2) {
            text.push_str("interface Loopback0\n ip address 10.0.0.1\n");
        }
        text
    }

    /// A malformed request line: random bytes (newline-free, so it
    /// stays one protocol line), possibly invalid UTF-8.
    pub fn garbage_line(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.rng.gen_range(1..max_len.max(2));
        (0..len)
            .map(|_| {
                let b = self.rng.gen_range(0..=255u32) as u8;
                if b == b'\n' || b == b'\r' {
                    0xFF
                } else {
                    b
                }
            })
            .collect()
    }

    /// A request line guaranteed to exceed `limit` bytes.
    pub fn oversized_line(&mut self, limit: usize) -> Vec<u8> {
        let extra = self.rng.gen_range(1..1024usize);
        let mut line = Vec::with_capacity(limit + extra);
        line.extend_from_slice(b"UPSERT ");
        while line.len() < limit + extra {
            line.push(b'x');
        }
        line
    }

    /// Truncates the live WAL by a random non-zero byte count,
    /// simulating a crash mid-append. Returns `false` when there is no
    /// WAL (or it is empty) to tear.
    pub fn tear_wal(&mut self, state_dir: &Path) -> io::Result<bool> {
        self.truncate_file(&state_dir.join("wal.log"))
    }

    /// Truncates the live checkpoint manifest (or, for a directory
    /// that predates segmented checkpoints, the legacy monolithic
    /// snapshot) mid-payload, simulating a crash during checkpoint.
    /// Returns `false` when there is nothing to truncate.
    pub fn truncate_snapshot(&mut self, state_dir: &Path) -> io::Result<bool> {
        let manifest = state_dir.join("manifest.json");
        if manifest.exists() {
            return self.truncate_file(&manifest);
        }
        self.truncate_file(&state_dir.join("snapshot.json"))
    }

    /// Truncates the *newest* segment of a config that has more than
    /// one on-disk segment file — by construction a segment referenced
    /// by the live manifest only, never the `.bak` (backup refs are
    /// strictly older for a duplicated id). Tearing a shared segment
    /// would corrupt both fallback rungs at once, which no real crash
    /// can do: segments are written tmp + fsync + rename, so a kill
    /// mid-checkpoint only ever strands whole orphan files. Returns
    /// `false` when no config has a duplicated segment.
    pub fn tear_fresh_segment(&mut self, state_dir: &Path) -> io::Result<bool> {
        let seg_dir = state_dir.join("segments");
        let entries = match std::fs::read_dir(&seg_dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        let mut by_id: HashMap<u64, Vec<SegRef>> = HashMap::new();
        for entry in entries.flatten() {
            if let Some(seg) = SegRef::parse(&entry.file_name().to_string_lossy()) {
                by_id.entry(seg.id).or_default().push(seg);
            }
        }
        let mut candidates: Vec<SegRef> = by_id
            .values()
            .filter(|refs| refs.len() >= 2)
            .filter_map(|refs| refs.iter().max_by_key(|r| (r.generation, r.sketch)))
            .copied()
            .collect();
        if candidates.is_empty() {
            return Ok(false);
        }
        candidates.sort_by_key(|r| (r.id, r.generation, r.sketch));
        let pick = candidates[self.index(candidates.len())];
        self.truncate_file(&seg_dir.join(pick.file_name()))
    }

    fn truncate_file(&mut self, path: &Path) -> io::Result<bool> {
        let len = match std::fs::metadata(path) {
            Ok(meta) => meta.len(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        if len < 2 {
            return Ok(false);
        }
        let keep = self.rng.gen_range(1..len);
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(keep)?;
        file.sync_all()?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultPlan::new(42);
        let mut b = FaultPlan::new(42);
        for _ in 0..64 {
            assert_eq!(a.pick(), b.pick());
            assert_eq!(a.garbage_line(64), b.garbage_line(64));
            assert_eq!(a.config_text(), b.config_text());
        }
    }

    #[test]
    fn oversized_line_exceeds_limit() {
        let mut plan = FaultPlan::new(7);
        for _ in 0..16 {
            assert!(plan.oversized_line(4096).len() > 4096);
        }
    }

    #[test]
    fn garbage_lines_stay_single_line() {
        let mut plan = FaultPlan::new(9);
        for _ in 0..64 {
            let line = plan.garbage_line(128);
            assert!(!line.contains(&b'\n'));
            assert!(!line.contains(&b'\r'));
        }
    }

    #[test]
    fn tearing_a_missing_wal_is_a_no_op() {
        let dir = std::env::temp_dir().join(format!("concord-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut plan = FaultPlan::new(1);
        assert!(!plan.tear_wal(&dir).unwrap());
        assert!(!plan.truncate_snapshot(&dir).unwrap());
    }
}
