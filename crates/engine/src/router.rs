//! Consistent-hash routing of device names onto shards.
//!
//! [`ShardRouter`] places `vnodes_per_shard` virtual nodes per shard on
//! a 64-bit hash ring and routes each device name to the owner of the
//! first virtual node at or after the name's hash (wrapping). Two
//! properties matter for the fleet:
//!
//! * **Stability across processes.** The ring is a sorted `Vec` built
//!   from FNV-1a hashes of fixed strings — no `HashMap`, no
//!   `RandomState`, no per-process seed — so the same `(shards,
//!   vnodes)` pair routes every name identically in every process,
//!   forever. Routing decides which shard's state directory owns a
//!   device; a restart must reach the same answer.
//! * **Minimal movement.** Growing from N to N+1 shards only reassigns
//!   names whose ring successor became one of the new shard's virtual
//!   nodes — in expectation `1/(N+1)` of the keyspace — instead of the
//!   `N/(N+1)` a modulo scheme reshuffles.

/// Virtual nodes placed on the ring per shard. More nodes smooth the
/// distribution (stddev ~ `1/sqrt(vnodes)`) at the cost of a larger
/// ring; 64 keeps an 8-shard ring at 512 entries.
pub const VNODES_PER_SHARD: usize = 64;

/// FNV-1a, 64-bit: tiny, dependency-free, and fully specified — the
/// stability guarantee is the point, not hash quality at scale.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Ring placement hash: FNV-1a through a murmur3-style avalanche
/// finalizer. Raw FNV clusters on short, similar keys (`dev0`, `dev1`,
/// …; `…-vnode-0`, `…-vnode-1`, …) badly enough to skew shard shares
/// several-fold; the finalizer spreads single-bit input differences
/// across the whole word. Both stages are fixed constants — the
/// stability guarantee is unchanged.
fn placement(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A deterministic consistent-hash router over `shards` shards.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: usize,
    /// `(vnode hash, shard)`, sorted by hash. Ties (astronomically
    /// unlikely with 64-bit hashes) resolve to the lower shard index by
    /// the secondary sort key, deterministically.
    ring: Vec<(u64, u32)>,
}

impl ShardRouter {
    /// Builds the ring for `shards` shards (at least 1).
    pub fn new(shards: usize) -> ShardRouter {
        let shards = shards.max(1);
        let mut ring: Vec<(u64, u32)> = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let key = format!("concord-shard-{shard}-vnode-{vnode}");
                ring.push((placement(key.as_bytes()), shard as u32));
            }
        }
        ring.sort_unstable();
        ShardRouter { shards, ring }
    }

    /// Number of shards this router distributes over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `name`.
    pub fn route(&self, name: &str) -> usize {
        let hash = placement(name.as_bytes());
        let i = self.ring.partition_point(|&(h, _)| h < hash);
        let (_, shard) = self.ring[if i == self.ring.len() { 0 } else { i }];
        shard as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("dev{i}")).collect()
    }

    #[test]
    fn routing_is_identical_across_router_instances() {
        // Stability across process restarts reduces to: two independent
        // constructions route identically (no iteration-order or
        // per-process-seed dependence can exist, the ring is a sorted
        // Vec of fixed-string hashes).
        for shards in [1, 2, 4, 8] {
            let a = ShardRouter::new(shards);
            let b = ShardRouter::new(shards);
            for name in names(2000) {
                assert_eq!(a.route(&name), b.route(&name), "{name} @ {shards}");
            }
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Pinned reference values for the exact FNV-1a/64 spec; if these
        // move, every state directory's shard assignment moves.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn every_shard_owns_a_reasonable_share() {
        let shards = 8;
        let router = ShardRouter::new(shards);
        let mut counts = vec![0usize; shards];
        let n = 4000;
        for name in names(n) {
            counts[router.route(&name)] += 1;
        }
        let expected = n / shards;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > expected / 4 && count < expected * 4,
                "shard {shard} owns {count} of {n} (expected ~{expected})"
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_at_most_a_small_fraction() {
        // Consistent hashing's defining property: N -> N+1 shards moves
        // ~1/(N+1) of the names. Allow 3x slack over the expectation —
        // far below the ~N/(N+1) a modulo scheme would reshuffle.
        let n = 4000;
        for shards in [2usize, 4, 8] {
            let before = ShardRouter::new(shards);
            let after = ShardRouter::new(shards + 1);
            let moved = names(n)
                .iter()
                .filter(|name| before.route(name) != after.route(name))
                .count();
            let expected = n / (shards + 1);
            assert!(
                moved <= expected * 3,
                "{shards}->{} shards moved {moved} of {n} (expected ~{expected})",
                shards + 1
            );
            // Every moved name must land on the new shard: existing
            // shards never trade names with each other.
            for name in names(n) {
                if before.route(&name) != after.route(&name) {
                    assert_eq!(after.route(&name), shards, "{name}");
                }
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        for name in names(100) {
            assert_eq!(router.route(&name), 0);
        }
        assert_eq!(ShardRouter::new(0).shards(), 1, "0 clamps to 1");
    }
}
