//! Append-only write-ahead log of engine mutations.
//!
//! Each record is one line: an 8-hex-digit CRC-32 (IEEE) of the JSON
//! payload, a space, the payload, `\n`. The payload carries a
//! monotonically increasing sequence number and the operation:
//!
//! ```text
//! 9a7f0c12 {"seq": 42, "op": {"Upsert": {"name": "dev0", "text": "vlan 1\n"}}}
//! ```
//!
//! Appends are `fsync`'d before the server acknowledges the operation,
//! so an acknowledged op survives a crash. Replay is torn-tail
//! tolerant: a record that is truncated mid-line (no trailing newline),
//! fails its checksum, or does not parse marks the end of the log —
//! everything before it is applied, everything at and after it is
//! discarded. A discarded tail is always an *unacknowledged* op, so
//! dropping it cannot lose acknowledged state.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

use crate::vfs::{RealVfs, StorageError, Vfs, VfsFile};

/// One logged engine mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or replace a configuration.
    Upsert {
        /// Configuration name.
        name: String,
        /// Full configuration text.
        text: String,
    },
    /// Remove a configuration.
    Remove {
        /// Configuration name.
        name: String,
    },
    /// Relearn contracts from the current snapshot (deterministic given
    /// the dataset, so logging the op is enough to replay the result).
    Learn,
    /// Swap in an externally supplied contract set (exact JSON).
    SetContracts {
        /// The contract set's JSON serialization.
        json: String,
    },
}

/// A sequenced WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based; 0 means "nothing applied").
    pub seq: u64,
    /// The operation.
    pub op: WalOp,
}

impl ToJson for WalOp {
    fn to_json(&self) -> Json {
        match self {
            WalOp::Upsert { name, text } => Json::tagged(
                "Upsert",
                Json::Object(vec![
                    ("name".to_string(), name.to_json()),
                    ("text".to_string(), text.to_json()),
                ]),
            ),
            WalOp::Remove { name } => Json::tagged(
                "Remove",
                Json::Object(vec![("name".to_string(), name.to_json())]),
            ),
            WalOp::Learn => Json::Str("Learn".to_string()),
            WalOp::SetContracts { json } => Json::tagged(
                "SetContracts",
                Json::Object(vec![("json".to_string(), json.to_json())]),
            ),
        }
    }
}

impl FromJson for WalOp {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some("Learn") = value.as_str() {
            return Ok(WalOp::Learn);
        }
        let obj = value
            .as_object()
            .ok_or_else(|| JsonError::custom("wal op is not an object"))?;
        match obj {
            [(tag, body)] if tag == "Upsert" => Ok(WalOp::Upsert {
                name: req_str(body, "name")?,
                text: req_str(body, "text")?,
            }),
            [(tag, body)] if tag == "Remove" => Ok(WalOp::Remove {
                name: req_str(body, "name")?,
            }),
            [(tag, body)] if tag == "SetContracts" => Ok(WalOp::SetContracts {
                json: req_str(body, "json")?,
            }),
            _ => Err(JsonError::custom("unknown wal op tag")),
        }
    }
}

fn req_str(value: &Json, key: &str) -> Result<String, JsonError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| JsonError::custom(format!("wal op missing string field {key:?}")))
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// An open, append-only WAL file. All I/O goes through the [`Vfs`]
/// handle chosen at open time.
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    next_seq: u64,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path` for appending
    /// through the real filesystem. The first appended record gets
    /// sequence `next_seq`.
    pub fn open_append(path: &Path, next_seq: u64) -> Result<Wal, StorageError> {
        Wal::open_append_vfs(&RealVfs, path, next_seq)
    }

    /// Like [`Wal::open_append`] but through an explicit [`Vfs`].
    ///
    /// Any torn tail left by a crash mid-append is truncated first:
    /// appending *after* garbage would bury every new — acknowledged —
    /// record behind the bad line, where replay (which stops at the
    /// first undecodable record) could never see it. The discarded
    /// bytes are by construction an unacknowledged partial append, so
    /// truncation cannot lose durable state.
    pub fn open_append_vfs(vfs: &dyn Vfs, path: &Path, next_seq: u64) -> Result<Wal, StorageError> {
        match vfs.read(path) {
            Ok(bytes) => {
                let valid = valid_prefix_len(&bytes);
                if valid < bytes.len() as u64 {
                    let mut f = vfs.open_write(path).map_err(StorageError::from_io)?;
                    f.set_len(valid).map_err(StorageError::from_io)?;
                    f.sync_data().map_err(StorageError::from_io)?;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(StorageError::from_io(e)),
        }
        let file = vfs.open_append(path).map_err(StorageError::from_io)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq,
        })
    }

    /// The path this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record and syncs it to disk. Returns the record's
    /// sequence number; the op is durable once this returns `Ok`.
    ///
    /// On `Err` the sequence number is *not* consumed, so a retry of
    /// the same op reuses it. A failed attempt may leave a torn or
    /// duplicate line behind; replay's torn-tail truncation and
    /// sequence dedup absorb both, but a caller retrying after a
    /// mid-write failure should first repair the tail (see
    /// `StateDir::recover_wal`).
    pub fn append(&mut self, op: &WalOp) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let payload = Json::Object(vec![
            ("seq".to_string(), seq.to_json()),
            ("op".to_string(), op.to_json()),
        ])
        .render();
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        self.file
            .write_all(line.as_bytes())
            .map_err(StorageError::from_io)?;
        self.file.sync_data().map_err(StorageError::from_io)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Writes nothing but syncs the WAL handle — a cheap probe of
    /// whether the storage stack is accepting writes again. Used to
    /// re-probe out of degraded mode without consuming a sequence
    /// number or risking a torn record.
    pub fn probe(&mut self) -> Result<(), StorageError> {
        self.file
            .write_all(&[])
            .and_then(|()| self.file.sync_data())
            .map_err(StorageError::from_io)
    }

    /// Reads every intact record from the log at `path`, stopping at the
    /// first torn, corrupt, or unparseable line (see module docs).
    /// Returns the records plus whether a tail was discarded. A missing
    /// file is an empty log.
    pub fn read_records(path: &Path) -> io::Result<(Vec<WalRecord>, bool)> {
        Wal::read_records_vfs(&RealVfs, path)
    }

    /// Like [`Wal::read_records`] but through an explicit [`Vfs`].
    pub fn read_records_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<(Vec<WalRecord>, bool)> {
        let bytes = match vfs.read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut rest: &[u8] = &bytes;
        loop {
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                // No newline: either clean EOF or a torn final record.
                return Ok((records, !rest.is_empty()));
            };
            let line = &rest[..nl];
            rest = &rest[nl + 1..];
            match decode_line(line) {
                Some(record) => records.push(record),
                None => return Ok((records, true)),
            }
        }
    }
}

/// One poll of a leader's WAL by a follower: the intact records decoded
/// at and after the follower's byte offset, plus where the next poll
/// should resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailChunk {
    /// Intact records decoded from `offset` onward, in log order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the first byte *after* the last intact record —
    /// pass this to the next [`tail_records`] call. Unchanged when no
    /// complete record was available (a torn or in-flight tail never
    /// advances the cursor; the leader's next fsync completes it).
    pub new_offset: u64,
    /// The file is shorter than `offset` (or gone): the leader rotated
    /// the WAL at a checkpoint. The follower must resynchronize from the
    /// snapshot instead of tailing forward.
    pub rotated: bool,
}

/// Reads intact records from the log at `path` starting at byte
/// `offset` — the WAL-shipping primitive a read replica polls.
///
/// Unlike [`Wal::read_records`], a torn or partially written tail is
/// *not* a terminal condition here: the cursor simply stops before it,
/// and the next poll re-reads from the same offset once the leader's
/// append completes the line. A file shorter than `offset` (including a
/// missing file when `offset > 0`) reports `rotated` instead, because
/// the leader truncates its WAL only when checkpointing.
pub fn tail_records(path: &Path, offset: u64) -> io::Result<TailChunk> {
    tail_records_vfs(&RealVfs, path, offset)
}

/// Like [`tail_records`] but through an explicit [`Vfs`].
pub fn tail_records_vfs(vfs: &dyn Vfs, path: &Path, offset: u64) -> io::Result<TailChunk> {
    let bytes = match vfs.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(TailChunk {
                records: Vec::new(),
                new_offset: if offset > 0 { 0 } else { offset },
                rotated: offset > 0,
            });
        }
        Err(e) => return Err(e),
    };
    if (bytes.len() as u64) < offset {
        return Ok(TailChunk {
            records: Vec::new(),
            new_offset: 0,
            rotated: true,
        });
    }
    let mut records = Vec::new();
    let mut pos = offset as usize;
    while let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') {
        let Some(record) = decode_line(&bytes[pos..pos + nl]) else {
            break;
        };
        records.push(record);
        pos += nl + 1;
    }
    Ok(TailChunk {
        records,
        new_offset: pos as u64,
        rotated: false,
    })
}

/// Byte length of the longest prefix of `bytes` made of intact records
/// — the point [`Wal::read_records`] would stop at.
fn valid_prefix_len(bytes: &[u8]) -> u64 {
    let mut valid = 0usize;
    let mut rest = bytes;
    loop {
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            return valid as u64;
        };
        if decode_line(&rest[..nl]).is_none() {
            return valid as u64;
        }
        valid += nl + 1;
        rest = &rest[nl + 1..];
    }
}

/// Decodes one `crc payload` line; `None` on any mismatch.
fn decode_line(line: &[u8]) -> Option<WalRecord> {
    let line = std::str::from_utf8(line).ok()?;
    let (crc_hex, payload) = line.split_once(' ')?;
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(payload.as_bytes()) != want {
        return None;
    }
    let json = Json::parse(payload).ok()?;
    let seq = json.get("seq").and_then(Json::as_u64)?;
    let op = WalOp::from_json(json.get("op")?).ok()?;
    Some(WalRecord { seq, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concord-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        let ops = vec![
            WalOp::Upsert {
                name: "dev0".to_string(),
                text: "vlan 1\nmtu 1500\n".to_string(),
            },
            WalOp::Learn,
            WalOp::Remove {
                name: "dev0".to_string(),
            },
            WalOp::SetContracts {
                json: "{\"contracts\": []}".to_string(),
            },
        ];
        let mut wal = Wal::open_append(&path, 1).unwrap();
        for op in &ops {
            wal.append(op).unwrap();
        }
        assert_eq!(wal.next_seq(), 5);
        let (records, torn) = Wal::read_records(&path).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(&r.op, &ops[i]);
        }
    }

    #[test]
    fn torn_tail_is_discarded_but_prefix_survives() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        for i in 0..3 {
            wal.append(&WalOp::Upsert {
                name: format!("dev{i}"),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        }
        drop(wal);
        // Tear: chop the last 5 bytes off the file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (records, torn) = Wal::read_records(&path).unwrap();
        assert!(torn);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn open_append_truncates_torn_tail_before_appending() {
        let dir = tmp_dir("truncate");
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        for i in 0..3 {
            wal.append(&WalOp::Upsert {
                name: format!("dev{i}"),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        }
        drop(wal);
        // Tear: chop the last 5 bytes, leaving 2 intact records. A
        // restart then appends a new acknowledged op.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut wal = Wal::open_append(&path, 3).unwrap();
        wal.append(&WalOp::Learn).unwrap();
        drop(wal);
        // The new record must be visible to replay: the torn tail was
        // truncated, not appended after.
        let (records, torn) = Wal::read_records(&path).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].seq, 3);
        assert_eq!(records[2].op, WalOp::Learn);
    }

    #[test]
    fn corrupt_crc_stops_replay_at_that_record() {
        let dir = tmp_dir("crc");
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        for i in 0..3 {
            wal.append(&WalOp::Remove {
                name: format!("dev{i}"),
            })
            .unwrap();
        }
        drop(wal);
        // Flip one payload byte in the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let lines: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i)
            .collect();
        let mid = lines[0] + 12;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (records, torn) = Wal::read_records(&path).unwrap();
        assert!(torn);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let dir = tmp_dir("missing");
        let (records, torn) = Wal::read_records(&dir.join("nope.log")).unwrap();
        assert!(records.is_empty());
        assert!(!torn);
    }

    /// Tiny deterministic generator for the torn-tail fuzz loop.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    fn fuzz_op(rng: &mut Lcg, i: usize) -> WalOp {
        match rng.next() % 4 {
            0 => WalOp::Upsert {
                name: format!("dev{}", rng.next() % 16),
                text: format!(
                    "vlan {}\nmtu {}\n",
                    rng.next() % 4096,
                    1500 + rng.next() % 8
                ),
            },
            1 => WalOp::Remove {
                name: format!("dev{}", rng.next() % 16),
            },
            2 => WalOp::Learn,
            _ => WalOp::SetContracts {
                json: format!("{{\"contracts\": [], \"tag\": {i}}}"),
            },
        }
    }

    /// Property: truncating a valid log at *every* byte offset inside
    /// the final record always replays exactly the prefix records, and
    /// `open_append` recovers cleanly (truncates the tear, then appends
    /// a record that replay sees). Seeded so a failure reproduces.
    #[test]
    fn torn_tail_property_every_truncation_offset() {
        let seed = std::env::var("CONCORD_WAL_FUZZ_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_u64);
        let mut rng = Lcg(seed);
        let dir = tmp_dir("fuzz");
        for round in 0..4 {
            let n_records = 2 + (rng.next() % 4) as usize;
            let ops: Vec<WalOp> = (0..n_records).map(|i| fuzz_op(&mut rng, i)).collect();
            let pristine = dir.join(format!("pristine-{round}.log"));
            let mut wal = Wal::open_append(&pristine, 1).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            drop(wal);
            let bytes = std::fs::read(&pristine).unwrap();
            // Start of the final record = one past the second-to-last
            // newline (0 for a single-record log).
            let newlines: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i)
                .collect();
            assert_eq!(newlines.len(), n_records);
            let last_start = if n_records >= 2 {
                newlines[n_records - 2] + 1
            } else {
                0
            };
            let path = dir.join(format!("torn-{round}.log"));
            for cut in last_start..bytes.len() {
                std::fs::write(&path, &bytes[..cut]).unwrap();
                let (records, torn) = Wal::read_records(&path).unwrap();
                assert_eq!(
                    records.len(),
                    n_records - 1,
                    "seed {seed} round {round} cut {cut}: replay must yield the prefix"
                );
                for (i, r) in records.iter().enumerate() {
                    assert_eq!(r.seq, i as u64 + 1, "seed {seed} round {round} cut {cut}");
                    assert_eq!(r.op, ops[i], "seed {seed} round {round} cut {cut}");
                }
                assert_eq!(
                    torn,
                    cut > last_start,
                    "seed {seed} round {round} cut {cut}: a clean prefix is not torn"
                );
                // open_append must truncate the tear and take appends
                // that replay then sees.
                let mut wal = Wal::open_append(&path, n_records as u64).unwrap();
                wal.append(&WalOp::Learn).unwrap();
                drop(wal);
                let (records, torn) = Wal::read_records(&path).unwrap();
                assert!(!torn, "seed {seed} round {round} cut {cut}");
                assert_eq!(
                    records.len(),
                    n_records,
                    "seed {seed} round {round} cut {cut}"
                );
                assert_eq!(records[n_records - 1].op, WalOp::Learn);
            }
        }
    }

    #[test]
    fn tail_records_follows_appends_by_offset() {
        let dir = tmp_dir("tail");
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(&WalOp::Upsert {
            name: "dev0".to_string(),
            text: "vlan 1\n".to_string(),
        })
        .unwrap();
        let chunk = tail_records(&path, 0).unwrap();
        assert_eq!(chunk.records.len(), 1);
        assert!(!chunk.rotated);
        let mid = chunk.new_offset;
        // No new data: cursor holds.
        let chunk = tail_records(&path, mid).unwrap();
        assert!(chunk.records.is_empty());
        assert_eq!(chunk.new_offset, mid);
        // Two more appends arrive; the follower picks up exactly those.
        wal.append(&WalOp::Learn).unwrap();
        wal.append(&WalOp::Remove {
            name: "dev0".to_string(),
        })
        .unwrap();
        let chunk = tail_records(&path, mid).unwrap();
        assert_eq!(chunk.records.len(), 2);
        assert_eq!(chunk.records[0].seq, 2);
        assert_eq!(chunk.records[1].seq, 3);
    }

    #[test]
    fn tail_records_stops_before_torn_tail_without_advancing() {
        let dir = tmp_dir("tailtorn");
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(&WalOp::Learn).unwrap();
        wal.append(&WalOp::Learn).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let chunk = tail_records(&path, 0).unwrap();
        assert_eq!(chunk.records.len(), 1);
        assert!(!chunk.rotated);
        let held = chunk.new_offset;
        // The partial line never advances the cursor...
        let chunk = tail_records(&path, held).unwrap();
        assert!(chunk.records.is_empty());
        assert_eq!(chunk.new_offset, held);
        // ...and once the append completes (leader re-writes the line),
        // the follower resumes from the same offset.
        std::fs::write(&path, &bytes).unwrap();
        let chunk = tail_records(&path, held).unwrap();
        assert_eq!(chunk.records.len(), 1);
        assert_eq!(chunk.records[0].seq, 2);
    }

    #[test]
    fn tail_records_reports_rotation_when_file_shrinks_or_vanishes() {
        let dir = tmp_dir("tailrot");
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(&WalOp::Learn).unwrap();
        drop(wal);
        let end = std::fs::read(&path).unwrap().len() as u64;
        // Checkpoint rotation: the WAL restarts empty.
        std::fs::write(&path, b"").unwrap();
        let chunk = tail_records(&path, end).unwrap();
        assert!(chunk.rotated);
        // A vanished file with a nonzero cursor is also a rotation.
        std::fs::remove_file(&path).unwrap();
        let chunk = tail_records(&path, end).unwrap();
        assert!(chunk.rotated);
        // A fresh follower on a missing file is just an empty log.
        let chunk = tail_records(&path, 0).unwrap();
        assert!(!chunk.rotated);
        assert!(chunk.records.is_empty());
    }
}
