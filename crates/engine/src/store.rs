//! The crash-safe state directory: snapshot + WAL.
//!
//! Layout of `--state-dir`:
//!
//! ```text
//! snapshot.json       last checkpointed EngineImage (header + payload)
//! snapshot.json.bak   the checkpoint before that
//! wal.log             ops appended since the last checkpoint
//! wal.log.old         ops between the previous two checkpoints
//! snapshot.tmp        in-flight checkpoint (transient)
//! ```
//!
//! A checkpoint is atomic: write `snapshot.tmp`, fsync it, rename the
//! current snapshot to `.bak`, rename the tmp into place, fsync the
//! directory, then rotate the WAL (`wal.log` → `wal.log.old`). Because
//! the `.bak` snapshot plus *both* WAL files cover every acknowledged
//! op since the previous checkpoint, a crash at any point — including a
//! torn `snapshot.json` — recovers: load falls back to the backup and
//! replays the WALs, skipping records already folded into the image
//! (`seq <= applied_seq`).
//!
//! The snapshot file is a one-line header `concord-engine-snapshot/v1
//! crc32=XXXXXXXX` followed by the image JSON; the checksum covers the
//! payload, so a truncated or bit-flipped snapshot is detected rather
//! than trusted.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use concord_json::{FromJson, Json, ToJson};

use crate::image::EngineImage;
use crate::wal::{crc32, Wal, WalOp, WalRecord};

/// Magic header prefix of a snapshot file.
const SNAPSHOT_MAGIC: &str = "concord-engine-snapshot/v1";

/// Why a state-directory operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// Both the snapshot and its backup were unreadable or corrupt.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "state dir i/o: {e}"),
            StoreError::Corrupt(msg) => write!(f, "state dir corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What [`StateDir::open`] found on disk.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The last durable image (`None` for a fresh directory).
    pub image: Option<EngineImage>,
    /// Acknowledged ops to replay on top of the image, in sequence
    /// order (already filtered to `seq > image.applied_seq`).
    pub replay: Vec<WalRecord>,
    /// Whether a torn or corrupt WAL tail was discarded during load.
    pub wal_torn: bool,
    /// Whether `snapshot.json` was unusable and `.bak` was used.
    pub used_backup: bool,
}

/// An open state directory with its live WAL handle.
#[derive(Debug)]
pub struct StateDir {
    dir: PathBuf,
    wal: Wal,
}

impl StateDir {
    /// Opens (creating if needed) the state directory, loading whatever
    /// snapshot + WAL state survived. The returned [`StateDir`] has the
    /// WAL open for appending with the sequence continuing after the
    /// highest sequence seen on disk.
    pub fn open(dir: &Path) -> Result<(StateDir, LoadOutcome), StoreError> {
        fs::create_dir_all(dir)?;
        let snap_path = dir.join("snapshot.json");
        let bak_path = dir.join("snapshot.json.bak");

        let (image, used_backup) = match read_snapshot(&snap_path)? {
            Some(image) => (Some(image), false),
            None => match read_snapshot(&bak_path)? {
                Some(image) => {
                    // Drop the unreadable live snapshot so the next
                    // checkpoint cannot rotate it over the good backup.
                    if snap_path.exists() {
                        fs::remove_file(&snap_path)?;
                    }
                    (Some(image), true)
                }
                None => {
                    let existed = snap_path.exists() || bak_path.exists();
                    if existed {
                        return Err(StoreError::Corrupt(
                            "snapshot and backup both unreadable".to_string(),
                        ));
                    }
                    (None, false)
                }
            },
        };

        let applied_seq = image.as_ref().map(|i| i.applied_seq).unwrap_or(0);
        let (old_records, old_torn) = Wal::read_records(&dir.join("wal.log.old"))?;
        let (new_records, new_torn) = Wal::read_records(&dir.join("wal.log"))?;
        let mut replay: Vec<WalRecord> = old_records
            .into_iter()
            .chain(new_records)
            .filter(|r| r.seq > applied_seq)
            .collect();
        replay.sort_by_key(|r| r.seq);
        replay.dedup_by_key(|r| r.seq);

        let max_seq = replay.last().map(|r| r.seq).unwrap_or(applied_seq);
        let wal = Wal::open_append(&dir.join("wal.log"), max_seq + 1)?;
        Ok((
            StateDir {
                dir: dir.to_path_buf(),
                wal,
            },
            LoadOutcome {
                image,
                replay,
                wal_torn: old_torn || new_torn,
                used_backup,
            },
        ))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one op to the WAL (fsync'd). Returns its sequence.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, StoreError> {
        Ok(self.wal.append(op)?)
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Atomically checkpoints `image` (whose `applied_seq` must cover
    /// every op appended so far) and rotates the WAL.
    pub fn checkpoint(&mut self, image: &EngineImage) -> Result<(), StoreError> {
        let tmp_path = self.dir.join("snapshot.tmp");
        let snap_path = self.dir.join("snapshot.json");
        let bak_path = self.dir.join("snapshot.json.bak");

        let payload = image.to_json().render();
        let mut tmp = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(
            format!("{SNAPSHOT_MAGIC} crc32={:08x}\n", crc32(payload.as_bytes())).as_bytes(),
        )?;
        tmp.write_all(payload.as_bytes())?;
        tmp.write_all(b"\n")?;
        tmp.sync_all()?;
        drop(tmp);

        if snap_path.exists() {
            fs::rename(&snap_path, &bak_path)?;
        }
        fs::rename(&tmp_path, &snap_path)?;
        sync_dir(&self.dir)?;

        // Rotate the WAL: everything in the current log is folded into
        // the snapshot just written; keep it one generation as `.old`
        // so the `.bak` snapshot stays recoverable.
        let next_seq = self.wal.next_seq();
        let wal_path = self.dir.join("wal.log");
        let old_path = self.dir.join("wal.log.old");
        if old_path.exists() {
            fs::remove_file(&old_path)?;
        }
        if wal_path.exists() {
            fs::rename(&wal_path, &old_path)?;
        }
        self.wal = Wal::open_append(&wal_path, next_seq)?;
        sync_dir(&self.dir)?;
        Ok(())
    }
}

/// Reads and verifies a snapshot file; `Ok(None)` when missing *or*
/// corrupt (the caller falls back to the backup). `pub(crate)` so a
/// read replica can load a leader's snapshot without opening the state
/// directory for writing (opening would truncate the leader's WAL
/// tail).
pub(crate) fn read_snapshot(path: &Path) -> Result<Option<EngineImage>, StoreError> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            if f.read_to_string(&mut text).is_err() {
                return Ok(None);
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    }
    let Some((header, payload)) = text.split_once('\n') else {
        return Ok(None);
    };
    let payload = payload.strip_suffix('\n').unwrap_or(payload);
    let Some(crc_part) = header
        .strip_prefix(SNAPSHOT_MAGIC)
        .and_then(|rest| rest.trim().strip_prefix("crc32="))
    else {
        return Ok(None);
    };
    let Ok(want) = u32::from_str_radix(crc_part, 16) else {
        return Ok(None);
    };
    if crc32(payload.as_bytes()) != want {
        return Ok(None);
    }
    let Ok(json) = Json::parse(payload) else {
        return Ok(None);
    };
    Ok(EngineImage::from_json(&json).ok())
}

/// Fsyncs a directory so renames within it are durable (best-effort on
/// platforms where directories cannot be opened).
fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concord-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn image_with(configs: &[(&str, &str)], applied_seq: u64) -> EngineImage {
        let corpus: Vec<(String, String)> = configs
            .iter()
            .map(|(n, t)| (n.to_string(), t.to_string()))
            .collect();
        let mut image = EngineImage::from_corpus(&corpus, &[]);
        image.applied_seq = applied_seq;
        image
    }

    #[test]
    fn fresh_dir_loads_empty() {
        let dir = tmp_dir("fresh");
        let (state, load) = StateDir::open(&dir).unwrap();
        assert!(load.image.is_none());
        assert!(load.replay.is_empty());
        assert!(!load.wal_torn);
        assert_eq!(state.next_seq(), 1);
    }

    #[test]
    fn checkpoint_then_reopen_restores_image_and_skips_folded_ops() {
        let dir = tmp_dir("checkpoint");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let s1 = state
            .append(&WalOp::Upsert {
                name: "dev0".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        let image = image_with(&[("dev0", "vlan 1\n")], s1);
        state.checkpoint(&image).unwrap();
        let s2 = state
            .append(&WalOp::Remove {
                name: "dev0".to_string(),
            })
            .unwrap();
        assert_eq!(s2, s1 + 1);
        drop(state);

        let (state, load) = StateDir::open(&dir).unwrap();
        let got = load.image.expect("snapshot present");
        assert_eq!(got, image);
        assert_eq!(load.replay.len(), 1, "only the post-checkpoint op replays");
        assert_eq!(load.replay[0].seq, s2);
        assert!(!load.used_backup);
        assert_eq!(state.next_seq(), s2 + 1);
    }

    #[test]
    fn truncated_snapshot_falls_back_to_backup_plus_wals() {
        let dir = tmp_dir("truncated");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let s1 = state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        state
            .checkpoint(&image_with(&[("a", "vlan 1\n")], s1))
            .unwrap();
        let s2 = state
            .append(&WalOp::Upsert {
                name: "b".to_string(),
                text: "vlan 2\n".to_string(),
            })
            .unwrap();
        state
            .checkpoint(&image_with(&[("a", "vlan 1\n"), ("b", "vlan 2\n")], s2))
            .unwrap();
        let s3 = state
            .append(&WalOp::Upsert {
                name: "c".to_string(),
                text: "vlan 3\n".to_string(),
            })
            .unwrap();
        drop(state);

        // Truncate the live snapshot mid-payload.
        let snap = dir.join("snapshot.json");
        let bytes = std::fs::read(&snap).unwrap();
        std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();

        let (_, load) = StateDir::open(&dir).unwrap();
        assert!(load.used_backup);
        let image = load.image.expect("backup usable");
        assert_eq!(image.applied_seq, s1);
        // Replay covers everything after the backup's checkpoint: the
        // op folded only into the (lost) newer snapshot, plus the tail.
        let seqs: Vec<u64> = load.replay.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![s2, s3]);
    }

    #[test]
    fn stale_wal_records_older_than_the_checkpoint_are_skipped_not_double_applied() {
        let dir = tmp_dir("stale");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let _s1 = state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        let s2 = state
            .append(&WalOp::Upsert {
                name: "b".to_string(),
                text: "vlan 2\n".to_string(),
            })
            .unwrap();
        let image = image_with(&[("a", "vlan 1\n"), ("b", "vlan 2\n")], s2);
        state.checkpoint(&image).unwrap();
        drop(state);

        // Simulate a crash that left rotated-but-not-truncated state:
        // the records already folded into the snapshot reappear in the
        // live WAL (and still sit in `wal.log.old`). Replay must skip
        // every one of them — `seq <= applied_seq` — not apply them a
        // second time on top of the image.
        std::fs::copy(dir.join("wal.log.old"), dir.join("wal.log")).unwrap();
        let (state, load) = StateDir::open(&dir).unwrap();
        let got = load.image.expect("snapshot present");
        assert_eq!(got, image);
        assert!(
            load.replay.is_empty(),
            "folded ops must not double-apply: {:?}",
            load.replay
        );
        assert_eq!(
            state.next_seq(),
            s2 + 1,
            "sequence continues after the tail"
        );
    }

    #[test]
    fn missing_everything_but_wal_is_corrupt_free_fresh_start() {
        let dir = tmp_dir("walonly");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        drop(state);
        let (_, load) = StateDir::open(&dir).unwrap();
        assert!(load.image.is_none());
        assert_eq!(load.replay.len(), 1, "ops before any checkpoint replay");
    }
}
