//! The crash-safe state directory: segmented snapshot + WAL.
//!
//! Layout of `--state-dir`:
//!
//! ```text
//! manifest.json          checkpoint manifest: segment refs + shared state
//! manifest.json.bak      the manifest before that
//! segments/              one immutable file per configuration
//!   cfg-<id>-<gen>-<s>.seg
//! wal.log                ops appended since the last checkpoint
//! wal.log.old            ops between the previous two checkpoints
//! manifest.tmp           in-flight manifest (transient)
//! segments/*.tmp         in-flight segments (transient)
//! ```
//!
//! A checkpoint is **incremental**: each configuration serializes into
//! its own segment file whose name encodes `(id, generation,
//! has-sketch)`. Because a segment's content at a fixed name is
//! immutable — an edit bumps the generation, and at a fixed generation
//! a learn sketch is captured at most once (`None` → `Some`, never
//! rewritten) — a segment that already exists under the right name is
//! simply *skipped*. Checkpoint cost is O(dirtied configs), not
//! O(fleet).
//!
//! The write order makes the whole ladder atomic: write dirty segments
//! (tmp + fsync + rename), fsync `segments/`, write `manifest.tmp`,
//! fsync it, rotate `manifest.json` → `.bak`, rename the tmp into
//! place, fsync the directory, then rotate the WAL. A crash at any
//! point leaves either the old manifest (orphan new segments are
//! garbage-collected later) or the new one (fully referenced). Because
//! the `.bak` manifest plus *both* WAL files cover every acknowledged
//! op since the previous checkpoint, a torn `manifest.json` recovers:
//! load falls back to the backup and replays the WALs, skipping
//! records already folded into the image (`seq <= applied_seq`).
//! Segments referenced by the `.bak` manifest are retained by the
//! garbage collector, so the fallback always finds its files.
//!
//! Manifest and segment files carry a one-line header
//! (`concord-engine-manifest/v1 crc32=XXXXXXXX` /
//! `concord-engine-segment/v1 crc32=XXXXXXXX`) followed by the JSON
//! payload; the checksum covers the payload, so truncated or
//! bit-flipped files are detected rather than trusted.
//!
//! Directories written by older builds hold a monolithic
//! `snapshot.json` (+ `.bak`). Those still load — lowest rungs of the
//! fallback ladder — and are deleted after the first successful
//! segmented checkpoint.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use concord_json::{FromJson, Json, ToJson};

use crate::image::{EngineImage, ImageConfig};
use crate::vfs::{RealVfs, StorageError, Vfs};
use crate::wal::{crc32, Wal, WalOp, WalRecord};

/// Magic header prefix of a checkpoint manifest.
const MANIFEST_MAGIC: &str = "concord-engine-manifest/v1";
/// Magic header prefix of a per-config segment file.
const SEGMENT_MAGIC: &str = "concord-engine-segment/v1";
/// Magic header prefix of a legacy monolithic snapshot (read-only).
const SNAPSHOT_MAGIC: &str = "concord-engine-snapshot/v1";

/// Why a state-directory operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// Every snapshot rung (manifest, its backup, legacy snapshot,
    /// legacy backup) was unreadable or corrupt.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "state dir i/o: {e}"),
            StoreError::Corrupt(msg) => write!(f, "state dir corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<StorageError> for StoreError {
    fn from(e: StorageError) -> StoreError {
        match e {
            StorageError::Corrupt(msg) => StoreError::Corrupt(msg),
            other => StoreError::Io(io::Error::other(other.to_string())),
        }
    }
}

/// What one [`StateDir::checkpoint`] call actually wrote: the
/// incremental-checkpoint scorecard. `segments_skipped` counts configs
/// whose on-disk segment already matched `(id, generation, sketch)` and
/// were not re-serialized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Segment files serialized and fsync'd by this checkpoint.
    pub segments_written: u64,
    /// Clean configs whose existing segment was reused as-is.
    pub segments_skipped: u64,
}

/// A reference to one immutable segment file: the per-config identity a
/// manifest pins and a file name encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SegRef {
    pub id: u64,
    pub generation: u64,
    /// Whether the segment carries a captured learn sketch. Part of the
    /// identity because a sketch lands *after* the text at the same
    /// generation: `(id, gen, false)` and `(id, gen, true)` are distinct
    /// immutable files.
    pub sketch: bool,
}

impl SegRef {
    fn of(config: &ImageConfig) -> SegRef {
        SegRef {
            id: config.id,
            generation: config.generation,
            sketch: config.sketch.is_some(),
        }
    }

    pub(crate) fn file_name(&self) -> String {
        format!(
            "cfg-{:016x}-{:016x}-{}.seg",
            self.id,
            self.generation,
            u8::from(self.sketch)
        )
    }

    /// Parses a `cfg-<id>-<gen>-<0|1>.seg` file name; `None` for
    /// anything else (tmp files, foreign droppings).
    pub(crate) fn parse(name: &str) -> Option<SegRef> {
        let rest = name.strip_prefix("cfg-")?.strip_suffix(".seg")?;
        let mut parts = rest.split('-');
        let id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let generation = u64::from_str_radix(parts.next()?, 16).ok()?;
        let sketch = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(SegRef {
            id,
            generation,
            sketch,
        })
    }
}

/// Which rung of the fallback ladder produced a loaded image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoadSource {
    Manifest,
    ManifestBak,
    LegacySnapshot,
    LegacySnapshotBak,
}

/// A successfully loaded image plus where it came from.
#[derive(Debug)]
pub(crate) struct ImageLoad {
    pub image: EngineImage,
    /// Segment refs the loaded manifest pins (empty for legacy rungs).
    pub refs: Vec<SegRef>,
    pub source: LoadSource,
}

impl ImageLoad {
    /// Whether the live file was unusable and a `.bak` answered.
    pub fn used_backup(&self) -> bool {
        matches!(
            self.source,
            LoadSource::ManifestBak | LoadSource::LegacySnapshotBak
        )
    }
}

/// What [`StateDir::open`] found on disk.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The last durable image (`None` for a fresh directory).
    pub image: Option<EngineImage>,
    /// Acknowledged ops to replay on top of the image, in sequence
    /// order (already filtered to `seq > image.applied_seq`).
    pub replay: Vec<WalRecord>,
    /// Whether a torn or corrupt WAL tail was discarded during load.
    pub wal_torn: bool,
    /// Whether the live manifest/snapshot was unusable and a `.bak`
    /// was used.
    pub used_backup: bool,
}

/// An open state directory with its live WAL handle.
#[derive(Debug)]
pub struct StateDir {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    wal: Wal,
    /// Segments known to exist on disk with the right content, keyed by
    /// config id → `(generation, has-sketch)`. The incremental skip
    /// map: a config whose identity matches is not re-serialized.
    written: HashMap<u64, (u64, bool)>,
    /// Refs of the manifest that will survive as `.bak` after the next
    /// checkpoint — the garbage collector must keep their files so the
    /// backup stays loadable.
    prev_refs: Vec<SegRef>,
    /// Segment-GC / WAL-rotation removals that failed. Previously
    /// dropped with `let _ =`; now counted (surfaced in the v10
    /// `storage` stats object) and logged once.
    gc_remove_errors: u64,
    gc_error_logged: bool,
}

impl StateDir {
    /// Opens (creating if needed) the state directory through the real
    /// filesystem. See [`StateDir::open_vfs`].
    pub fn open(dir: &Path) -> Result<(StateDir, LoadOutcome), StoreError> {
        StateDir::open_vfs(dir, Arc::new(RealVfs))
    }

    /// Opens (creating if needed) the state directory, loading whatever
    /// snapshot + WAL state survived. The returned [`StateDir`] has the
    /// WAL open for appending with the sequence continuing after the
    /// highest sequence seen on disk. All I/O — now and for the life of
    /// the store — goes through `vfs`.
    pub fn open_vfs(dir: &Path, vfs: Arc<dyn Vfs>) -> Result<(StateDir, LoadOutcome), StoreError> {
        vfs.create_dir_all(dir)?;
        let load = load_image(vfs.as_ref(), dir)?;
        let (image, used_backup, written, prev_refs) = match load {
            Some(load) => {
                // Drop an unreadable live file so the next checkpoint's
                // rotation cannot clobber the good backup with garbage.
                match load.source {
                    LoadSource::ManifestBak => {
                        remove_if_exists(vfs.as_ref(), &dir.join("manifest.json"))?
                    }
                    LoadSource::LegacySnapshotBak => {
                        remove_if_exists(vfs.as_ref(), &dir.join("snapshot.json"))?
                    }
                    LoadSource::Manifest | LoadSource::LegacySnapshot => {}
                }
                let written: HashMap<u64, (u64, bool)> = load
                    .refs
                    .iter()
                    .map(|r| (r.id, (r.generation, r.sketch)))
                    .collect();
                let used_backup = load.used_backup();
                (Some(load.image), used_backup, written, load.refs)
            }
            None => {
                let existed = ["manifest.json", "manifest.json.bak", "snapshot.json"]
                    .iter()
                    .any(|f| vfs.exists(&dir.join(f)))
                    || vfs.exists(&dir.join("snapshot.json.bak"));
                if existed {
                    return Err(StoreError::Corrupt(
                        "snapshot, manifest, and backups all unreadable".to_string(),
                    ));
                }
                (None, false, HashMap::new(), Vec::new())
            }
        };

        let applied_seq = image.as_ref().map(|i| i.applied_seq).unwrap_or(0);
        let (old_records, old_torn) =
            Wal::read_records_vfs(vfs.as_ref(), &dir.join("wal.log.old"))?;
        let (new_records, new_torn) = Wal::read_records_vfs(vfs.as_ref(), &dir.join("wal.log"))?;
        let mut replay: Vec<WalRecord> = old_records
            .into_iter()
            .chain(new_records)
            .filter(|r| r.seq > applied_seq)
            .collect();
        replay.sort_by_key(|r| r.seq);
        replay.dedup_by_key(|r| r.seq);

        let max_seq = replay.last().map(|r| r.seq).unwrap_or(applied_seq);
        let wal = Wal::open_append_vfs(vfs.as_ref(), &dir.join("wal.log"), max_seq + 1)?;
        Ok((
            StateDir {
                dir: dir.to_path_buf(),
                vfs,
                wal,
                written,
                prev_refs,
                gc_remove_errors: 0,
                gc_error_logged: false,
            },
            LoadOutcome {
                image,
                replay,
                wal_torn: old_torn || new_torn,
                used_backup,
            },
        ))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one op to the WAL (fsync'd). Returns its sequence.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, StorageError> {
        self.wal.append(op)
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Probes whether the storage stack accepts writes again (an empty
    /// write + fsync on the live WAL handle). Used to re-probe out of
    /// degraded mode without consuming a sequence number.
    pub fn probe(&mut self) -> Result<(), StorageError> {
        self.wal.probe()
    }

    /// Re-opens the live WAL after a failed append, truncating any torn
    /// line the failure left behind. A retry that appended after a torn
    /// partial line would bury its (acknowledged) record behind garbage
    /// where replay could never see it — so retries must repair first.
    pub fn recover_wal(&mut self) -> Result<(), StorageError> {
        let next_seq = self.wal.next_seq();
        self.wal = Wal::open_append_vfs(self.vfs.as_ref(), &self.dir.join("wal.log"), next_seq)?;
        Ok(())
    }

    /// Faults the VFS injected so far (0 on a passthrough [`RealVfs`]).
    pub fn injected_faults(&self) -> u64 {
        self.vfs.injected_faults()
    }

    /// Segment-GC / WAL-rotation removals that failed so far.
    pub fn gc_remove_errors(&self) -> u64 {
        self.gc_remove_errors
    }

    /// Counts (and logs, once per store) a failed best-effort removal.
    fn note_remove_error(&mut self, path: &Path, err: &io::Error) {
        self.gc_remove_errors += 1;
        if !self.gc_error_logged {
            self.gc_error_logged = true;
            eprintln!(
                "concord: state-dir cleanup failed (counted, further errors suppressed): {}: {err}",
                path.display()
            );
        }
    }

    /// Atomically checkpoints `image` (whose `applied_seq` must cover
    /// every op appended so far) and rotates the WAL. Only segments for
    /// configs dirtied since the last checkpoint are re-serialized.
    pub fn checkpoint(&mut self, image: &EngineImage) -> Result<CheckpointStats, StorageError> {
        let vfs = self.vfs.clone();
        let seg_dir = self.dir.join("segments");
        vfs.create_dir_all(&seg_dir)
            .map_err(StorageError::from_io)?;

        // 1. Segments: write every config whose (id, generation,
        //    sketch) identity is not already durable, skip the rest.
        let mut stats = CheckpointStats::default();
        let mut refs: Vec<SegRef> = Vec::with_capacity(image.configs.len());
        for config in &image.configs {
            let sref = SegRef::of(config);
            let seg_path = seg_dir.join(sref.file_name());
            let clean = self.written.get(&config.id) == Some(&(sref.generation, sref.sketch))
                && vfs.exists(&seg_path);
            if clean {
                stats.segments_skipped += 1;
            } else {
                write_verified(
                    vfs.as_ref(),
                    &seg_path,
                    SEGMENT_MAGIC,
                    &config.to_json().render(),
                )?;
                self.written
                    .insert(config.id, (sref.generation, sref.sketch));
                stats.segments_written += 1;
            }
            refs.push(sref);
        }
        if stats.segments_written > 0 {
            vfs.sync_dir(&seg_dir).map_err(StorageError::from_io)?;
        }

        // 2. Manifest: refs + all the non-per-config image state. The
        //    rename ladder is what makes the checkpoint atomic — until
        //    the new manifest lands, the old one still pins the old
        //    (immutable, still-present) segments.
        let payload = manifest_json(image, &refs).render();
        let tmp_path = self.dir.join("manifest.tmp");
        let manifest_path = self.dir.join("manifest.json");
        let bak_path = self.dir.join("manifest.json.bak");
        write_verified(vfs.as_ref(), &tmp_path, MANIFEST_MAGIC, &payload)?;
        if vfs.exists(&manifest_path) {
            vfs.rename(&manifest_path, &bak_path)
                .map_err(StorageError::from_io)?;
        }
        vfs.rename(&tmp_path, &manifest_path)
            .map_err(StorageError::from_io)?;
        vfs.sync_dir(&self.dir).map_err(StorageError::from_io)?;

        // A pre-segmentation snapshot pair is superseded the moment one
        // segmented checkpoint lands; remove it so the fallback ladder
        // can never resurrect the older state.
        remove_if_exists(vfs.as_ref(), &self.dir.join("snapshot.json"))
            .map_err(StorageError::from_io)?;
        remove_if_exists(vfs.as_ref(), &self.dir.join("snapshot.json.bak"))
            .map_err(StorageError::from_io)?;

        // 3. Rotate the WAL: everything in the current log is folded
        //    into the manifest just written; keep it one generation as
        //    `.old` so the `.bak` manifest stays recoverable. A failed
        //    removal of the doomed `.old` is counted, not fatal — the
        //    rename below overwrites it anyway.
        let next_seq = self.wal.next_seq();
        let wal_path = self.dir.join("wal.log");
        let old_path = self.dir.join("wal.log.old");
        if vfs.exists(&old_path) {
            if let Err(e) = vfs.remove_file(&old_path) {
                self.note_remove_error(&old_path, &e);
            }
        }
        if vfs.exists(&wal_path) {
            vfs.rename(&wal_path, &old_path)
                .map_err(StorageError::from_io)?;
        }
        self.wal = Wal::open_append_vfs(vfs.as_ref(), &wal_path, next_seq)?;
        vfs.sync_dir(&self.dir).map_err(StorageError::from_io)?;

        // 4. Garbage-collect segments referenced by neither the new
        //    manifest nor the one now at `.bak` (plus any stray tmp
        //    files from interrupted checkpoints). Best-effort: a
        //    leftover file costs disk, never correctness — but failures
        //    are counted and logged once, not dropped on the floor.
        let retain: std::collections::HashSet<String> = refs
            .iter()
            .chain(self.prev_refs.iter())
            .map(SegRef::file_name)
            .collect();
        if let Ok(names) = vfs.read_dir(&seg_dir) {
            for name in names {
                if !retain.contains(&name) {
                    let path = seg_dir.join(&name);
                    if let Err(e) = vfs.remove_file(&path) {
                        self.note_remove_error(&path, &e);
                    }
                }
            }
        }
        self.prev_refs = refs;
        Ok(stats)
    }
}

/// Loads the best available image from `dir`, walking the fallback
/// ladder: segmented manifest → its backup → legacy monolithic snapshot
/// → its backup. `Ok(None)` means nothing was loadable (missing *or*
/// corrupt at every rung — the caller decides whether that is a fresh
/// start or a [`StoreError::Corrupt`]). `pub(crate)` so a read replica
/// can load a leader's state without opening the directory for writing
/// (opening would truncate the leader's WAL tail).
pub(crate) fn load_image(vfs: &dyn Vfs, dir: &Path) -> Result<Option<ImageLoad>, StoreError> {
    if let Some((image, refs)) = read_manifest(vfs, &dir.join("manifest.json"), dir)? {
        return Ok(Some(ImageLoad {
            image,
            refs,
            source: LoadSource::Manifest,
        }));
    }
    if let Some((image, refs)) = read_manifest(vfs, &dir.join("manifest.json.bak"), dir)? {
        return Ok(Some(ImageLoad {
            image,
            refs,
            source: LoadSource::ManifestBak,
        }));
    }
    if let Some(image) = read_snapshot(vfs, &dir.join("snapshot.json"))? {
        return Ok(Some(ImageLoad {
            image,
            refs: Vec::new(),
            source: LoadSource::LegacySnapshot,
        }));
    }
    if let Some(image) = read_snapshot(vfs, &dir.join("snapshot.json.bak"))? {
        return Ok(Some(ImageLoad {
            image,
            refs: Vec::new(),
            source: LoadSource::LegacySnapshotBak,
        }));
    }
    Ok(None)
}

/// Serializes the manifest payload: segment refs in config order plus
/// everything in the image that is not per-config.
fn manifest_json(image: &EngineImage, refs: &[SegRef]) -> Json {
    Json::Object(vec![
        (
            "configs".to_string(),
            Json::Array(
                refs.iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("id".to_string(), r.id.to_json()),
                            ("generation".to_string(), r.generation.to_json()),
                            ("sketch".to_string(), Json::Bool(r.sketch)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "metadata".to_string(),
            Json::Array(
                image
                    .metadata
                    .iter()
                    .map(|(n, t)| Json::Array(vec![n.to_json(), t.to_json()]))
                    .collect(),
            ),
        ),
        (
            "contracts".to_string(),
            match &image.contracts {
                Some(json) => Json::Str(json.clone()),
                None => Json::Null,
            },
        ),
        ("counters".to_string(), image.counters.to_json()),
        ("applied_seq".to_string(), image.applied_seq.to_json()),
    ])
}

/// Reads and verifies a manifest plus every segment it references;
/// `Ok(None)` when the manifest is missing, corrupt, or any referenced
/// segment is missing/corrupt/mismatched (the caller falls down the
/// ladder).
fn read_manifest(
    vfs: &dyn Vfs,
    path: &Path,
    dir: &Path,
) -> Result<Option<(EngineImage, Vec<SegRef>)>, StoreError> {
    let Some(payload) = read_verified(vfs, path, MANIFEST_MAGIC)? else {
        return Ok(None);
    };
    let Ok(json) = Json::parse(&payload) else {
        return Ok(None);
    };
    let Some(entries) = json.get("configs").and_then(Json::as_array) else {
        return Ok(None);
    };
    let mut refs: Vec<SegRef> = Vec::with_capacity(entries.len());
    for entry in entries {
        let (Some(id), Some(generation), Some(sketch)) = (
            entry.get("id").and_then(Json::as_u64),
            entry.get("generation").and_then(Json::as_u64),
            entry.get("sketch").and_then(Json::as_bool),
        ) else {
            return Ok(None);
        };
        refs.push(SegRef {
            id,
            generation,
            sketch,
        });
    }

    // Decode the shared (non-per-config) state by reusing the image
    // decoder on the manifest with an emptied configs array.
    let Json::Object(pairs) = &json else {
        return Ok(None);
    };
    let mut shared: Vec<(String, Json)> = pairs
        .iter()
        .filter(|(k, _)| k != "configs")
        .cloned()
        .collect();
    shared.push(("configs".to_string(), Json::Array(Vec::new())));
    let Ok(mut image) = EngineImage::from_json(&Json::Object(shared)) else {
        return Ok(None);
    };

    // Assemble configs from their segments, verifying each against the
    // identity the manifest pins.
    let seg_dir = dir.join("segments");
    let mut configs: Vec<ImageConfig> = Vec::with_capacity(refs.len());
    for sref in &refs {
        let Some(payload) = read_verified(vfs, &seg_dir.join(sref.file_name()), SEGMENT_MAGIC)?
        else {
            return Ok(None);
        };
        let Ok(json) = Json::parse(&payload) else {
            return Ok(None);
        };
        let Ok(config) = ImageConfig::from_json(&json) else {
            return Ok(None);
        };
        if config.id != sref.id
            || config.generation != sref.generation
            || config.sketch.is_some() != sref.sketch
        {
            return Ok(None);
        }
        configs.push(config);
    }
    image.configs = configs;
    Ok(Some((image, refs)))
}

/// Writes `payload` to `path` atomically-ish for segment/tmp use: a
/// crc-headed file written via a sibling `.tmp`, fsync'd, renamed into
/// place. (The *manifest* rename ladder on top of this is what makes a
/// whole checkpoint atomic.)
fn write_verified(
    vfs: &dyn Vfs,
    path: &Path,
    magic: &str,
    payload: &str,
) -> Result<(), StorageError> {
    let tmp_path = path.with_extension("tmp");
    let mut tmp = vfs
        .create_truncate(&tmp_path)
        .map_err(StorageError::from_io)?;
    tmp.write_all(format!("{magic} crc32={:08x}\n", crc32(payload.as_bytes())).as_bytes())
        .map_err(StorageError::from_io)?;
    tmp.write_all(payload.as_bytes())
        .map_err(StorageError::from_io)?;
    tmp.write_all(b"\n").map_err(StorageError::from_io)?;
    tmp.sync_all().map_err(StorageError::from_io)?;
    drop(tmp);
    vfs.rename(&tmp_path, path).map_err(StorageError::from_io)?;
    Ok(())
}

/// Reads a crc-headed file; `Ok(None)` when missing or corrupt.
fn read_verified(vfs: &dyn Vfs, path: &Path, magic: &str) -> Result<Option<String>, StoreError> {
    let text = match vfs.read(path) {
        Ok(bytes) => match String::from_utf8(bytes) {
            Ok(text) => text,
            Err(_) => return Ok(None),
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let Some((header, payload)) = text.split_once('\n') else {
        return Ok(None);
    };
    let payload = payload.strip_suffix('\n').unwrap_or(payload);
    let Some(crc_part) = header
        .strip_prefix(magic)
        .and_then(|rest| rest.trim().strip_prefix("crc32="))
    else {
        return Ok(None);
    };
    let Ok(want) = u32::from_str_radix(crc_part, 16) else {
        return Ok(None);
    };
    if crc32(payload.as_bytes()) != want {
        return Ok(None);
    }
    Ok(Some(payload.to_string()))
}

/// Reads and verifies a legacy monolithic snapshot file; `Ok(None)`
/// when missing *or* corrupt (the caller falls down the ladder).
fn read_snapshot(vfs: &dyn Vfs, path: &Path) -> Result<Option<EngineImage>, StoreError> {
    let Some(payload) = read_verified(vfs, path, SNAPSHOT_MAGIC)? else {
        return Ok(None);
    };
    let Ok(json) = Json::parse(&payload) else {
        return Ok(None);
    };
    Ok(EngineImage::from_json(&json).ok())
}

fn remove_if_exists(vfs: &dyn Vfs, path: &Path) -> io::Result<()> {
    match vfs.remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concord-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn image_with(configs: &[(&str, &str)], applied_seq: u64) -> EngineImage {
        let corpus: Vec<(String, String)> = configs
            .iter()
            .map(|(n, t)| (n.to_string(), t.to_string()))
            .collect();
        let mut image = EngineImage::from_corpus(&corpus, &[]);
        image.applied_seq = applied_seq;
        image
    }

    fn segment_files(dir: &Path) -> Vec<String> {
        let mut out: Vec<String> = std::fs::read_dir(dir.join("segments"))
            .map(|entries| {
                entries
                    .flatten()
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }

    #[test]
    fn fresh_dir_loads_empty() {
        let dir = tmp_dir("fresh");
        let (state, load) = StateDir::open(&dir).unwrap();
        assert!(load.image.is_none());
        assert!(load.replay.is_empty());
        assert!(!load.wal_torn);
        assert_eq!(state.next_seq(), 1);
    }

    #[test]
    fn checkpoint_then_reopen_restores_image_and_skips_folded_ops() {
        let dir = tmp_dir("checkpoint");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let s1 = state
            .append(&WalOp::Upsert {
                name: "dev0".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        let image = image_with(&[("dev0", "vlan 1\n")], s1);
        state.checkpoint(&image).unwrap();
        let s2 = state
            .append(&WalOp::Remove {
                name: "dev0".to_string(),
            })
            .unwrap();
        assert_eq!(s2, s1 + 1);
        drop(state);

        let (state, load) = StateDir::open(&dir).unwrap();
        let got = load.image.expect("snapshot present");
        assert_eq!(got, image);
        assert_eq!(load.replay.len(), 1, "only the post-checkpoint op replays");
        assert_eq!(load.replay[0].seq, s2);
        assert!(!load.used_backup);
        assert_eq!(state.next_seq(), s2 + 1);
    }

    #[test]
    fn clean_segments_are_skipped_dirty_ones_rewritten() {
        let dir = tmp_dir("incremental");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let mut image = image_with(
            &[("a", "vlan 1\n"), ("b", "vlan 2\n"), ("c", "vlan 3\n")],
            0,
        );
        let first = state.checkpoint(&image).unwrap();
        assert_eq!(first.segments_written, 3);
        assert_eq!(first.segments_skipped, 0);

        // Nothing changed: the whole fleet is skipped.
        let idle = state.checkpoint(&image).unwrap();
        assert_eq!(idle.segments_written, 0);
        assert_eq!(idle.segments_skipped, 3);

        // One edit dirties exactly one segment.
        image.upsert("b", "vlan 99\n");
        image.applied_seq = 1;
        let edit = state.checkpoint(&image).unwrap();
        assert_eq!(edit.segments_written, 1);
        assert_eq!(edit.segments_skipped, 2);

        drop(state);
        let (_, load) = StateDir::open(&dir).unwrap();
        assert_eq!(load.image.expect("manifest loads"), image);
    }

    #[test]
    fn sketch_capture_rewrites_the_segment_once() {
        let dir = tmp_dir("sketchseg");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let mut image = image_with(&[("a", "vlan 1\n")], 0);
        state.checkpoint(&image).unwrap();

        // A sketch landing at the same generation is a new identity …
        image.configs[0].sketch = Some("{\"version\": 1}".to_string());
        let captured = state.checkpoint(&image).unwrap();
        assert_eq!(captured.segments_written, 1);

        // … and final: the next checkpoint skips it again.
        let idle = state.checkpoint(&image).unwrap();
        assert_eq!(idle.segments_written, 0);
        assert_eq!(idle.segments_skipped, 1);

        drop(state);
        let (_, load) = StateDir::open(&dir).unwrap();
        assert_eq!(
            load.image.expect("manifest loads").configs[0].sketch,
            image.configs[0].sketch
        );
    }

    #[test]
    fn unreferenced_segments_are_garbage_collected() {
        let dir = tmp_dir("gc");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let mut image = image_with(&[("a", "vlan 1\n"), ("b", "vlan 2\n")], 0);
        state.checkpoint(&image).unwrap();
        let gen0 = segment_files(&dir);
        assert_eq!(gen0.len(), 2);

        image.upsert("a", "vlan 2\n");
        state.checkpoint(&image).unwrap();
        // Old a-segment retained: the .bak manifest still pins it.
        assert_eq!(segment_files(&dir).len(), 3);

        image.upsert("a", "vlan 3\n");
        state.checkpoint(&image).unwrap();
        // Two manifests deep, generation-0 `a` is unreferenced → gone.
        let files = segment_files(&dir);
        assert_eq!(files.len(), 3);
        assert!(!files.contains(&gen0[0]), "{files:?}");
    }

    #[test]
    fn truncated_manifest_falls_back_to_backup_plus_wals() {
        let dir = tmp_dir("truncated");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let s1 = state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        state
            .checkpoint(&image_with(&[("a", "vlan 1\n")], s1))
            .unwrap();
        let s2 = state
            .append(&WalOp::Upsert {
                name: "b".to_string(),
                text: "vlan 2\n".to_string(),
            })
            .unwrap();
        state
            .checkpoint(&image_with(&[("a", "vlan 1\n"), ("b", "vlan 2\n")], s2))
            .unwrap();
        let s3 = state
            .append(&WalOp::Upsert {
                name: "c".to_string(),
                text: "vlan 3\n".to_string(),
            })
            .unwrap();
        drop(state);

        // Truncate the live manifest mid-payload.
        let manifest = dir.join("manifest.json");
        let bytes = std::fs::read(&manifest).unwrap();
        std::fs::write(&manifest, &bytes[..bytes.len() / 2]).unwrap();

        let (_, load) = StateDir::open(&dir).unwrap();
        assert!(load.used_backup);
        let image = load.image.expect("backup usable");
        assert_eq!(image.applied_seq, s1);
        // Replay covers everything after the backup's checkpoint: the
        // op folded only into the (lost) newer manifest, plus the tail.
        let seqs: Vec<u64> = load.replay.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![s2, s3]);
    }

    #[test]
    fn torn_live_only_segment_falls_back_to_backup_manifest() {
        let dir = tmp_dir("tornseg");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let s1 = state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        state
            .checkpoint(&image_with(&[("a", "vlan 1\n")], s1))
            .unwrap();
        let s2 = state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 2\n".to_string(),
            })
            .unwrap();
        let mut edited = image_with(&[("a", "vlan 2\n")], s2);
        edited.configs[0].generation = 1;
        state.checkpoint(&edited).unwrap();
        drop(state);

        // Corrupt the generation-1 segment: referenced only by the live
        // manifest (the .bak still pins generation 0).
        let seg = dir.join("segments").join(
            SegRef {
                id: 0,
                generation: 1,
                sketch: false,
            }
            .file_name(),
        );
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let (_, load) = StateDir::open(&dir).unwrap();
        assert!(load.used_backup, "live manifest unusable via its segment");
        let image = load.image.expect("backup usable");
        assert_eq!(image.applied_seq, s1);
        // The edit folded into the lost manifest replays from the WALs.
        let seqs: Vec<u64> = load.replay.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![s2]);
    }

    #[test]
    fn segment_manifest_generation_mismatch_is_rejected() {
        let dir = tmp_dir("genmismatch");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let mut image = image_with(&[("a", "vlan 1\n")], 0);
        state.checkpoint(&image).unwrap();
        image.upsert("a", "vlan 2\n");
        state.checkpoint(&image).unwrap();
        drop(state);

        // Copy the stale generation-0 segment over the generation-1
        // file: well-formed, valid crc, wrong identity.
        let seg_dir = dir.join("segments");
        let gen0 = SegRef {
            id: 0,
            generation: 0,
            sketch: false,
        };
        let gen1 = SegRef {
            id: 0,
            generation: 1,
            sketch: false,
        };
        std::fs::copy(
            seg_dir.join(gen0.file_name()),
            seg_dir.join(gen1.file_name()),
        )
        .unwrap();

        let (_, load) = StateDir::open(&dir).unwrap();
        assert!(load.used_backup, "live manifest must reject the impostor");
        assert_eq!(
            load.image.expect("backup usable").configs[0].text,
            "vlan 1\n"
        );
    }

    #[test]
    fn legacy_monolithic_snapshot_loads_and_is_migrated_by_checkpoint() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let image = image_with(&[("a", "vlan 1\n"), ("b", "vlan 2\n")], 0);
        let payload = image.to_json().render();
        std::fs::write(
            dir.join("snapshot.json"),
            format!(
                "{SNAPSHOT_MAGIC} crc32={:08x}\n{payload}\n",
                crc32(payload.as_bytes())
            ),
        )
        .unwrap();

        let (mut state, load) = StateDir::open(&dir).unwrap();
        assert_eq!(load.image.expect("legacy snapshot loads"), image);

        let stats = state.checkpoint(&image).unwrap();
        assert_eq!(stats.segments_written, 2, "legacy load primes no skip map");
        assert!(!dir.join("snapshot.json").exists(), "legacy file removed");
        assert!(dir.join("manifest.json").exists());
        drop(state);

        let (_, load) = StateDir::open(&dir).unwrap();
        assert_eq!(load.image.expect("segmented reload"), image);
        assert!(!load.used_backup);
    }

    #[test]
    fn stale_wal_records_older_than_the_checkpoint_are_skipped_not_double_applied() {
        let dir = tmp_dir("stale");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        let _s1 = state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        let s2 = state
            .append(&WalOp::Upsert {
                name: "b".to_string(),
                text: "vlan 2\n".to_string(),
            })
            .unwrap();
        let image = image_with(&[("a", "vlan 1\n"), ("b", "vlan 2\n")], s2);
        state.checkpoint(&image).unwrap();
        drop(state);

        // Simulate a crash that left rotated-but-not-truncated state:
        // the records already folded into the snapshot reappear in the
        // live WAL (and still sit in `wal.log.old`). Replay must skip
        // every one of them — `seq <= applied_seq` — not apply them a
        // second time on top of the image.
        std::fs::copy(dir.join("wal.log.old"), dir.join("wal.log")).unwrap();
        let (state, load) = StateDir::open(&dir).unwrap();
        let got = load.image.expect("snapshot present");
        assert_eq!(got, image);
        assert!(
            load.replay.is_empty(),
            "folded ops must not double-apply: {:?}",
            load.replay
        );
        assert_eq!(
            state.next_seq(),
            s2 + 1,
            "sequence continues after the tail"
        );
    }

    #[test]
    fn missing_everything_but_wal_is_corrupt_free_fresh_start() {
        let dir = tmp_dir("walonly");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        state
            .append(&WalOp::Upsert {
                name: "a".to_string(),
                text: "vlan 1\n".to_string(),
            })
            .unwrap();
        drop(state);
        let (_, load) = StateDir::open(&dir).unwrap();
        assert!(load.image.is_none());
        assert_eq!(load.replay.len(), 1, "ops before any checkpoint replay");
    }

    #[test]
    fn segref_file_names_round_trip() {
        let r = SegRef {
            id: 0xdead_beef,
            generation: 42,
            sketch: true,
        };
        assert_eq!(SegRef::parse(&r.file_name()), Some(r));
        assert_eq!(SegRef::parse("cfg-zz-0-0.seg"), None);
        assert_eq!(
            SegRef::parse("cfg-0000000000000000-0000000000000000-0.seg.tmp"),
            None
        );
        assert_eq!(SegRef::parse("manifest.json"), None);
    }
}
