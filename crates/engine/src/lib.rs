#![warn(missing_docs)]

//! The resident incremental engine (§3.7's interactive workflow).
//!
//! The batch pipeline rebuilds everything from scratch on every run:
//! re-lex the corpus, re-learn or re-load contracts, re-check every
//! configuration. That is the right shape for CI, but an interactive
//! session — an operator editing one device config at a time, a language
//! server, the CLI's `serve` mode — touches one file per event and wants
//! an answer proportional to the edit, not the corpus.
//!
//! [`Engine`] owns a versioned snapshot of the whole pipeline state:
//!
//! * a mutable [`Dataset`] with a stable [`ConfigId`] and a generation
//!   counter per configuration — edits go through
//!   [`Engine::upsert_config`] / [`Engine::remove_config`], which re-lex
//!   only the changed file through a persistent [`LexCache`];
//! * the current [`ContractSet`] (learned in-engine or loaded), with an
//!   epoch counter bumped on every swap;
//! * cached per-configuration check outcomes keyed by
//!   `(contracts epoch, resolution fingerprint)`, so
//!   [`Engine::check_dirty`] re-runs checks only for configurations
//!   edited since the last call and patches the rest in from the cache.
//!
//! The output contract is strict: `check_dirty` is **byte-identical** to
//! compiling and running the batch checker over the current snapshot
//! (`concord-bench`'s `engine_equivalence` oracle drives random edit
//! sequences against exactly that). The caching is sound because a
//! configuration's outcome depends only on its own lines and on how the
//! contract patterns resolved against the interner
//! ([`CheckProgram::resolution_fingerprint`]); the one cross-configuration
//! pass (unique contracts) is replayed from cached per-configuration
//! [`UniqueTable`]s in dataset order, which reproduces the global
//! first-seen-wins semantics exactly.
//!
//! Learning stays corpus-global, so the engine does not patch contracts
//! incrementally; instead it tracks *staleness* — the fraction of lines
//! changed since the last learn — and [`Engine::relearn_if_stale`] runs a
//! full relearn once the drift crosses a threshold.

use std::fmt;
use std::time::Instant;

use concord_core::{
    finalize_sketches, learn_with_stats, parallel, sketch_config, sketch_params_fingerprint,
    CheckProgram, CheckReport, CheckStats, ConfigOutcome, ConfigSketch, ContractSet,
    CoverageReport, Dataset, DatasetError, EngineCheckStats, EngineStats, LearnDeltaStats,
    LearnParams, LearnStats, MemoryStats, UniqueTable, SKETCH_FORMAT_VERSION,
};
use concord_json::{Json, ToJson};
use concord_lexer::{LexCache, Lexer};

pub mod fault;
mod fleet;
mod image;
mod replica;
mod resilient;
mod router;
mod store;
mod vfs;
mod wal;

pub use fleet::{merge_check_aggregates, merge_check_parts, FleetCheckReport, ShardCheckAggregate};
pub use image::{EngineImage, ImageConfig, ImageError};
pub use replica::{Replica, ReplicaError};
pub use resilient::{BootError, EngineFault, OpKind, ResilientEngine};
pub use router::{ShardRouter, VNODES_PER_SHARD};
pub use store::{LoadOutcome, StateDir, StoreError};
pub use vfs::{FaultKind, FaultPlan, FaultVfs, RealVfs, StorageError, Vfs, VfsFile};
pub use wal::{tail_records, TailChunk, Wal, WalOp, WalRecord};

/// A stable identifier for a configuration held by an [`Engine`].
///
/// Ids survive edits: replacing a configuration's text keeps its id (and
/// bumps its generation); ids are never reused after a remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigId(pub u64);

/// Tuning knobs of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Whether to embed hierarchical context into patterns (§3.2).
    pub embed_context: bool,
    /// Worker threads for checking and learning.
    pub parallelism: usize,
    /// Learning parameters used by [`Engine::relearn`].
    pub learn: LearnParams,
    /// Staleness fraction at which [`Engine::relearn_if_stale`] fires: a
    /// full relearn runs once `changed lines / corpus lines at last
    /// learn` reaches this value.
    pub staleness_threshold: f64,
    /// Upper bound on entries held by the persistent [`LexCache`]
    /// (`0` = unbounded). Long-lived processes should set a cap so the
    /// cache cannot grow without limit; see `LexCache::with_capacity`.
    pub lex_cache_cap: usize,
    /// Whether [`Engine::relearn`] runs incrementally — re-sketching
    /// only configurations edited since their sketch was mined, then
    /// folding all cached sketches — instead of re-mining the full
    /// corpus. Both paths are pinned byte-identical (the full relearn is
    /// kept as the equivalence oracle, mirroring `naive-check` and
    /// `reference-learn`), so this is a performance knob, not a
    /// semantics knob.
    pub delta_learn: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            embed_context: true,
            parallelism: 1,
            learn: LearnParams::default(),
            staleness_threshold: 0.2,
            lex_cache_cap: 0,
            delta_learn: true,
        }
    }
}

/// The engine's lifetime counters, exposed for persistence: restoring
/// them alongside the configuration texts makes a rebuilt engine
/// indistinguishable from one that never stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Next id handed to a newly inserted configuration.
    pub next_id: u64,
    /// Lifetime count of upserts and removes.
    pub edits: u64,
    /// Lifetime count of relearns.
    pub relearns: u64,
    /// Bumped whenever the contract set is swapped.
    pub contracts_epoch: u64,
    /// Corpus size (own lines) when contracts were last learned/loaded.
    pub lines_at_last_learn: usize,
    /// Own lines churned since the last learn.
    pub changed_lines_since_learn: usize,
    /// Value of `edits` when the current contracts were learned or
    /// loaded — records which dataset generation the contracts claim to
    /// describe, so a caller can tell "checked against fresh contracts"
    /// from "checked against contracts set N edits ago".
    pub contracts_edits: u64,
}

/// Why an [`Engine`] call could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// [`Engine::check_dirty`] was called before any contracts were
    /// learned or loaded.
    NoContracts,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoContracts => {
                f.write_str("no contracts loaded: call relearn() or set_contracts() first")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of one [`Engine::check_dirty`] call.
#[derive(Debug, Clone)]
pub struct EngineCheckReport {
    /// The full check report over the current snapshot — byte-identical
    /// to a from-scratch batch check of the same dataset and contracts.
    pub report: CheckReport,
    /// Aggregate check statistics. Counters (violations, witness indexes,
    /// probes) are exact sums over all configurations, replayed from the
    /// cache for clean ones; per-phase times cover only this call's
    /// recomputed work, so `category_times` is empty.
    pub stats: CheckStats,
    /// What this call patched versus recomputed.
    pub engine: EngineCheckStats,
}

/// One configuration's contribution to a sharded check, as produced by
/// [`Engine::check_parts`]: everything a fleet needs to reassemble the
/// unsharded engine's report without re-running any per-configuration
/// work.
#[derive(Debug, Clone)]
pub struct CheckPartConfig {
    /// Configuration name (the global merge key — the unsharded dataset
    /// is name-sorted, so merging shards by name recovers its order).
    pub name: String,
    /// This configuration's violations, in the engine's pre-sort order
    /// (excludes the cross-configuration unique pass).
    pub violations: Vec<concord_core::Violation>,
    /// Lines covered by at least one contract.
    pub covered_lines: usize,
    /// Total lines (the coverage denominator contribution).
    pub total_lines: usize,
    /// The configuration's unique-pass event table; `None` when no
    /// unique contract resolved against this shard's dataset (an empty
    /// contribution — the fleet replays it as an empty table).
    pub unique: Option<UniqueTable>,
}

/// The unassembled result of one [`Engine::check_parts`] call.
#[derive(Debug, Clone)]
pub struct CheckParts {
    /// Per-configuration parts, in this engine's dataset (name) order.
    pub configs: Vec<CheckPartConfig>,
    /// Contract indices of the unique contracts that resolved against
    /// this engine's dataset, in compiled order. The fleet unions these
    /// across shards (sorted merge) to recover the global resolution.
    pub unique_indices: Vec<usize>,
    /// Configurations re-checked by this call.
    pub dirty_configs: usize,
    /// Configurations served from the outcome cache.
    pub reused_configs: usize,
    /// Whether a resolution change invalidated this engine's cache.
    pub resolution_invalidated: bool,
}

/// One configuration's engine-side bookkeeping, parallel to
/// `dataset.configs`: identity, edit generation, and the cached check
/// results (cleared on edit, repopulated by [`Engine::check_dirty`]).
#[derive(Debug, Clone, Default)]
struct Slot {
    id: u64,
    generation: u64,
    /// Cached per-configuration outcome; `None` marks the slot dirty.
    outcome: Option<ConfigOutcome>,
    /// Cached unique-pass events (`None` while dirty, `Some` — possibly
    /// empty — once checked under a program with unique contracts).
    unique: Option<UniqueTable>,
    /// Cached learn sketch (`None` while dirty; mined lazily by the next
    /// delta relearn, or restored from a persisted snapshot).
    sketch: Option<ConfigSketch>,
}

/// A resident pipeline snapshot absorbing single-configuration edits.
///
/// See the [crate docs](crate) for the model. The batch pipeline is the
/// degenerate use: build a fresh engine from a corpus, check once, drop —
/// `check_dirty` on a fresh engine *is* the batch check.
pub struct Engine {
    lexer: Lexer,
    /// Persistent across edits: re-upserting a file whose line shapes
    /// were seen before costs hash lookups, not regex scans.
    cache: LexCache,
    options: EngineOptions,
    dataset: Dataset,
    /// One entry per configuration, kept index-aligned with
    /// `dataset.configs` through every upsert/remove.
    slots: Vec<Slot>,
    next_id: u64,
    contracts: Option<ContractSet>,
    /// Bumped whenever the contract set object is swapped; part of the
    /// outcome-cache key (two different sets can resolve identically).
    contracts_epoch: u64,
    /// The `(epoch, resolution fingerprint)` the cached outcomes were
    /// computed under; a mismatch in `check_dirty` invalidates them all.
    cached_key: Option<(u64, u64)>,
    edits: u64,
    relearns: u64,
    /// Corpus size (own lines) when contracts were last learned/loaded.
    lines_at_last_learn: usize,
    /// Own lines added, removed, or replaced since then (both sides of a
    /// replacement count — the staleness signal measures churn).
    changed_lines_since_learn: usize,
    /// `edits` at the moment the current contracts were learned/loaded.
    contracts_edits: u64,
    /// Configurations re-sketched / reused by the most recent relearn.
    last_learn_mined: u64,
    last_learn_reused: u64,
    last_check: Option<EngineCheckStats>,
    /// The fully assembled report of the most recent `check_dirty`,
    /// tagged with the `(edits, contracts_epoch)` it was computed at.
    /// Both counters move on every mutation (upsert/remove bump `edits`;
    /// set_contracts/relearn bump `contracts_epoch`), so a tag match
    /// proves the report still describes the current snapshot and
    /// [`Engine::check_cached`] can serve it through `&self`.
    cached_report: Option<(u64, u64, EngineCheckReport)>,
}

impl Engine {
    /// Creates an empty engine with the standard lexer.
    pub fn new(options: EngineOptions) -> Engine {
        Self::with_lexer(Lexer::standard(), options)
    }

    /// Creates an empty engine with a custom lexer.
    pub fn with_lexer(lexer: Lexer, options: EngineOptions) -> Engine {
        let cache = LexCache::with_capacity(options.lex_cache_cap);
        Engine {
            lexer,
            cache,
            options,
            dataset: Dataset::default(),
            slots: Vec::new(),
            next_id: 0,
            contracts: None,
            contracts_epoch: 0,
            cached_key: None,
            edits: 0,
            relearns: 0,
            lines_at_last_learn: 0,
            changed_lines_since_learn: 0,
            contracts_edits: 0,
            last_learn_mined: 0,
            last_learn_reused: 0,
            last_check: None,
            cached_report: None,
        }
    }

    /// Builds an engine over an initial corpus (the "fresh engine + one
    /// transaction" form of the batch pipeline).
    ///
    /// Configurations are name-sorted first so the snapshot order matches
    /// what a sequence of [`Engine::upsert_config`] calls produces — and
    /// what the CLI's glob loader produces.
    pub fn from_corpus(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        options: EngineOptions,
    ) -> Result<Engine, DatasetError> {
        Self::from_corpus_with_lexer(configs, metadata, Lexer::standard(), options)
    }

    /// [`Engine::from_corpus`] with a custom lexer.
    pub fn from_corpus_with_lexer(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: Lexer,
        options: EngineOptions,
    ) -> Result<Engine, DatasetError> {
        let mut sorted: Vec<(String, String)> = configs.to_vec();
        sorted.sort();
        let mut engine = Self::with_lexer(lexer, options);
        let (dataset, _) = Dataset::build_with_stats(
            &sorted,
            metadata,
            &engine.lexer,
            engine.options.embed_context,
            engine.options.parallelism,
            Some(&engine.cache),
        )?;
        engine.slots = dataset
            .configs
            .iter()
            .enumerate()
            .map(|(i, _)| Slot {
                id: i as u64,
                ..Slot::default()
            })
            .collect();
        engine.next_id = dataset.configs.len() as u64;
        engine.dataset = dataset;
        Ok(engine)
    }

    /// Rebuilds an engine from a persisted [`EngineImage`]: same
    /// configurations in the same order, same ids and generations, same
    /// counters, same contracts. Check results are recomputed on demand
    /// (they are derived state), so the first `check_dirty` after a
    /// restore is a full batch check — byte-identical by the engine's
    /// own equivalence contract.
    pub fn from_image(
        image: &EngineImage,
        lexer: Lexer,
        options: EngineOptions,
    ) -> Result<Engine, ImageError> {
        let configs: Vec<(String, String)> = image
            .configs
            .iter()
            .map(|c| (c.name.clone(), c.text.clone()))
            .collect();
        let mut engine = Self::with_lexer(lexer, options);
        let (dataset, _) = Dataset::build_with_stats(
            &configs,
            &image.metadata,
            &engine.lexer,
            engine.options.embed_context,
            engine.options.parallelism,
            Some(&engine.cache),
        )
        .map_err(ImageError::Dataset)?;
        engine.slots = image
            .configs
            .iter()
            .map(|c| Slot {
                id: c.id,
                generation: c.generation,
                ..Slot::default()
            })
            .collect();
        engine.dataset = dataset;
        if let Some(json) = &image.contracts {
            let contracts =
                ContractSet::from_json(json).map_err(|e| ImageError::Contracts(e.to_string()))?;
            engine.contracts = Some(contracts);
        }
        let c = &image.counters;
        engine.next_id = c.next_id;
        engine.edits = c.edits;
        engine.relearns = c.relearns;
        engine.contracts_epoch = c.contracts_epoch;
        engine.lines_at_last_learn = c.lines_at_last_learn;
        engine.changed_lines_since_learn = c.changed_lines_since_learn;
        engine.contracts_edits = c.contracts_edits;
        // Sketches are derived state: import what survives the version,
        // params, and generation guards; anything else (including a
        // corrupt per-config bundle) is silently re-mined by the next
        // delta relearn.
        for config in &image.configs {
            if let Some(text) = &config.sketch {
                if let Ok(bundle) = Json::parse(text) {
                    engine.import_sketches(&bundle);
                }
            }
        }
        Ok(engine)
    }

    /// The current snapshot's dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The engine's lifetime counters (for persistence).
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            next_id: self.next_id,
            edits: self.edits,
            relearns: self.relearns,
            contracts_epoch: self.contracts_epoch,
            lines_at_last_learn: self.lines_at_last_learn,
            changed_lines_since_learn: self.changed_lines_since_learn,
            contracts_edits: self.contracts_edits,
        }
    }

    /// `(name, generation)` for every configuration, in dataset order.
    pub fn generations(&self) -> Vec<(String, u64)> {
        self.dataset
            .configs
            .iter()
            .zip(&self.slots)
            .map(|(c, s)| (self.dataset.name_of(c).to_string(), s.generation))
            .collect()
    }

    /// The stable id of the configuration at dataset index `i`.
    pub fn id_at(&self, i: usize) -> Option<ConfigId> {
        self.slots.get(i).map(|s| ConfigId(s.id))
    }

    /// The current contract set, if any.
    pub fn contracts(&self) -> Option<&ContractSet> {
        self.contracts.as_ref()
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The stable id of the configuration named `name`.
    pub fn config_id(&self, name: &str) -> Option<ConfigId> {
        let i = self.dataset.config_index(name)?;
        Some(ConfigId(self.slots[i].id))
    }

    /// The edit generation of the configuration named `name` (0 for a
    /// never-replaced configuration, +1 per replacing upsert).
    pub fn config_generation(&self, name: &str) -> Option<u64> {
        let i = self.dataset.config_index(name)?;
        Some(self.slots[i].generation)
    }

    /// Inserts or replaces one configuration, re-lexing only `text`
    /// (through the engine's persistent lex cache) and marking only this
    /// configuration dirty. Returns the configuration's stable id.
    pub fn upsert_config(&mut self, name: &str, text: &str) -> ConfigId {
        let old_own = self
            .dataset
            .config_index(name)
            .map(|i| self.dataset.configs[i].own_line_count())
            .unwrap_or(0);
        let before = self.dataset.configs.len();
        let i = self.dataset.upsert_config(
            name,
            text,
            &self.lexer,
            self.options.embed_context,
            Some(&self.cache),
        );
        if self.dataset.configs.len() == before {
            // Replaced in place: same identity, new generation, dirty.
            let slot = &mut self.slots[i];
            slot.generation += 1;
            slot.outcome = None;
            slot.unique = None;
            slot.sketch = None;
        } else {
            self.slots.insert(
                i,
                Slot {
                    id: self.next_id,
                    ..Slot::default()
                },
            );
            self.next_id += 1;
        }
        self.edits += 1;
        self.changed_lines_since_learn += old_own + self.dataset.configs[i].own_line_count();
        ConfigId(self.slots[i].id)
    }

    /// Removes the configuration named `name`, returning its id (`None`
    /// when no such configuration exists). Other configurations' cached
    /// outcomes stay valid; the global unique pass is replayed over the
    /// remaining tables at the next [`Engine::check_dirty`].
    pub fn remove_config(&mut self, name: &str) -> Option<ConfigId> {
        let i = self.dataset.config_index(name)?;
        let own = self.dataset.configs[i].own_line_count();
        self.dataset.remove_config(name);
        let slot = self.slots.remove(i);
        self.edits += 1;
        self.changed_lines_since_learn += own;
        Some(ConfigId(slot.id))
    }

    /// Swaps in an externally produced contract set (e.g. loaded from the
    /// JSON a `learn` run wrote). Resets the staleness clock: **the
    /// caller asserts these contracts describe the current snapshot.**
    /// The engine cannot verify that assertion — it records the current
    /// edit counter as [`EngineCounters::contracts_edits`] so consumers
    /// (stats, serve clients) can at least tell how many edits the
    /// snapshot has absorbed since the contracts were installed; edits
    /// made *after* this call accumulate staleness normally and drive
    /// [`Engine::relearn_if_stale`] as usual.
    pub fn set_contracts(&mut self, contracts: ContractSet) {
        self.contracts = Some(contracts);
        self.contracts_epoch += 1;
        self.contracts_edits = self.edits;
        self.lines_at_last_learn = self.dataset.total_lines();
        self.changed_lines_since_learn = 0;
    }

    /// Learns a fresh contract set from the current snapshot, replacing
    /// the previous one and resetting the staleness clock.
    ///
    /// With [`EngineOptions::delta_learn`] set (the default) this is an
    /// O(edit) operation in the steady state: only configurations edited
    /// since their sketch was mined are re-sketched, and the contract
    /// set is produced by folding the cached per-configuration sketches
    /// — the exact fold + emit code the full learner runs, so the result
    /// is byte-identical to a full relearn.
    pub fn relearn(&mut self) -> LearnStats {
        let stats = if self.options.delta_learn {
            self.relearn_delta()
        } else {
            let (contracts, stats) = learn_with_stats(&self.dataset, &self.options.learn);
            self.contracts = Some(contracts);
            self.last_learn_mined = self.dataset.configs.len() as u64;
            self.last_learn_reused = 0;
            stats
        };
        self.contracts_epoch += 1;
        self.relearns += 1;
        self.contracts_edits = self.edits;
        self.lines_at_last_learn = self.dataset.total_lines();
        self.changed_lines_since_learn = 0;
        stats
    }

    /// The delta-learn path: mine sketches for configurations that lack
    /// one (in parallel), then fold every sketch in dataset order.
    fn relearn_delta(&mut self) -> LearnStats {
        let dirty: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sketch.is_none())
            .map(|(i, _)| i)
            .collect();
        let dataset = &self.dataset;
        let params = &self.options.learn;
        let mined: Vec<ConfigSketch> = parallel::map(
            &dirty,
            |&i| sketch_config(dataset, i, params),
            self.options.parallelism,
        );
        for (&i, sketch) in dirty.iter().zip(mined) {
            self.slots[i].sketch = Some(sketch);
        }
        self.last_learn_mined = dirty.len() as u64;
        self.last_learn_reused = (self.slots.len() - dirty.len()) as u64;
        let (contracts, stats) = {
            let sketches: Vec<&ConfigSketch> = self
                .slots
                .iter()
                .map(|s| s.sketch.as_ref().expect("just populated"))
                .collect();
            finalize_sketches(&self.dataset, &sketches, &self.options.learn)
        };
        self.contracts = Some(contracts);
        stats
    }

    /// Fraction of the corpus changed since the last learn: `lines
    /// touched by edits / corpus size` (counting both the removed and
    /// the inserted side of a replacement). `1.0` when no learn has
    /// happened over a non-empty corpus.
    ///
    /// The denominator is `max(own lines at last learn, own lines now)`:
    /// a corpus that *grew* since the learn would otherwise overshoot
    /// (churn measured against a smaller, stale corpus), and a corpus
    /// that shrank would undershoot — removals count their removed lines
    /// in the numerator, so dividing by the shrunken size would double-
    /// discount them.
    pub fn staleness(&self) -> f64 {
        if self.contracts.is_none() {
            return if self.dataset.configs.is_empty() {
                0.0
            } else {
                1.0
            };
        }
        let denominator = self
            .lines_at_last_learn
            .max(self.dataset.total_lines())
            .max(1);
        self.changed_lines_since_learn as f64 / denominator as f64
    }

    /// Relearns when no contracts are loaded yet or when
    /// [`Engine::staleness`] has reached the configured threshold.
    /// Returns the learn stats when a relearn ran.
    pub fn relearn_if_stale(&mut self) -> Option<LearnStats> {
        if self.contracts.is_none() || self.staleness() >= self.options.staleness_threshold {
            Some(self.relearn())
        } else {
            None
        }
    }

    /// Serializes the cached per-configuration learn sketches for
    /// persistence. The bundle records the sketch format version, a
    /// fingerprint of the learn parameters the sketches were mined
    /// under, and each sketch's configuration name + edit generation, so
    /// [`Engine::import_sketches`] can reject anything stale.
    pub fn export_sketches(&self) -> Json {
        let configs: Vec<Json> = self
            .dataset
            .configs
            .iter()
            .zip(&self.slots)
            .filter_map(|(c, s)| {
                let sketch = s.sketch.as_ref()?;
                Some(Json::Object(vec![
                    (
                        "name".to_string(),
                        Json::Str(self.dataset.name_of(c).to_string()),
                    ),
                    ("generation".to_string(), s.generation.to_json()),
                    ("sketch".to_string(), sketch.to_json(&self.dataset.table)),
                ]))
            })
            .collect();
        Json::Object(vec![
            ("version".to_string(), SKETCH_FORMAT_VERSION.to_json()),
            (
                "params".to_string(),
                Json::Str(sketch_params_fingerprint(&self.options.learn)),
            ),
            ("configs".to_string(), Json::Array(configs)),
        ])
    }

    /// Serializes one configuration's cached learn sketch as a complete
    /// single-config bundle (same shape as [`Engine::export_sketches`],
    /// with one entry), or `None` when the config is unknown or its
    /// sketch has not been mined yet. The segmented checkpoint path
    /// stores this per config so an unedited configuration's sketch is
    /// never re-rendered.
    pub fn export_sketch_for(&self, name: &str) -> Option<Json> {
        let i = self.dataset.config_index(name)?;
        let slot = &self.slots[i];
        let sketch = slot.sketch.as_ref()?;
        Some(Json::Object(vec![
            ("version".to_string(), SKETCH_FORMAT_VERSION.to_json()),
            (
                "params".to_string(),
                Json::Str(sketch_params_fingerprint(&self.options.learn)),
            ),
            (
                "configs".to_string(),
                Json::Array(vec![Json::Object(vec![
                    ("name".to_string(), Json::Str(name.to_string())),
                    ("generation".to_string(), slot.generation.to_json()),
                    ("sketch".to_string(), sketch.to_json(&self.dataset.table)),
                ])]),
            ),
        ]))
    }

    /// Restores cached sketches from an [`Engine::export_sketches`]
    /// bundle, returning how many were accepted. Sketches are derived
    /// state, so every guard fails *safe* to "no sketch" (re-mined by
    /// the next delta relearn): a format-version or learn-params
    /// mismatch drops the whole bundle; per configuration, an unknown
    /// name, a generation mismatch, or an undecodable sketch (e.g. a
    /// pattern no longer interned) drops just that entry.
    pub fn import_sketches(&mut self, bundle: &Json) -> usize {
        if bundle.get("version").and_then(Json::as_u64) != Some(SKETCH_FORMAT_VERSION) {
            return 0;
        }
        let fingerprint = sketch_params_fingerprint(&self.options.learn);
        if bundle.get("params").and_then(Json::as_str) != Some(fingerprint.as_str()) {
            return 0;
        }
        let Some(entries) = bundle.get("configs").and_then(Json::as_array) else {
            return 0;
        };
        let mut imported = 0;
        for entry in entries {
            let Some(name) = entry.get("name").and_then(Json::as_str) else {
                continue;
            };
            let Some(generation) = entry.get("generation").and_then(Json::as_u64) else {
                continue;
            };
            let Some(i) = self.dataset.config_index(name) else {
                continue;
            };
            if self.slots[i].generation != generation {
                continue;
            }
            let Some(sketch) = entry
                .get("sketch")
                .and_then(|j| ConfigSketch::from_json(j, &self.dataset.table))
            else {
                continue;
            };
            self.slots[i].sketch = Some(sketch);
            imported += 1;
        }
        imported
    }

    /// Checks the current snapshot, recomputing only dirty
    /// configurations and patching everything else in from the cache.
    ///
    /// The returned report is byte-identical to a from-scratch batch
    /// check ([`check_parallel_with_stats`]) of the same dataset and
    /// contracts. A resolution change — contracts swapped, or an edit
    /// interning a pattern that makes a contract resolve differently —
    /// is detected via [`CheckProgram::resolution_fingerprint`] and
    /// invalidates the whole cache (correctness first; the fingerprint
    /// only moves when cached outcomes genuinely went stale).
    pub fn check_dirty(&mut self) -> Result<EngineCheckReport, EngineError> {
        let start = Instant::now();
        let contracts = self.contracts.as_ref().ok_or(EngineError::NoContracts)?;
        let program = CheckProgram::compile(contracts, &self.dataset);
        let (dirty, resolution_invalidated) = refresh_outcomes(
            &mut self.slots,
            &mut self.cached_key,
            &self.dataset,
            &program,
            self.contracts_epoch,
            self.options.parallelism,
        );

        // Assemble the report in dataset order — exactly the shape the
        // batch checker produces before its final sort.
        let mut violations = Vec::new();
        let mut coverages = Vec::new();
        let mut counters = concord_core::CheckCounters::default();
        let mut rebuilt = 0u64;
        let mut patched = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            let outcome = slot.outcome.as_ref().expect("just populated");
            violations.extend_from_slice(&outcome.violations);
            coverages.push(outcome.coverage.clone());
            counters.accumulate(&outcome.counters);
            if dirty.binary_search(&i).is_ok() {
                rebuilt += outcome.counters.indexes_built;
            } else {
                patched += outcome.counters.indexes_built;
            }
        }
        if program.has_unique() {
            let tables: Vec<(&str, &UniqueTable)> = self
                .dataset
                .configs
                .iter()
                .zip(&self.slots)
                .map(|(c, s)| {
                    (
                        self.dataset.name_of(c),
                        s.unique.as_ref().expect("just populated"),
                    )
                })
                .collect();
            violations.extend(program.check_unique_tables(&tables));
        }
        violations.sort_by(|a, b| {
            (&a.config, a.line_no, a.contract_index).cmp(&(&b.config, b.line_no, b.contract_index))
        });

        let stats = CheckStats {
            contracts: contracts.len(),
            violations: violations.len(),
            parallelism: self.options.parallelism.max(1),
            check_time: start.elapsed(),
            compile_time: program.compile_time,
            witness_indexes: counters.indexes_built,
            witness_entries: counters.index_entries,
            witness_probes: counters.probes,
            witness_probe_hits: counters.probe_hits,
            // Per-phase times are not replayable from cached outcomes.
            category_times: Vec::new(),
        };
        let engine = EngineCheckStats {
            dirty_configs: dirty.len(),
            reused_configs: self.slots.len() - dirty.len(),
            resolution_invalidated,
            witness_indexes_rebuilt: rebuilt,
            witness_indexes_patched: patched,
        };
        self.last_check = Some(engine);

        let report = EngineCheckReport {
            report: CheckReport {
                violations,
                coverage: CoverageReport {
                    per_config: coverages,
                },
            },
            stats,
            engine,
        };
        // Cache the assembled report for `check_cached`, with its engine
        // counters rewritten to what a clean replay (a second check_dirty
        // with nothing dirty) would report: everything reused, every
        // witness index patched in from cache.
        let replay = EngineCheckStats {
            dirty_configs: 0,
            reused_configs: self.slots.len(),
            resolution_invalidated: false,
            witness_indexes_rebuilt: 0,
            witness_indexes_patched: counters.indexes_built,
        };
        self.cached_report = Some((
            self.edits,
            self.contracts_epoch,
            EngineCheckReport {
                engine: replay,
                ..report.clone()
            },
        ));
        Ok(report)
    }

    /// Checks the current snapshot like [`Engine::check_dirty`], but
    /// returns the *unassembled* per-configuration parts instead of the
    /// merged report: each configuration's violations, covered/total
    /// line counts, and unique-pass event table, plus the resolved
    /// unique-contract indices. A sharded fleet collects every shard's
    /// parts, merges the configurations in global name order (the
    /// dataset order an unsharded engine would hold), replays the union
    /// of the unique tables, and applies the engine's final stable sort
    /// — reproducing [`Engine::check_dirty`]'s report byte for byte
    /// while each shard pays only for its own dirty configurations.
    ///
    /// Shares the outcome cache with `check_dirty`: both paths refresh
    /// the same per-slot outcomes, so interleaving them never recomputes
    /// a clean configuration. The assembled-report cache
    /// ([`Engine::check_cached`]) is left untouched — this path does not
    /// build the merged report it would hold.
    pub fn check_parts(&mut self) -> Result<CheckParts, EngineError> {
        let contracts = self.contracts.as_ref().ok_or(EngineError::NoContracts)?;
        let program = CheckProgram::compile(contracts, &self.dataset);
        let (dirty, resolution_invalidated) = refresh_outcomes(
            &mut self.slots,
            &mut self.cached_key,
            &self.dataset,
            &program,
            self.contracts_epoch,
            self.options.parallelism,
        );
        let has_unique = program.has_unique();
        let configs = self
            .dataset
            .configs
            .iter()
            .zip(&self.slots)
            .map(|(c, s)| {
                let outcome = s.outcome.as_ref().expect("just populated");
                CheckPartConfig {
                    name: self.dataset.name_of(c).to_string(),
                    violations: outcome.violations.clone(),
                    covered_lines: outcome.coverage.covered.len(),
                    total_lines: outcome.coverage.total_lines,
                    unique: has_unique.then(|| s.unique.clone().expect("just populated")),
                }
            })
            .collect();
        Ok(CheckParts {
            configs,
            unique_indices: program.unique_indices(),
            dirty_configs: dirty.len(),
            reused_configs: self.slots.len() - dirty.len(),
            resolution_invalidated,
        })
    }

    /// Serves the most recent [`Engine::check_dirty`] report through
    /// `&self`, when it provably still describes the current snapshot —
    /// i.e. no edit and no contract change happened since (the
    /// `(edits, contracts_epoch)` tag matches; both counters move on
    /// every mutation). Violations, coverage, and the incremental
    /// counters are identical to what a fresh `check_dirty` would
    /// produce (clean replay: `dirty=0`, everything reused); only the
    /// wall-clock timings in `stats` are those of the original
    /// computation. `last_check` is deliberately not updated — this path
    /// never touches engine state, which is what lets many readers call
    /// it concurrently.
    pub fn check_cached(&self) -> Option<EngineCheckReport> {
        let (edits, epoch, report) = self.cached_report.as_ref()?;
        (*edits == self.edits && *epoch == self.contracts_epoch).then(|| report.clone())
    }

    /// The incremental-learn cache counters: occupancy, configs mined
    /// vs reused by the last relearn, and the edit generation the
    /// current contracts describe.
    pub fn learn_delta(&self) -> LearnDeltaStats {
        LearnDeltaStats {
            enabled: self.options.delta_learn,
            sketches: self.slots.iter().filter(|s| s.sketch.is_some()).count(),
            dirty: self.slots.iter().filter(|s| s.sketch.is_none()).count(),
            mined_last_learn: self.last_learn_mined,
            reused_last_learn: self.last_learn_reused,
            contracts_edits: self.contracts_edits,
        }
    }

    /// A snapshot of the engine's state and lifetime counters.
    pub fn snapshot_stats(&self) -> EngineStats {
        let cache = self.cache.stats();
        EngineStats {
            configs: self.dataset.configs.len(),
            lines: self.dataset.configs.iter().map(|c| c.len()).sum(),
            patterns: self.dataset.pattern_count(),
            contracts: self.contracts.as_ref().map(ContractSet::len),
            edits: self.edits,
            relearns: self.relearns,
            dirty_configs: self.slots.iter().filter(|s| s.outcome.is_none()).count(),
            staleness: self.staleness(),
            lex_cache_hits: cache.hits,
            lex_cache_misses: cache.misses,
            lex_cache_evictions: cache.evictions,
            generations: self.generations(),
            robustness: None,
            last_check: self.last_check,
            learn_delta: self.learn_delta(),
            memory: self.memory_stats(),
            storage: None,
            serve: None,
            fleet: None,
        }
    }

    /// Arena/interner heap accounting for the SoA dataset. The
    /// segmented-checkpoint counters stay zero here: a bare engine has
    /// no store; the resilient layer fills them in.
    fn memory_stats(&self) -> MemoryStats {
        let (strings, params, table, columns) = self.dataset.arena_bytes();
        MemoryStats {
            string_arena_bytes: strings as u64,
            param_arena_bytes: params as u64,
            pattern_table_bytes: table as u64,
            column_bytes: columns as u64,
            interned_strings: self.dataset.interned_strings() as u64,
            interned_param_slices: self.dataset.interned_param_slices() as u64,
            segments_written: 0,
            segments_skipped: 0,
        }
    }
}

/// Ensures every slot holds a current outcome under `program`'s
/// resolution key, re-running only dirty configurations (in parallel).
/// Returns the sorted dirty indices and whether a resolution change
/// invalidated the cache. A free function over disjoint [`Engine`]
/// fields because `program` immutably borrows the engine's dataset and
/// contracts while the slots are written.
fn refresh_outcomes(
    slots: &mut [Slot],
    cached_key: &mut Option<(u64, u64)>,
    dataset: &Dataset,
    program: &CheckProgram<'_>,
    contracts_epoch: u64,
    parallelism: usize,
) -> (Vec<usize>, bool) {
    let key = (contracts_epoch, program.resolution_fingerprint());
    let resolution_invalidated = cached_key.is_some_and(|k| k != key);
    if *cached_key != Some(key) {
        for slot in slots.iter_mut() {
            slot.outcome = None;
            slot.unique = None;
        }
        *cached_key = Some(key);
    }

    let dirty: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.outcome.is_none())
        .map(|(i, _)| i)
        .collect();

    // Re-check dirty configurations in parallel; each produces its
    // cacheable outcome plus (when unique contracts resolved) its
    // replayable unique-event table.
    let recomputed: Vec<(ConfigOutcome, Option<UniqueTable>)> = parallel::map(
        &dirty,
        |&i| {
            let config = &dataset.configs[i];
            let outcome = program.run_config(config);
            let unique = program.has_unique().then(|| program.unique_table(config));
            (outcome, unique)
        },
        parallelism,
    );
    for (&i, (outcome, unique)) in dirty.iter().zip(recomputed) {
        slots[i].outcome = Some(outcome);
        slots[i].unique = unique;
    }
    (dirty, resolution_invalidated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_core::check_parallel_with_stats;

    fn corpus() -> Vec<(String, String)> {
        (0..6)
            .map(|i| {
                (
                    format!("dev{i}"),
                    format!(
                        "hostname DEV{}\nrouter bgp 65000\ninterface Loopback0\n ip address 10.0.0.{}\nvlan {}\n",
                        100 + i,
                        i + 1,
                        250 + i
                    ),
                )
            })
            .collect()
    }

    /// Batch-checks `engine`'s current snapshot from scratch.
    fn batch(engine: &Engine) -> (CheckReport, CheckStats) {
        check_parallel_with_stats(
            engine.contracts().expect("contracts loaded"),
            engine.dataset(),
            1,
        )
    }

    fn assert_reports_equal(a: &CheckReport, b: &CheckReport) {
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.coverage.per_config.len(), b.coverage.per_config.len());
        for (ca, cb) in a.coverage.per_config.iter().zip(&b.coverage.per_config) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn fresh_engine_check_matches_batch() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        let incremental = engine.check_dirty().unwrap();
        let (report, stats) = batch(&engine);
        assert_reports_equal(&incremental.report, &report);
        assert_eq!(incremental.stats.violations, stats.violations);
        assert_eq!(incremental.stats.witness_indexes, stats.witness_indexes);
        assert_eq!(incremental.stats.witness_probes, stats.witness_probes);
        assert_eq!(incremental.engine.dirty_configs, 6);
        assert_eq!(incremental.engine.reused_configs, 0);
    }

    #[test]
    fn edit_rechecks_only_the_dirty_config() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        engine.check_dirty().unwrap();

        // Break one device: drop its bgp line.
        engine.upsert_config(
            "dev2",
            "hostname DEV102\ninterface Loopback0\n ip address 10.0.0.3\nvlan 252\n",
        );
        let incremental = engine.check_dirty().unwrap();
        assert_eq!(incremental.engine.dirty_configs, 1);
        assert_eq!(incremental.engine.reused_configs, 5);
        assert!(!incremental.engine.resolution_invalidated);
        assert!(!incremental.report.violations.is_empty());

        let (report, _) = batch(&engine);
        assert_reports_equal(&incremental.report, &report);
    }

    #[test]
    fn new_pattern_that_changes_resolution_invalidates_the_cache() {
        let configs: Vec<(String, String)> = (0..6)
            .map(|i| (format!("dev{i}"), format!("vlan {}\n", 10 + i)))
            .collect();
        let mut engine = Engine::from_corpus(&configs, &[], EngineOptions::default()).unwrap();
        engine.relearn();
        engine.check_dirty().unwrap();

        // A brand-new line shape interns new patterns; if any contract
        // resolves differently the whole cache must be dropped.
        engine.upsert_config("dev0", "vlan 10\nmtu jumbo frames on\n");
        let incremental = engine.check_dirty().unwrap();
        let (report, _) = batch(&engine);
        assert_reports_equal(&incremental.report, &report);
        if incremental.engine.resolution_invalidated {
            assert_eq!(incremental.engine.dirty_configs, 6);
        }

        // An edit reusing only known line shapes stays a 1-config check.
        engine.upsert_config("dev1", "vlan 99\n");
        let incremental = engine.check_dirty().unwrap();
        assert_eq!(incremental.engine.dirty_configs, 1);
        let (report, _) = batch(&engine);
        assert_reports_equal(&incremental.report, &report);
    }

    #[test]
    fn check_cached_serves_the_report_until_any_mutation() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        assert!(engine.check_cached().is_none(), "nothing checked yet");
        engine.relearn();
        assert!(engine.check_cached().is_none(), "relearn moved the epoch");

        let fresh = engine.check_dirty().unwrap();
        let cached = engine.check_cached().expect("report is current");
        assert_eq!(cached.report.violations, fresh.report.violations);
        assert_eq!(
            cached.report.coverage.per_config,
            fresh.report.coverage.per_config
        );
        // Cached counters are the clean-replay form: what a second
        // check_dirty with nothing dirty would report.
        let replay = engine.check_dirty().unwrap();
        assert_eq!(cached.engine, replay.engine);
        assert_eq!(cached.engine.dirty_configs, 0);
        assert_eq!(cached.engine.reused_configs, 6);
        assert_eq!(cached.engine.witness_indexes_rebuilt, 0);

        // Every mutation class invalidates the tag.
        engine.upsert_config("dev0", "vlan 9\n");
        assert!(engine.check_cached().is_none(), "upsert bumped edits");
        engine.check_dirty().unwrap();
        assert!(engine.check_cached().is_some());
        engine.remove_config("dev5");
        assert!(engine.check_cached().is_none(), "remove bumped edits");
        engine.check_dirty().unwrap();
        engine.relearn();
        assert!(engine.check_cached().is_none(), "relearn bumped the epoch");

        // And the cached report stays byte-equal to a batch oracle.
        let incremental = engine.check_dirty().unwrap();
        let cached = engine.check_cached().expect("current again");
        assert_reports_equal(&cached.report, &incremental.report);
        let (oracle, _) = batch(&engine);
        assert_reports_equal(&cached.report, &oracle);
    }

    #[test]
    fn remove_config_replays_unique_pass_over_remaining_tables() {
        // vlan ids are globally unique in this corpus, so learning yields
        // unique contracts whose cross-config state must survive removal.
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        engine.check_dirty().unwrap();

        assert!(engine.remove_config("dev3").is_some());
        assert!(engine.remove_config("dev3").is_none());
        let incremental = engine.check_dirty().unwrap();
        assert_eq!(incremental.engine.dirty_configs, 0);
        let (report, _) = batch(&engine);
        assert_reports_equal(&incremental.report, &report);

        // Re-adding a config that duplicates another's vlan id must trip
        // the unique contract even though only the new config is dirty.
        engine.upsert_config(
            "dev9",
            "hostname DEV109\nrouter bgp 65000\ninterface Loopback0\n ip address 10.0.0.9\nvlan 250\n",
        );
        let incremental = engine.check_dirty().unwrap();
        assert_eq!(incremental.engine.dirty_configs, 1);
        let (report, _) = batch(&engine);
        assert_reports_equal(&incremental.report, &report);
    }

    #[test]
    fn ids_are_stable_and_generations_advance() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        let id = engine.config_id("dev2").unwrap();
        assert_eq!(engine.config_generation("dev2"), Some(0));

        let same = engine.upsert_config("dev2", "vlan 1\n");
        assert_eq!(same, id, "replacement keeps the id");
        assert_eq!(engine.config_generation("dev2"), Some(1));

        let fresh = engine.upsert_config("dev2b", "vlan 2\n");
        assert_ne!(fresh, id);
        engine.remove_config("dev2b");
        let refresh = engine.upsert_config("dev2b", "vlan 2\n");
        assert_ne!(refresh, fresh, "ids are never reused");
    }

    #[test]
    fn check_without_contracts_is_an_error() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        assert_eq!(engine.check_dirty().unwrap_err(), EngineError::NoContracts);
        assert!(!engine.check_dirty().unwrap_err().to_string().is_empty());
    }

    #[test]
    fn staleness_accumulates_and_relearn_if_stale_fires() {
        let options = EngineOptions {
            staleness_threshold: 0.5,
            ..EngineOptions::default()
        };
        let mut engine = Engine::from_corpus(&corpus(), &[], options).unwrap();
        assert_eq!(engine.staleness(), 1.0, "no contracts yet");
        assert!(engine.relearn_if_stale().is_some(), "first call learns");
        assert_eq!(engine.staleness(), 0.0);
        assert!(engine.relearn_if_stale().is_none());

        // 6 configs x 5 own lines = 30 lines at learn. One replacement
        // (5 old + 5 new) is 10/30 churn: still below 0.5.
        engine.upsert_config(
            "dev0",
            "hostname DEV200\nrouter bgp 65000\ninterface Loopback0\n ip address 10.0.9.1\nvlan 350\n",
        );
        assert!(engine.staleness() > 0.0);
        assert!(engine.relearn_if_stale().is_none());

        // A second replacement crosses it.
        engine.upsert_config(
            "dev1",
            "hostname DEV201\nrouter bgp 65000\ninterface Loopback0\n ip address 10.0.9.2\nvlan 351\n",
        );
        assert!(engine.staleness() >= 0.5);
        assert!(engine.relearn_if_stale().is_some());
        assert_eq!(engine.snapshot_stats().relearns, 2);
    }

    #[test]
    fn snapshot_stats_track_edits_and_cache() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        engine.upsert_config("dev0", "vlan 900\n");
        engine.remove_config("dev5");
        let stats = engine.snapshot_stats();
        assert_eq!(stats.configs, 5);
        assert_eq!(stats.edits, 2);
        assert_eq!(stats.contracts, Some(engine.contracts().unwrap().len()));
        assert_eq!(stats.dirty_configs, 5, "nothing checked yet");
        assert!(
            stats.lex_cache_hits > 0,
            "repeated line shapes must hit the persistent cache"
        );
        engine.check_dirty().unwrap();
        let stats = engine.snapshot_stats();
        assert_eq!(stats.dirty_configs, 0);
        assert_eq!(stats.last_check.unwrap().dirty_configs, 5);
    }

    #[test]
    fn delta_relearn_is_byte_identical_to_full_relearn() {
        let delta_options = EngineOptions::default();
        assert!(delta_options.delta_learn, "delta learn is the default");
        let full_options = EngineOptions {
            delta_learn: false,
            ..EngineOptions::default()
        };
        let mut delta = Engine::from_corpus(&corpus(), &[], delta_options).unwrap();
        let mut full = Engine::from_corpus(&corpus(), &[], full_options).unwrap();

        let edits: Vec<(&str, Option<&str>)> = vec![
            ("dev2", Some("hostname DEV900\nvlan 900\n")),
            (
                "dev7",
                Some("hostname DEV907\nrouter bgp 65000\nvlan 907\n"),
            ),
            ("dev0", None),
            (
                "dev7",
                Some("hostname DEV908\nrouter bgp 65000\nvlan 908\n"),
            ),
        ];
        for step in 0..=edits.len() {
            delta.relearn();
            full.relearn();
            assert_eq!(
                delta.contracts().unwrap().to_json(),
                full.contracts().unwrap().to_json(),
                "divergence after {step} edits"
            );
            if let Some((name, text)) = edits.get(step) {
                match text {
                    Some(text) => {
                        delta.upsert_config(name, text);
                        full.upsert_config(name, text);
                    }
                    None => {
                        delta.remove_config(name);
                        full.remove_config(name);
                    }
                }
            }
        }
    }

    #[test]
    fn delta_relearn_mines_only_dirty_configs() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        let ld = engine.snapshot_stats().learn_delta;
        assert!(ld.enabled);
        assert_eq!(ld.mined_last_learn, 6, "cold start sketches everything");
        assert_eq!(ld.reused_last_learn, 0);
        assert_eq!(ld.sketches, 6);
        assert_eq!(ld.dirty, 0);

        engine.upsert_config("dev2", "hostname DEV902\nvlan 902\n");
        assert_eq!(engine.snapshot_stats().learn_delta.dirty, 1);
        engine.relearn();
        let ld = engine.snapshot_stats().learn_delta;
        assert_eq!(ld.mined_last_learn, 1, "only the edited config re-mines");
        assert_eq!(ld.reused_last_learn, 5);

        // A no-edit relearn reuses every sketch.
        engine.relearn();
        let ld = engine.snapshot_stats().learn_delta;
        assert_eq!(ld.mined_last_learn, 0);
        assert_eq!(ld.reused_last_learn, 6);
    }

    #[test]
    fn staleness_does_not_overshoot_when_the_corpus_grows() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        // Learned over 30 lines; a 90-line newcomer triples the corpus.
        let big: String = (0..90).map(|i| format!("vlan {}\n", 1000 + i)).collect();
        engine.upsert_config("dev-big", &big);
        let staleness = engine.staleness();
        assert!(
            staleness <= 1.0,
            "growth must not overshoot: got {staleness}"
        );
        // 90 changed lines over the grown 120-line corpus.
        assert!((staleness - 0.75).abs() < 1e-9, "got {staleness}");
    }

    #[test]
    fn staleness_does_not_double_discount_when_the_corpus_shrinks() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        // Learned over 30 lines; removing 3 configs churns 15 of them.
        for name in ["dev0", "dev1", "dev2"] {
            engine.remove_config(name);
        }
        let staleness = engine.staleness();
        // Against the shrunken 15-line corpus this would read 1.0,
        // double-discounting the removals already in the numerator.
        assert!((staleness - 0.5).abs() < 1e-9, "got {staleness}");

        // Removing everything still saturates and still fires a relearn.
        for name in ["dev3", "dev4", "dev5"] {
            engine.remove_config(name);
        }
        assert!((engine.staleness() - 1.0).abs() < 1e-9);
        let options = EngineOptions {
            staleness_threshold: 0.9,
            ..EngineOptions::default()
        };
        let mut engine = Engine::from_corpus(&corpus(), &[], options).unwrap();
        engine.relearn_if_stale();
        for name in ["dev0", "dev1", "dev2", "dev3", "dev4", "dev5"] {
            engine.remove_config(name);
        }
        assert!(engine.relearn_if_stale().is_some());
    }

    #[test]
    fn set_contracts_records_the_edit_generation_it_describes() {
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.relearn();
        let contracts = engine.contracts().unwrap().clone();

        engine.upsert_config("dev0", "vlan 77\n");
        assert!(engine.staleness() > 0.0);
        engine.set_contracts(contracts.clone());
        assert_eq!(engine.staleness(), 0.0, "caller asserts freshness");
        assert_eq!(engine.snapshot_stats().learn_delta.contracts_edits, 1);

        // Edits after the install accumulate staleness from that point.
        engine.upsert_config("dev1", "vlan 78\n");
        assert!(engine.staleness() > 0.0);
        let stats = engine.snapshot_stats();
        assert_eq!(stats.edits, 2);
        assert_eq!(
            stats.learn_delta.contracts_edits, 1,
            "contracts still describe edit 1"
        );
        engine.relearn();
        assert_eq!(engine.snapshot_stats().learn_delta.contracts_edits, 2);
    }

    #[test]
    fn sketches_round_trip_through_export_import() {
        let mut source = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        source.relearn();
        let bundle = source.export_sketches();

        let mut restored = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        assert_eq!(restored.import_sketches(&bundle), 6);
        assert_eq!(restored.snapshot_stats().learn_delta.sketches, 6);
        restored.relearn();
        let ld = restored.snapshot_stats().learn_delta;
        assert_eq!(ld.mined_last_learn, 0, "imported sketches are reused");
        assert_eq!(ld.reused_last_learn, 6);
        assert_eq!(
            restored.contracts().unwrap().to_json(),
            source.contracts().unwrap().to_json()
        );
    }

    #[test]
    fn import_sketches_rejects_stale_bundles() {
        let mut source = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        source.relearn();
        let bundle = source.export_sketches();

        // Format-version mismatch drops the whole bundle.
        let mut wrong_version = bundle.clone();
        if let Json::Object(fields) = &mut wrong_version {
            for (k, v) in fields.iter_mut() {
                if k == "version" {
                    *v = (SKETCH_FORMAT_VERSION + 1).to_json();
                }
            }
        }
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        assert_eq!(engine.import_sketches(&wrong_version), 0);

        // Learn-params mismatch drops the whole bundle: these sketches
        // were mined under different semantics.
        let options = EngineOptions {
            learn: LearnParams {
                support: 4,
                ..LearnParams::default()
            },
            ..EngineOptions::default()
        };
        let mut engine = Engine::from_corpus(&corpus(), &[], options).unwrap();
        assert_eq!(engine.import_sketches(&bundle), 0);

        // A replaced config's entry is stale (generation moved on); the
        // rest of the bundle still imports.
        let mut engine = Engine::from_corpus(&corpus(), &[], EngineOptions::default()).unwrap();
        engine.upsert_config("dev3", "vlan 9999\n");
        assert_eq!(engine.import_sketches(&bundle), 5);
        assert_eq!(engine.snapshot_stats().learn_delta.dirty, 1);

        // An unknown config's entry is skipped too.
        let mut engine =
            Engine::from_corpus(&corpus()[..5], &[], EngineOptions::default()).unwrap();
        assert_eq!(engine.import_sketches(&bundle), 5);
    }

    #[test]
    fn corrupt_persisted_sketches_are_dropped_not_fatal() {
        let mut image = EngineImage::from_corpus(&corpus(), &[]);
        image.configs[0].sketch = Some("{not json".to_string());
        let mut engine =
            Engine::from_image(&image, Lexer::standard(), EngineOptions::default()).unwrap();
        assert_eq!(engine.snapshot_stats().learn_delta.sketches, 0);
        // The next relearn simply re-mines everything.
        engine.relearn();
        assert_eq!(engine.snapshot_stats().learn_delta.mined_last_learn, 6);
    }

    #[test]
    fn metadata_flows_through_engine_edits() {
        let metadata = vec![("site.yaml".to_string(), "siteId: 9\n".to_string())];
        let mut engine =
            Engine::from_corpus(&corpus(), &metadata, EngineOptions::default()).unwrap();
        engine.relearn();
        engine.check_dirty().unwrap();
        engine.upsert_config("dev7", "vlan 901\n");
        let incremental = engine.check_dirty().unwrap();
        let (report, _) = batch(&engine);
        assert_reports_equal(&incremental.report, &report);
        let ds = engine.dataset();
        assert!(ds
            .configs
            .iter()
            .all(|c| (0..c.len()).any(|li| c.is_meta(li))));
    }
}
