//! WAL-shipping read replicas.
//!
//! A [`Replica`] follows a leader's state directory *without ever
//! writing to it*: it loads the leader's snapshot read-only (never
//! through [`StateDir::open`], whose `open_append` would truncate the
//! leader's in-flight tail), then tails `wal.log` by byte offset with
//! [`tail_records`] and replays each record into its own in-memory
//! [`Engine`]. The replica's engine answers CHECK/GEN/CONTRACTS reads
//! at a tracked lag — `leader applied_seq − replica applied_seq` —
//! while all writes keep routing to the leader.
//!
//! The follow protocol is deliberately dumb and self-healing:
//!
//! * **Contiguous records apply.** A tailed record with
//!   `seq == applied_seq + 1` replays directly.
//! * **Anything else resyncs.** A rotated WAL (checkpoint truncated the
//!   file under the cursor) or a sequence gap (the cursor landed
//!   mid-stream after rotation grew the new log past the stale offset)
//!   both fall back to [`Replica::resync`]: reload the snapshot, replay
//!   `wal.log.old` + `wal.log`, and resume tailing from the end.
//!   Resyncs are counted, not hidden — stats report them.
//!
//! Because the leader fsyncs each WAL append *before* acknowledging the
//! write, a replica that polls after an acknowledged write always
//! observes it: `poll()`-then-read yields lag 0 for everything the
//! client has seen confirmed.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use concord_core::ContractSet;
use concord_lexer::Lexer;

use crate::store::{load_image, StoreError};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{tail_records_vfs, Wal, WalOp, WalRecord};
use crate::{Engine, EngineOptions, ImageError};

/// Why a replica could not load or follow its leader's state.
#[derive(Debug)]
pub enum ReplicaError {
    /// Reading the leader's files failed at the I/O layer.
    Io(io::Error),
    /// The leader's snapshot failed integrity or parse checks.
    Store(StoreError),
    /// The snapshot image did not rebuild into an engine.
    Image(ImageError),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Io(e) => write!(f, "replica io error: {e}"),
            ReplicaError::Store(e) => write!(f, "replica snapshot error: {e}"),
            ReplicaError::Image(e) => write!(f, "replica image error: {e}"),
        }
    }
}

impl From<io::Error> for ReplicaError {
    fn from(e: io::Error) -> ReplicaError {
        ReplicaError::Io(e)
    }
}

/// A read-only follower of one shard leader's state directory.
pub struct Replica {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    lexer: Lexer,
    options: EngineOptions,
    engine: Engine,
    applied_seq: u64,
    /// Byte offset into the leader's live `wal.log` where the next poll
    /// resumes.
    offset: u64,
    resyncs: u64,
    reads: u64,
}

impl Replica {
    /// Attaches a replica to the leader state directory at `dir`,
    /// performing an initial full sync. The initial sync does not count
    /// toward [`Replica::resyncs`].
    pub fn attach(
        dir: &Path,
        lexer: Lexer,
        options: EngineOptions,
    ) -> Result<Replica, ReplicaError> {
        Self::attach_vfs(dir, lexer, options, Arc::new(RealVfs))
    }

    /// Like [`Replica::attach`] but with every filesystem read routed
    /// through `vfs` — the fault-injection entry point.
    pub fn attach_vfs(
        dir: &Path,
        lexer: Lexer,
        options: EngineOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Replica, ReplicaError> {
        let mut replica = Replica {
            dir: dir.to_path_buf(),
            vfs,
            lexer,
            options,
            engine: Engine::new(EngineOptions::default()),
            applied_seq: 0,
            offset: 0,
            resyncs: 0,
            reads: 0,
        };
        replica.resync()?;
        replica.resyncs = 0;
        Ok(replica)
    }

    /// Rebuilds the replica's engine from the leader's snapshot plus
    /// every intact WAL record, and repositions the tail cursor at the
    /// end of the live log.
    pub fn resync(&mut self) -> Result<(), ReplicaError> {
        self.resyncs += 1;
        // Walk the leader's full fallback ladder (segmented manifest,
        // its backup, legacy snapshot, legacy backup) read-only; a
        // leader mid-checkpoint shows either the old or the new
        // manifest, never a half state, because segments land before
        // the manifest rename.
        let image = load_image(self.vfs.as_ref(), &self.dir)
            .map_err(ReplicaError::Store)?
            .map(|load| load.image);
        let (mut engine, mut applied) = match &image {
            Some(image) => (
                Engine::from_image(image, self.lexer.clone(), self.options.clone())
                    .map_err(ReplicaError::Image)?,
                image.applied_seq,
            ),
            None => (
                Engine::with_lexer(self.lexer.clone(), self.options.clone()),
                0,
            ),
        };
        // Replay the rotated log first, then the live one; filter to
        // records past the snapshot, sort + dedup by sequence so a
        // half-rotated directory (records present in both files) is
        // harmless. A torn tail on either file simply ends that file's
        // contribution — the leader's recovery truncates it on its side.
        let (old_records, _) =
            Wal::read_records_vfs(self.vfs.as_ref(), &self.dir.join("wal.log.old"))?;
        let live = tail_records_vfs(self.vfs.as_ref(), &self.dir.join("wal.log"), 0)?;
        let mut records: Vec<WalRecord> = old_records
            .into_iter()
            .chain(live.records)
            .filter(|r| r.seq > applied)
            .collect();
        records.sort_by_key(|r| r.seq);
        records.dedup_by_key(|r| r.seq);
        for record in &records {
            apply_op(&mut engine, &record.op);
            applied = record.seq;
        }
        self.engine = engine;
        self.applied_seq = applied;
        self.offset = live.new_offset;
        Ok(())
    }

    /// One follow step: tail the live WAL from the cursor and replay
    /// whatever arrived. `leader_seq` is the leader's published applied
    /// sequence — published only *after* the append fsyncs, so every
    /// acknowledged record is on disk by the time a poll reads it.
    /// After a successful poll the replica has applied at least
    /// `leader_seq`: any shortfall means the cursor stopped pointing
    /// into a contiguous history (the leader rotated the log at a
    /// checkpoint, and the new log regrew past the stale offset) and
    /// forces a [`Replica::resync`]. Returns the number of records
    /// applied, resync replays included.
    pub fn poll(&mut self, leader_seq: u64) -> Result<usize, ReplicaError> {
        let before = self.applied_seq;
        let chunk = tail_records_vfs(self.vfs.as_ref(), &self.dir.join("wal.log"), self.offset)?;
        if chunk.rotated {
            self.resync()?;
            return Ok(self.applied_seq.saturating_sub(before) as usize);
        }
        let mut contiguous = true;
        for record in &chunk.records {
            if record.seq <= self.applied_seq {
                continue;
            }
            if record.seq != self.applied_seq + 1 {
                // Sequence gap: the cursor landed on a record boundary
                // of a rotated-and-regrown log, mid-stream.
                contiguous = false;
                break;
            }
            apply_op(&mut self.engine, &record.op);
            self.applied_seq = record.seq;
        }
        if contiguous {
            self.offset = chunk.new_offset;
        }
        if !contiguous || self.applied_seq < leader_seq {
            // Acknowledged records exist that this cursor cannot see —
            // the undetectable rotation case (new log at least as long
            // as the old one, cursor mid-line so nothing decodes).
            self.resync()?;
        }
        Ok(self.applied_seq.saturating_sub(before) as usize)
    }

    /// The replica's engine, for serving reads. Mutable because CHECK
    /// caches incremental state; the replica never mutates the corpus
    /// outside [`apply_op`].
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.reads += 1;
        &mut self.engine
    }

    /// Highest WAL sequence this replica has applied.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Replication lag in WAL records behind `leader_seq`.
    pub fn lag(&self, leader_seq: u64) -> u64 {
        leader_seq.saturating_sub(self.applied_seq)
    }

    /// How many full resynchronizations this replica has performed
    /// (rotation catch-ups and gap recoveries; the initial attach is
    /// not counted).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// How many reads this replica has served via [`Replica::engine_mut`].
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

/// Replays one WAL operation into a replica engine — the read-only
/// mirror of `ResilientEngine::replay_op`.
fn apply_op(engine: &mut Engine, op: &WalOp) {
    match op {
        WalOp::Upsert { name, text } => {
            engine.upsert_config(name, text);
        }
        WalOp::Remove { name } => {
            engine.remove_config(name);
        }
        WalOp::Learn => {
            engine.relearn();
        }
        WalOp::SetContracts { json } => {
            if let Ok(contracts) = ContractSet::from_json(json) {
                engine.set_contracts(contracts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StateDir;
    use crate::EngineImage;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("concord-replica-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn leader(dir: &Path) -> StateDir {
        let (store, _) = StateDir::open(dir).expect("open state dir");
        store
    }

    fn replica(dir: &Path) -> Replica {
        Replica::attach(dir, Lexer::standard(), EngineOptions::default()).expect("attach replica")
    }

    fn upsert(name: &str, vlan: u32) -> WalOp {
        WalOp::Upsert {
            name: name.to_string(),
            text: format!("hostname {name}\nvlan {vlan}\n"),
        }
    }

    #[test]
    fn replica_follows_appends_and_tracks_lag() {
        let dir = temp_dir("follow");
        let mut store = leader(&dir);
        let mut replica = replica(&dir);
        assert_eq!(replica.applied_seq(), 0);

        let mut leader_seq = 0;
        for (i, name) in ["r1", "r2", "r3"].iter().enumerate() {
            leader_seq = store.append(&upsert(name, 100 + i as u32)).expect("append");
        }
        assert_eq!(replica.lag(leader_seq), 3);
        assert_eq!(replica.poll(leader_seq).expect("poll"), 3);
        assert_eq!(replica.applied_seq(), leader_seq);
        assert_eq!(replica.lag(leader_seq), 0);
        assert_eq!(replica.resyncs(), 0);

        let corpus = dataset_names(replica.engine_mut());
        assert_eq!(corpus, vec!["r1", "r2", "r3"]);

        let seq = store
            .append(&WalOp::Remove { name: "r2".into() })
            .expect("append");
        assert_eq!(replica.poll(seq).expect("poll"), 1);
        assert_eq!(dataset_names(replica.engine_mut()), vec!["r1", "r3"]);
    }

    #[test]
    fn replica_resyncs_after_checkpoint_rotation() {
        let dir = temp_dir("rotate");
        let mut store = leader(&dir);
        let mut replica = replica(&dir);

        let seq = store.append(&upsert("a", 1)).expect("append");
        assert_eq!(replica.poll(seq).expect("poll"), 1);

        // Checkpoint: rotate the WAL out from under the replica's
        // cursor, then keep writing.
        let image = EngineImage::from_corpus(
            &[("a".to_string(), "hostname a\nvlan 1\n".to_string())],
            &[],
        );
        let mut image = image;
        image.applied_seq = store.next_seq() - 1;
        store.checkpoint(&image).expect("checkpoint");
        let seq = store.append(&upsert("b", 2)).expect("append");

        let applied = replica.poll(seq).expect("poll");
        assert_eq!(applied, 1, "resync replays exactly the new record");
        assert_eq!(replica.resyncs(), 1);
        assert_eq!(dataset_names(replica.engine_mut()), vec!["a", "b"]);

        // Follow-up polls tail normally again.
        let seq = store.append(&upsert("c", 3)).expect("append");
        assert_eq!(replica.poll(seq).expect("poll"), 1);
        assert_eq!(replica.resyncs(), 1);
        assert_eq!(dataset_names(replica.engine_mut()), vec!["a", "b", "c"]);
    }

    #[test]
    fn replica_attaches_mid_history_from_snapshot_plus_wal() {
        let dir = temp_dir("attach");
        let mut store = leader(&dir);
        store.append(&upsert("a", 1)).expect("append");
        let mut image = EngineImage::from_corpus(
            &[("a".to_string(), "hostname a\nvlan 1\n".to_string())],
            &[],
        );
        image.applied_seq = store.next_seq() - 1;
        store.checkpoint(&image).expect("checkpoint");
        store.append(&upsert("b", 2)).expect("append");

        let mut replica = replica(&dir);
        assert_eq!(replica.applied_seq(), store.next_seq() - 1);
        assert_eq!(dataset_names(replica.engine_mut()), vec!["a", "b"]);
    }

    #[test]
    fn replica_ignores_torn_tail_until_leader_completes_it() {
        let dir = temp_dir("torn");
        let mut store = leader(&dir);
        let mut replica = replica(&dir);
        let seq = store.append(&upsert("a", 1)).expect("append");
        assert_eq!(replica.poll(seq).expect("poll"), 1);

        // Simulate an in-flight append: a torn half-line at the tail.
        // The leader has not acknowledged it, so `leader_seq` stays at
        // the last fsynced record.
        let wal_path = dir.join("wal.log");
        let intact = std::fs::read(&wal_path).expect("read wal");
        let mut torn = intact.clone();
        torn.extend_from_slice(b"deadbeef {\"seq\": 99");
        std::fs::write(&wal_path, &torn).expect("write torn tail");

        assert_eq!(replica.poll(seq).expect("poll"), 0);
        assert_eq!(replica.resyncs(), 0, "a torn tail is not a rotation");

        // The leader completes the append; the replica picks it up from
        // the same cursor.
        std::fs::write(&wal_path, &intact).expect("restore wal");
        let mut store2 = leader(&dir); // re-open truncates nothing: tail is intact
        let seq = store2.append(&upsert("b", 2)).expect("append");
        assert_eq!(replica.poll(seq).expect("poll"), 1);
        assert_eq!(dataset_names(replica.engine_mut()), vec!["a", "b"]);
        drop(store);
    }

    fn dataset_names(engine: &mut Engine) -> Vec<String> {
        let ds = engine.dataset();
        ds.configs
            .iter()
            .map(|c| ds.name_of(c).to_string())
            .collect()
    }
}
