//! Merging per-shard check parts back into one fleet-wide answer.
//!
//! A sharded fleet holds each configuration in exactly one shard
//! engine (chosen by [`crate::ShardRouter`]), so a fleet-wide CHECK
//! runs [`Engine::check_parts`] on every shard and merges here. The
//! merge reproduces [`Engine::check_dirty`]'s report byte for byte:
//!
//! 1. **Global name order.** Every shard's parts arrive name-sorted
//!    (dataset order); the merge interleaves them into one name-sorted
//!    sequence — exactly the dataset order an unsharded engine over
//!    the union corpus would hold, because shards partition the names.
//! 2. **Per-config violations concatenate** in that order, matching
//!    the unsharded assembly loop before its final sort.
//! 3. **The unique pass replays globally.** Per-shard programs resolve
//!    a unique contract only when some local line matches it, so the
//!    sorted union of the shards' resolved indices equals the global
//!    program's resolution (compiled order is ascending contract
//!    index), and [`replay_unique_tables`] over every config's event
//!    table — empty tables included, so `once_per_config` "found none"
//!    fires for configs whose shard resolved nothing — emits the exact
//!    violations the global unique pass would.
//! 4. **The same final stable sort** by `(config, line_no,
//!    contract_index)` lands every violation in the same place; ties
//!    arrive in the same pre-sort order by steps 2–3, so stability
//!    preserves byte identity.
//!
//! Coverage merges as integer sums (`covered_lines` / `total_lines`
//! per config), from which the renderer's fraction recomputes to the
//! identical `f64`. Incremental counters (`dirty` / `reused`) sum
//! across shards — after one edit only the owning shard reports dirty
//! work, which is what makes fleet CHECK scale: the merge is O(corpus)
//! concatenation but the *recheck* is O(corpus / shards).

use concord_core::{replay_unique_tables, ContractSet, Violation};

use crate::{CheckPartConfig, CheckParts, UniqueTable};

/// A fleet-wide CHECK answer assembled from per-shard
/// [`CheckParts`] — the same facts `Engine::check_dirty` reports,
/// minus the per-config coverage vector the serve layer never renders.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckReport {
    /// All violations, in the engine's final sorted order.
    pub violations: Vec<Violation>,
    /// Σ covered lines across every configuration.
    pub covered_lines: usize,
    /// Σ total lines across every configuration.
    pub total_lines: usize,
    /// Σ per-shard dirty (rechecked) configurations.
    pub dirty_configs: usize,
    /// Σ per-shard reused (cache-patched) configurations.
    pub reused_configs: usize,
    /// Whether any shard dropped its cache for a resolution change.
    pub resolution_invalidated: bool,
}

impl FleetCheckReport {
    /// Covered fraction of all lines — the [`CoverageSummary`] formula,
    /// recomputed from the merged integer sums.
    ///
    /// [`CoverageSummary`]: concord_core::CoverageSummary
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.covered_lines as f64 / self.total_lines as f64
        }
    }
}

/// A shard's [`CheckParts`] plus the merge-ready facts a serve layer
/// caches per shard version: the shard's violations flattened and
/// pre-sorted by the engine's final `(config, line_no, contract_index)`
/// key, and its integer coverage sums.
///
/// Both are stable for as long as the shard itself is unchanged, which
/// is what makes [`merge_check_aggregates`]'s fast path scale: a fleet
/// CHECK after one edit re-aggregates only the owning shard and merges
/// the rest from cache — O(shard + total violations) instead of
/// re-walking and re-sorting every configuration in the fleet.
#[derive(Debug, Clone)]
pub struct ShardCheckAggregate {
    /// The raw per-config parts (the slow-path / unique-replay input).
    pub parts: CheckParts,
    sorted_violations: Vec<Violation>,
    covered_lines: usize,
    total_lines: usize,
}

impl ShardCheckAggregate {
    /// Flattens and pre-sorts `parts` once, at shard-recheck time.
    pub fn new(parts: CheckParts) -> ShardCheckAggregate {
        let mut sorted_violations: Vec<Violation> = parts
            .configs
            .iter()
            .flat_map(|c| c.violations.iter().cloned())
            .collect();
        // Stable, like the engine's final sort: within a config (the
        // only place keys can tie) the pre-sort order survives.
        sorted_violations.sort_by(|a, b| {
            (&a.config, a.line_no, a.contract_index).cmp(&(&b.config, b.line_no, b.contract_index))
        });
        ShardCheckAggregate {
            sorted_violations,
            covered_lines: parts.configs.iter().map(|c| c.covered_lines).sum(),
            total_lines: parts.configs.iter().map(|c| c.total_lines).sum(),
            parts,
        }
    }
}

/// Merges per-shard aggregates into the fleet-wide report —
/// byte-identical to [`merge_check_parts`] over the same shards.
///
/// When no shard resolved a unique contract, the report needs no
/// per-config walk at all: coverage merges as K integer sums, and the
/// violations are a K-way merge of the cached per-shard sorted lists.
/// Config names are disjoint across shards, so equal sort keys never
/// cross shards and the merge reproduces the single engine's stable
/// sort exactly. Unique contracts replay over every config's event
/// table by construction, so that case falls back to the full merge.
pub fn merge_check_aggregates(
    contracts: &ContractSet,
    shards: &[&ShardCheckAggregate],
) -> FleetCheckReport {
    if shards.iter().any(|s| !s.parts.unique_indices.is_empty()) {
        let refs: Vec<&CheckParts> = shards.iter().map(|s| &s.parts).collect();
        return merge_check_parts(contracts, &refs);
    }
    let total: usize = shards.iter().map(|s| s.sorted_violations.len()).sum();
    let mut violations: Vec<Violation> = Vec::with_capacity(total);
    let mut heads = vec![0usize; shards.len()];
    while violations.len() < total {
        let mut best: Option<usize> = None;
        for (i, shard) in shards.iter().enumerate() {
            let Some(v) = shard.sorted_violations.get(heads[i]) else {
                continue;
            };
            best = match best {
                Some(b) => {
                    let bv = &shards[b].sorted_violations[heads[b]];
                    if (&v.config, v.line_no, v.contract_index)
                        < (&bv.config, bv.line_no, bv.contract_index)
                    {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
                None => Some(i),
            };
        }
        let i = best.expect("an unexhausted shard list remains");
        violations.push(shards[i].sorted_violations[heads[i]].clone());
        heads[i] += 1;
    }
    FleetCheckReport {
        violations,
        covered_lines: shards.iter().map(|s| s.covered_lines).sum(),
        total_lines: shards.iter().map(|s| s.total_lines).sum(),
        dirty_configs: shards.iter().map(|s| s.parts.dirty_configs).sum(),
        reused_configs: shards.iter().map(|s| s.parts.reused_configs).sum(),
        resolution_invalidated: shards.iter().any(|s| s.parts.resolution_invalidated),
    }
}

/// Merges every shard's [`CheckParts`] into the fleet-wide report.
/// `contracts` must be the contract set every shard checked under.
/// Takes references so a serve layer can merge straight out of its
/// per-shard parts cache without cloning clean shards' parts.
pub fn merge_check_parts(contracts: &ContractSet, shards: &[&CheckParts]) -> FleetCheckReport {
    // Interleave the shards' name-sorted config lists into global name
    // order. Names are disjoint across shards, so a plain sort of
    // (shard, index) handles any shard count; each shard's internal
    // order is already correct.
    let mut order: Vec<&CheckPartConfig> = shards.iter().flat_map(|p| p.configs.iter()).collect();
    order.sort_by(|a, b| a.name.cmp(&b.name));

    let mut violations: Vec<Violation> = Vec::new();
    let mut covered_lines = 0usize;
    let mut total_lines = 0usize;
    for config in &order {
        violations.extend_from_slice(&config.violations);
        covered_lines += config.covered_lines;
        total_lines += config.total_lines;
    }

    // Sorted union of per-shard resolved unique indices = the global
    // program's unique set in compiled (ascending-index) order.
    let mut unique_indices: Vec<usize> = shards
        .iter()
        .flat_map(|p| p.unique_indices.iter().copied())
        .collect();
    unique_indices.sort_unstable();
    unique_indices.dedup();
    if !unique_indices.is_empty() {
        // Configs from shards that resolved no unique contract carry no
        // table; an empty one keeps them in the replay so their
        // "found none" violations still fire.
        let empty = UniqueTable::default();
        let tables: Vec<(&str, &UniqueTable)> = order
            .iter()
            .map(|c| (c.name.as_str(), c.unique.as_ref().unwrap_or(&empty)))
            .collect();
        violations.extend(replay_unique_tables(contracts, &unique_indices, &tables));
    }
    violations.sort_by(|a, b| {
        (&a.config, a.line_no, a.contract_index).cmp(&(&b.config, b.line_no, b.contract_index))
    });

    FleetCheckReport {
        violations,
        covered_lines,
        total_lines,
        dirty_configs: shards.iter().map(|p| p.dirty_configs).sum(),
        reused_configs: shards.iter().map(|p| p.reused_configs).sum(),
        resolution_invalidated: shards.iter().any(|p| p.resolution_invalidated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineOptions, ShardRouter};

    fn corpus(n: usize) -> Vec<(String, String)> {
        (0..n)
            .map(|i| {
                (
                    format!("dev{i}"),
                    format!(
                        "hostname DEV{}\nrouter bgp 65000\ninterface Loopback0\n ip address 10.0.0.{}\nvlan {}\n",
                        100 + i,
                        i + 1,
                        250 + i
                    ),
                )
            })
            .collect()
    }

    /// A fleet of per-shard engines over a router partition of `configs`,
    /// all loaded with the same contracts.
    fn fleet(
        configs: &[(String, String)],
        contracts: &ContractSet,
        shards: usize,
    ) -> (ShardRouter, Vec<Engine>) {
        let router = ShardRouter::new(shards);
        let mut partitions: Vec<Vec<(String, String)>> = vec![Vec::new(); shards];
        for (name, text) in configs {
            partitions[router.route(name)].push((name.clone(), text.clone()));
        }
        let engines = partitions
            .iter()
            .map(|part| {
                let mut engine =
                    Engine::from_corpus(part, &[], EngineOptions::default()).expect("shard engine");
                engine.set_contracts(contracts.clone());
                engine
            })
            .collect();
        (router, engines)
    }

    fn merged(contracts: &ContractSet, engines: &mut [Engine]) -> FleetCheckReport {
        let parts: Vec<CheckParts> = engines
            .iter_mut()
            .map(|e| e.check_parts().expect("check parts"))
            .collect();
        merge_check_parts(contracts, &parts.iter().collect::<Vec<_>>())
    }

    #[test]
    fn merged_fleet_check_equals_single_engine_check() {
        let configs = corpus(12);
        let mut single =
            Engine::from_corpus(&configs, &[], EngineOptions::default()).expect("single engine");
        single.relearn();
        let contracts = single.contracts().expect("learned").clone();

        for shards in [1usize, 2, 3, 5] {
            let (_, mut engines) = fleet(&configs, &contracts, shards);
            let fleet_report = merged(&contracts, &mut engines);
            let oracle = single.check_dirty().expect("oracle check");

            assert_eq!(
                fleet_report.violations, oracle.report.violations,
                "violations differ at {shards} shards"
            );
            let summary = oracle.report.coverage.summary();
            assert_eq!(fleet_report.total_lines, summary.total_lines);
            assert_eq!(fleet_report.covered_lines, summary.covered_lines);
            assert_eq!(fleet_report.coverage_fraction(), summary.fraction);
            assert_eq!(
                fleet_report.dirty_configs + fleet_report.reused_configs,
                configs.len()
            );
        }
    }

    #[test]
    fn merged_fleet_check_tracks_edits_and_stays_identical() {
        let configs = corpus(10);
        let mut single =
            Engine::from_corpus(&configs, &[], EngineOptions::default()).expect("single engine");
        single.relearn();
        let contracts = single.contracts().expect("learned").clone();
        let (router, mut engines) = fleet(&configs, &contracts, 3);
        merged(&contracts, &mut engines);
        single.check_dirty().expect("warm the oracle cache");

        // A duplicate vlan trips a unique contract across shard
        // boundaries; a dropped bgp line trips a presence contract. Both
        // edits reuse known line shapes, so no resolution invalidation.
        let edits = [
            ("dev1", "hostname DEV101\nrouter bgp 65000\ninterface Loopback0\n ip address 10.0.0.2\nvlan 255\n"),
            ("dev4", "hostname DEV104\ninterface Loopback0\n ip address 10.0.0.5\nvlan 254\n"),
        ];
        for (name, text) in edits {
            single.upsert_config(name, text);
            engines[router.route(name)].upsert_config(name, text);
        }

        let fleet_report = merged(&contracts, &mut engines);
        let oracle = single.check_dirty().expect("oracle check");
        assert_eq!(fleet_report.violations, oracle.report.violations);
        assert!(
            !fleet_report.violations.is_empty(),
            "edits were designed to violate"
        );
        let summary = oracle.report.coverage.summary();
        assert_eq!(fleet_report.covered_lines, summary.covered_lines);
        assert_eq!(fleet_report.total_lines, summary.total_lines);

        // Only the owning shards recheck: at most one dirty config per
        // edited shard, against the single engine's same total.
        assert_eq!(fleet_report.dirty_configs, oracle.engine.dirty_configs);
        assert_eq!(fleet_report.reused_configs, oracle.engine.reused_configs);

        // Removal replays the unique pass over the remaining tables.
        single.remove_config("dev1");
        engines[router.route("dev1")].remove_config("dev1");
        let fleet_report = merged(&contracts, &mut engines);
        let oracle = single.check_dirty().expect("oracle check");
        assert_eq!(fleet_report.violations, oracle.report.violations);
    }

    /// The aggregate fast path (no unique contracts: uniform corpus,
    /// every value repeated fleet-wide) and the unique-replay fallback
    /// (distinct per-device values) both reproduce the full merge.
    #[test]
    fn aggregate_merge_equals_full_merge_on_both_paths() {
        let uniform: Vec<(String, String)> = (0..10)
            .map(|i| {
                (
                    format!("dev{i}"),
                    "hostname DEVX\nrouter bgp 65000\nvlan 250\n".to_string(),
                )
            })
            .collect();
        for configs in [uniform, corpus(10)] {
            let mut single =
                Engine::from_corpus(&configs, &[], EngineOptions::default()).expect("single");
            single.relearn();
            let contracts = single.contracts().expect("learned").clone();
            let (router, mut engines) = fleet(&configs, &contracts, 3);
            // An edit that violates presence contracts keeps the merged
            // violation list non-trivial on the fast path too.
            let edit = ("dev2", "hostname DEVX\nvlan 9\n");
            single.upsert_config(edit.0, edit.1);
            engines[router.route(edit.0)].upsert_config(edit.0, edit.1);

            let parts: Vec<CheckParts> = engines
                .iter_mut()
                .map(|e| e.check_parts().expect("parts"))
                .collect();
            let full = merge_check_parts(&contracts, &parts.iter().collect::<Vec<_>>());
            let aggregates: Vec<ShardCheckAggregate> =
                parts.into_iter().map(ShardCheckAggregate::new).collect();
            let fast = merge_check_aggregates(&contracts, &aggregates.iter().collect::<Vec<_>>());
            assert_eq!(fast, full, "aggregate merge diverged from full merge");
            assert_eq!(
                fast.violations,
                single.check_dirty().expect("oracle").report.violations
            );
        }
    }

    #[test]
    fn empty_and_single_shard_merges_degenerate_cleanly() {
        let report = merge_check_parts(&ContractSet::default(), &[]);
        assert!(report.violations.is_empty());
        assert_eq!(report.total_lines, 0);
        assert_eq!(report.coverage_fraction(), 0.0);

        let configs = corpus(4);
        let mut single =
            Engine::from_corpus(&configs, &[], EngineOptions::default()).expect("single engine");
        single.relearn();
        let contracts = single.contracts().expect("learned").clone();
        let parts = single.check_parts().expect("parts");
        let merged_one = merge_check_parts(&contracts, &[&parts]);
        let oracle = single.check_dirty().expect("oracle");
        assert_eq!(merged_one.violations, oracle.report.violations);
    }
}
