//! Virtual filesystem layer for the durability path.
//!
//! Every filesystem operation `wal.rs` and `store.rs` perform goes
//! through the [`Vfs`] trait — never `std::fs` directly (CI greps for
//! that). Two implementations exist: the passthrough [`RealVfs`], and
//! the seeded [`FaultVfs`] that injects deterministic `EIO`/`ENOSPC`/
//! short-write/torn-rename/fsync-lie faults, counts every sync point
//! (`sync_data`/`sync_all`/directory fsync), and can simulate a crash
//! at an exact sync point for exhaustive crash-point exploration
//! (`crates/bench/tests/crash_points.rs`).
//!
//! The crash model is "friendly": writes issued before the crash point
//! remain visible after "reboot" (the page cache of a single-node
//! fault model — we enumerate *where* the process dies, not reordering
//! by the disk itself), the sync at the crash point fails, and every
//! subsequent mutating operation fails until the `FaultVfs` is
//! discarded and the directory is reopened through a healthy VFS.
//!
//! [`StorageError`] is the typed error the durability layer reports
//! upward: `NoSpace` (ENOSPC) and `Io` (everything else transient) are
//! retryable and eventually degrade the engine to read-only; `Corrupt`
//! is a checksum/framing failure that retrying cannot fix.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open writable file handle produced by a [`Vfs`]. Mutation is
/// exclusively `&mut self`, so `Sync` costs implementations nothing and
/// keeps engines holding a handle shareable across threads.
pub trait VfsFile: Send + Sync {
    /// Appends/writes the whole buffer at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file data (and metadata needed to read it back) to
    /// stable storage — a sync point.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes file data and all metadata to stable storage — a sync
    /// point.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem surface of the durability layer. Object-safe so the
/// WAL and store can hold an `Arc<dyn Vfs>` chosen at boot.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Opens an existing file for in-place writes (no truncation) —
    /// the torn-tail repair path.
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates (or truncates) a file for writing — checkpoint `.tmp`
    /// siblings.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens a file in create-append mode — the WAL.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Lists the file names (not paths) inside a directory.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Fsyncs a directory so renames/removals inside it are durable —
    /// a sync point. Best-effort on platforms that refuse to open
    /// directories.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Faults injected so far (0 for a passthrough implementation).
    fn injected_faults(&self) -> u64 {
        0
    }
}

const ENOSPC: i32 = 28;
const EIO: i32 = 5;

/// Typed storage error reported by the durability layer, so callers
/// can distinguish out-of-space from generic I/O from corruption (and
/// serve can answer `err storage-degraded` vs `err internal`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// ENOSPC — the device is out of space. Retryable once space frees.
    NoSpace(String),
    /// Any other I/O failure (EIO, permissions, a failed fsync, ...).
    Io(String),
    /// Checksum or framing mismatch — retrying cannot help.
    Corrupt(String),
}

impl StorageError {
    /// Classifies an `io::Error`: raw OS error 28 (ENOSPC) becomes
    /// [`StorageError::NoSpace`], everything else [`StorageError::Io`].
    pub fn from_io(err: io::Error) -> StorageError {
        if err.raw_os_error() == Some(ENOSPC) {
            StorageError::NoSpace(err.to_string())
        } else {
            StorageError::Io(err.to_string())
        }
    }

    /// Whether a bounded retry could plausibly succeed (`true` for
    /// `NoSpace`/`Io`, `false` for `Corrupt`).
    pub fn retryable(&self) -> bool {
        !matches!(self, StorageError::Corrupt(_))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSpace(msg) => write!(f, "no space: {msg}"),
            StorageError::Io(msg) => write!(f, "io: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Passthrough [`Vfs`] over `std::fs` — the production implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync is best-effort: some filesystems refuse to
        // open directories, and losing it only widens the crash window.
        if let Ok(dir) = File::open(path) {
            dir.sync_all()?;
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// One kind of injectable storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with EIO.
    Eio,
    /// Fail with ENOSPC.
    NoSpace,
    /// Write roughly half the buffer for real, then fail with ENOSPC —
    /// a torn mid-segment / mid-record write.
    ShortWrite,
    /// `rename` removes the source and fails — the classic
    /// non-atomic-rename crash shape (recovered by the `.bak` ladder).
    TornRename,
    /// `sync_*` returns `Ok` without flushing anything (a lying disk
    /// cache). Counted, not failed.
    FsyncLie,
}

/// Probabilities (per mille, applied per operation) for the seeded
/// probabilistic fault plan used by the soak tests. All zero by
/// default; explicit queued faults work without a plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Chance (‰) a mutating op fails with EIO.
    pub eio_per_mille: u32,
    /// Chance (‰) a mutating op fails with ENOSPC.
    pub enospc_per_mille: u32,
    /// Chance (‰) a data write is torn short.
    pub short_write_per_mille: u32,
    /// Chance (‰) a sync lies instead of flushing.
    pub fsync_lie_per_mille: u32,
    /// Chance (‰) a rename tears (removes source, then fails).
    pub torn_rename_per_mille: u32,
}

#[derive(Debug, Default)]
struct FaultState {
    /// xorshift64* state for the probabilistic plan.
    rng: u64,
    plan: FaultPlan,
    /// Explicitly queued faults, consumed front-first by the next
    /// mutating operations.
    queued: Vec<FaultKind>,
    /// Like `queued` but only consumed by sync points.
    queued_syncs: Vec<FaultKind>,
    /// When set, every mutating operation fails with this kind until
    /// cleared — the "disk is persistently broken" switch.
    fail_all: Option<FaultKind>,
}

#[derive(Debug)]
struct FaultCore {
    inner: RealVfs,
    state: Mutex<FaultState>,
    /// Sync points observed (every `sync_data`/`sync_all`/`sync_dir`).
    sync_points: AtomicU64,
    /// Crash when the sync-point counter reaches this value: that sync
    /// fails and the "process" is dead — all later mutations fail.
    crash_at_sync: AtomicU64,
    crashed: AtomicBool,
    faults: AtomicU64,
    fsync_lies: AtomicU64,
}

enum SyncAction {
    Flush,
    Lie,
}

impl FaultCore {
    fn count_fault(&self) {
        self.faults.fetch_add(1, Ordering::SeqCst);
    }

    fn dead(&self) -> Option<io::Error> {
        if self.crashed.load(Ordering::SeqCst) {
            Some(io::Error::from_raw_os_error(EIO))
        } else {
            None
        }
    }

    fn roll(state: &mut FaultState, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        // xorshift64* — deterministic, no external deps.
        let mut x = state.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) % 1000 < per_mille as u64
    }

    /// Draws the fault (if any) for one mutating non-sync operation.
    fn draw_fault(&self, is_write: bool, is_rename: bool) -> Option<FaultKind> {
        let mut state = self.state.lock().expect("fault state poisoned");
        if let Some(kind) = state.fail_all {
            return Some(kind);
        }
        if !state.queued.is_empty() {
            return Some(state.queued.remove(0));
        }
        let plan = state.plan;
        if is_write && Self::roll(&mut state, plan.short_write_per_mille) {
            return Some(FaultKind::ShortWrite);
        }
        if is_rename && Self::roll(&mut state, plan.torn_rename_per_mille) {
            return Some(FaultKind::TornRename);
        }
        if Self::roll(&mut state, plan.eio_per_mille) {
            return Some(FaultKind::Eio);
        }
        if Self::roll(&mut state, plan.enospc_per_mille) {
            return Some(FaultKind::NoSpace);
        }
        None
    }

    /// Draws the fault (if any) for one sync point.
    fn draw_sync_fault(&self) -> Option<FaultKind> {
        let mut state = self.state.lock().expect("fault state poisoned");
        if let Some(kind) = state.fail_all {
            return Some(kind);
        }
        if !state.queued_syncs.is_empty() {
            return Some(state.queued_syncs.remove(0));
        }
        if !state.queued.is_empty() {
            return Some(state.queued.remove(0));
        }
        let plan = state.plan;
        if Self::roll(&mut state, plan.fsync_lie_per_mille) {
            return Some(FaultKind::FsyncLie);
        }
        None
    }

    fn fault_error(&self, kind: FaultKind) -> io::Error {
        self.count_fault();
        match kind {
            FaultKind::NoSpace | FaultKind::ShortWrite => io::Error::from_raw_os_error(ENOSPC),
            _ => io::Error::from_raw_os_error(EIO),
        }
    }

    /// Registers one sync point; returns an error if this point is the
    /// armed crash point, a queued/planned sync fault fires, or the
    /// crash already happened.
    fn on_sync(&self) -> io::Result<SyncAction> {
        if let Some(err) = self.dead() {
            return Err(err);
        }
        let point = self.sync_points.fetch_add(1, Ordering::SeqCst) + 1;
        if point >= self.crash_at_sync.load(Ordering::SeqCst) {
            self.crashed.store(true, Ordering::SeqCst);
            self.count_fault();
            return Err(io::Error::from_raw_os_error(EIO));
        }
        match self.draw_sync_fault() {
            Some(FaultKind::FsyncLie) => {
                self.count_fault();
                self.fsync_lies.fetch_add(1, Ordering::SeqCst);
                Ok(SyncAction::Lie)
            }
            Some(kind) => Err(self.fault_error(kind)),
            None => Ok(SyncAction::Flush),
        }
    }

    /// Gate for one mutating non-sync operation. `Ok(Some(_))` means a
    /// special-shaped fault (short write / torn rename) the caller
    /// must enact itself.
    fn on_mutate(&self, is_write: bool, is_rename: bool) -> io::Result<Option<FaultKind>> {
        if let Some(err) = self.dead() {
            return Err(err);
        }
        match self.draw_fault(is_write, is_rename) {
            Some(FaultKind::ShortWrite) if is_write => Ok(Some(FaultKind::ShortWrite)),
            Some(FaultKind::TornRename) if is_rename => Ok(Some(FaultKind::TornRename)),
            Some(FaultKind::FsyncLie) => Ok(None),
            Some(kind) => Err(self.fault_error(kind)),
            None => Ok(None),
        }
    }
}

/// Fault-injecting [`Vfs`] wrapping [`RealVfs`]: deterministic under a
/// fixed seed, with explicit per-operation fault queues for targeted
/// tests, a persistent-failure switch for degraded-mode soaks, and
/// crash-at-sync-point emulation for exhaustive crash exploration.
/// Cheap to clone — clones share all counters and knobs.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    core: Arc<FaultCore>,
}

impl FaultVfs {
    /// A fault VFS with no plan and nothing queued — a pure sync-point
    /// counter until faults are armed.
    pub fn new(seed: u64) -> FaultVfs {
        FaultVfs {
            core: Arc::new(FaultCore {
                inner: RealVfs,
                state: Mutex::new(FaultState {
                    // xorshift needs a nonzero state; fold the seed in.
                    rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                    ..FaultState::default()
                }),
                sync_points: AtomicU64::new(0),
                crash_at_sync: AtomicU64::new(u64::MAX),
                crashed: AtomicBool::new(false),
                faults: AtomicU64::new(0),
                fsync_lies: AtomicU64::new(0),
            }),
        }
    }

    /// A fault VFS with a probabilistic per-operation plan.
    pub fn with_plan(seed: u64, plan: FaultPlan) -> FaultVfs {
        let vfs = FaultVfs::new(seed);
        vfs.core.state.lock().expect("fault state poisoned").plan = plan;
        vfs
    }

    /// Arms a crash at the `n`th sync point from now (1-based): that
    /// sync fails, and every subsequent mutating operation fails until
    /// the VFS is discarded.
    pub fn crash_at_sync_point(&self, n: u64) {
        let base = self.core.sync_points.load(Ordering::SeqCst);
        self.core.crash_at_sync.store(base + n, Ordering::SeqCst);
    }

    /// Queues `n` faults of `kind`, consumed by the next `n` mutating
    /// operations (writes, syncs, renames, removes, creates).
    pub fn fail_next(&self, n: usize, kind: FaultKind) {
        let mut state = self.core.state.lock().expect("fault state poisoned");
        state.queued.extend(std::iter::repeat_n(kind, n));
    }

    /// Queues `n` faults of `kind` consumed only by sync points —
    /// targeted fsync-failure tests without disturbing the data write.
    pub fn fail_next_syncs(&self, n: usize, kind: FaultKind) {
        let mut state = self.core.state.lock().expect("fault state poisoned");
        state.queued_syncs.extend(std::iter::repeat_n(kind, n));
    }

    /// Turns persistent failure on (`Some(kind)`) or off (`None`).
    /// While on, every mutating operation fails — the engine should
    /// exhaust its retries and degrade to read-only.
    pub fn fail_all_writes(&self, kind: Option<FaultKind>) {
        self.core
            .state
            .lock()
            .expect("fault state poisoned")
            .fail_all = kind;
    }

    /// Sync points observed so far.
    pub fn sync_points(&self) -> u64 {
        self.core.sync_points.load(Ordering::SeqCst)
    }

    /// Whether the simulated crash has triggered.
    pub fn crashed(&self) -> bool {
        self.core.crashed.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    pub fn faults(&self) -> u64 {
        self.core.faults.load(Ordering::SeqCst)
    }

    /// Fsync lies told so far (syncs acknowledged without flushing).
    pub fn fsync_lies(&self) -> u64 {
        self.core.fsync_lies.load(Ordering::SeqCst)
    }

    fn open_checked(
        &self,
        open: impl FnOnce(&RealVfs) -> io::Result<Box<dyn VfsFile>>,
    ) -> io::Result<Box<dyn VfsFile>> {
        self.core.on_mutate(false, false)?;
        let inner = open(&self.core.inner)?;
        Ok(Box::new(FaultHandle {
            inner,
            core: self.core.clone(),
        }))
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.core.inner.read(path)
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.open_checked(|real| real.open_write(path))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.open_checked(|real| real.create_truncate(path))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.open_checked(|real| real.open_append(path))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.core.on_mutate(false, false)?;
        self.core.inner.create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.core.on_mutate(false, true)? {
            Some(FaultKind::TornRename) => {
                // Tear the rename: the source vanishes, the target is
                // never written. Recovery must fall back to `.bak`.
                let _ = self.core.inner.remove_file(from);
                Err(self.core.fault_error(FaultKind::Eio))
            }
            _ => self.core.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.core.on_mutate(false, false)?;
        self.core.inner.remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        self.core.inner.read_dir(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.core.on_sync()? {
            SyncAction::Lie => Ok(()),
            SyncAction::Flush => self.core.inner.sync_dir(path),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.core.inner.exists(path)
    }

    fn injected_faults(&self) -> u64 {
        self.faults()
    }
}

/// A write handle that re-checks its parent [`FaultVfs`] on every
/// operation, so crashes and queued faults fire mid-stream.
struct FaultHandle {
    inner: Box<dyn VfsFile>,
    core: Arc<FaultCore>,
}

impl VfsFile for FaultHandle {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.core.on_mutate(true, false)? {
            Some(FaultKind::ShortWrite) => {
                // Land half the bytes for real, then report ENOSPC —
                // the reader-side crc/truncation machinery must cope.
                let half = buf.len() / 2;
                self.inner.write_all(&buf[..half])?;
                Err(self.core.fault_error(FaultKind::ShortWrite))
            }
            _ => self.inner.write_all(buf),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.core.on_sync()? {
            SyncAction::Lie => Ok(()),
            SyncAction::Flush => self.inner.sync_data(),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.core.on_sync()? {
            SyncAction::Lie => Ok(()),
            SyncAction::Flush => self.inner.sync_all(),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.core.on_mutate(true, false)?;
        self.inner.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("concord-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn real_vfs_round_trips_and_lists() {
        let dir = tmp_dir("real");
        let vfs = RealVfs;
        let path = dir.join("a.txt");
        let mut f = vfs.create_truncate(&path).expect("create");
        f.write_all(b"hello").expect("write");
        f.sync_all().expect("sync");
        drop(f);
        assert_eq!(vfs.read(&path).expect("read"), b"hello");
        assert!(vfs.exists(&path));
        let names = vfs.read_dir(&dir).expect("read_dir");
        assert_eq!(names, vec!["a.txt".to_string()]);
        vfs.rename(&path, &dir.join("b.txt")).expect("rename");
        assert!(!vfs.exists(&path));
        vfs.sync_dir(&dir).expect("sync_dir");
        vfs.remove_file(&dir.join("b.txt")).expect("remove");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_vfs_counts_sync_points_and_crashes_on_schedule() {
        let dir = tmp_dir("crash");
        let fault = FaultVfs::new(7);
        let path = dir.join("wal.log");
        let mut f = fault.open_append(&path).expect("open");
        f.write_all(b"one\n").expect("write");
        f.sync_data().expect("sync 1");
        assert_eq!(fault.sync_points(), 1);

        fault.crash_at_sync_point(1);
        f.write_all(b"two\n").expect("write before crash lands");
        assert!(f.sync_data().is_err(), "crash point sync must fail");
        assert!(fault.crashed());
        // After the crash every mutation fails, reads still work.
        assert!(f.write_all(b"three\n").is_err());
        assert!(fault.open_append(&path).is_err());
        assert!(fault.rename(&path, &dir.join("x")).is_err());
        // Friendly crash model: pre-crash writes are visible on reboot.
        assert_eq!(RealVfs.read(&path).expect("read back"), b"one\ntwo\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn queued_faults_fire_in_order_and_classify() {
        let dir = tmp_dir("queue");
        let fault = FaultVfs::new(3);
        let path = dir.join("f");
        let mut f = fault.create_truncate(&path).expect("create");
        fault.fail_next(1, FaultKind::NoSpace);
        let err = f.write_all(b"xxxx").expect_err("queued enospc");
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(matches!(
            StorageError::from_io(err),
            StorageError::NoSpace(_)
        ));
        // Queue drained: next write succeeds.
        f.write_all(b"ok").expect("write after queue drained");
        assert_eq!(fault.faults(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_lands_half_then_fails() {
        let dir = tmp_dir("short");
        let fault = FaultVfs::new(5);
        let path = dir.join("f");
        let mut f = fault.create_truncate(&path).expect("create");
        fault.fail_next(1, FaultKind::ShortWrite);
        assert!(f.write_all(b"abcdefgh").is_err());
        drop(f);
        assert_eq!(RealVfs.read(&path).expect("read"), b"abcd");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_drops_source_without_writing_target() {
        let dir = tmp_dir("torn");
        let fault = FaultVfs::new(9);
        let src = dir.join("src");
        let dst = dir.join("dst");
        let mut f = fault.create_truncate(&src).expect("create");
        f.write_all(b"payload").expect("write");
        drop(f);
        fault.fail_next(1, FaultKind::TornRename);
        assert!(fault.rename(&src, &dst).is_err());
        assert!(!fault.exists(&src), "torn rename removes the source");
        assert!(!fault.exists(&dst), "torn rename never creates the target");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_all_writes_blocks_until_cleared() {
        let dir = tmp_dir("failall");
        let fault = FaultVfs::new(11);
        let path = dir.join("f");
        fault.fail_all_writes(Some(FaultKind::Eio));
        assert!(fault.create_truncate(&path).is_err());
        fault.fail_all_writes(None);
        let mut f = fault.create_truncate(&path).expect("healthy again");
        f.write_all(b"x").expect("write");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_lie_acknowledges_without_flush_and_counts() {
        let dir = tmp_dir("lie");
        let fault = FaultVfs::new(13);
        let mut f = fault.create_truncate(&dir.join("f")).expect("create");
        f.write_all(b"x").expect("write");
        fault.fail_next_syncs(1, FaultKind::FsyncLie);
        f.sync_all().expect("a lie looks like success");
        assert_eq!(fault.fsync_lies(), 1);
        assert_eq!(fault.faults(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_is_deterministic_under_a_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let fault = FaultVfs::with_plan(
                seed,
                FaultPlan {
                    eio_per_mille: 300,
                    ..FaultPlan::default()
                },
            );
            (0..64)
                .map(|_| fault.core.draw_fault(false, false).is_some())
                .collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43), "different seeds should diverge");
    }

    #[test]
    fn storage_error_classifies_and_displays() {
        let enospc = StorageError::from_io(io::Error::from_raw_os_error(28));
        assert!(matches!(enospc, StorageError::NoSpace(_)));
        assert!(enospc.retryable());
        let eio = StorageError::from_io(io::Error::from_raw_os_error(5));
        assert!(matches!(eio, StorageError::Io(_)));
        assert!(eio.retryable());
        let corrupt = StorageError::Corrupt("bad crc".to_string());
        assert!(!corrupt.retryable());
        assert_eq!(corrupt.to_string(), "corrupt: bad crc");
    }
}
