//! The pure-data mirror of an [`Engine`](crate::Engine) snapshot.
//!
//! An [`EngineImage`] holds everything needed to rebuild an engine that
//! is indistinguishable from the original: configuration texts in
//! dataset order with their stable ids and generations, the metadata
//! corpus, the contract set (kept as its exact JSON serialization so a
//! round trip is byte-preserving), and the lifetime counters. It is
//! deliberately *not* the engine itself — no interner, no caches, no
//! check outcomes — so it is trivially unwind-safe and serializable,
//! which is what both the crash-safe store and the panic-recovery path
//! need: a last-known-good state that a poisoned engine can never have
//! corrupted.
//!
//! The engine does not retain raw configuration texts (its [`Dataset`]
//! holds lexed lines only), so the image cannot be captured from a live
//! engine after the fact. Instead the resilient layer builds the image
//! from the same corpus the engine is built from and applies every
//! mutation to both, syncing the counters from the engine after each
//! successful operation.
//!
//! [`Dataset`]: concord_core::Dataset

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

use crate::EngineCounters;

/// One configuration inside an [`EngineImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageConfig {
    /// Configuration name (unique; images keep configs name-sorted,
    /// matching engine dataset order).
    pub name: String,
    /// Full configuration text.
    pub text: String,
    /// Stable id ([`ConfigId`](crate::ConfigId) payload).
    pub id: u64,
    /// Edit generation.
    pub generation: u64,
    /// This configuration's learn sketch as a complete single-config
    /// `Engine::export_sketches`-shaped bundle, captured at checkpoint
    /// time. Purely derived state: `None` (or a stale/undecodable
    /// bundle) is simply re-mined by the next delta relearn. Keeping the
    /// sketch *per config* is what makes segmented checkpoints O(dirty):
    /// an unedited config's segment — text and sketch — never has to be
    /// re-serialized.
    pub sketch: Option<String>,
}

/// A serializable last-known-good snapshot of an engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineImage {
    /// Configurations in dataset (name-sorted) order.
    pub configs: Vec<ImageConfig>,
    /// Metadata corpus (name, text), as passed to the dataset builder.
    pub metadata: Vec<(String, String)>,
    /// The contract set's exact JSON serialization (`None` before any
    /// learn/load). Stored as a string so restore round-trips exactly.
    pub contracts: Option<String>,
    /// Lifetime counters, synced from the live engine after every
    /// successful operation.
    pub counters: EngineCounters,
    /// Sequence number of the last WAL record folded into this image.
    /// Replay skips records at or below this mark.
    pub applied_seq: u64,
}

/// Why an [`EngineImage`] could not be decoded or rebuilt.
#[derive(Debug)]
pub enum ImageError {
    /// The image JSON did not have the expected shape.
    Decode(JsonError),
    /// The restored corpus failed to build a dataset.
    Dataset(concord_core::DatasetError),
    /// The stored contract JSON failed to parse.
    Contracts(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Decode(e) => write!(f, "bad engine image: {e}"),
            ImageError::Dataset(e) => write!(f, "rebuilding dataset from image: {e}"),
            ImageError::Contracts(e) => write!(f, "bad contracts in image: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl EngineImage {
    /// Builds the image of a fresh engine over `configs` + `metadata` —
    /// the mirror of [`Engine::from_corpus`](crate::Engine::from_corpus):
    /// name-sorted, ids `0..n`, generation 0.
    pub fn from_corpus(configs: &[(String, String)], metadata: &[(String, String)]) -> EngineImage {
        let mut sorted: Vec<(String, String)> = configs.to_vec();
        sorted.sort();
        let configs: Vec<ImageConfig> = sorted
            .into_iter()
            .enumerate()
            .map(|(i, (name, text))| ImageConfig {
                name,
                text,
                id: i as u64,
                generation: 0,
                sketch: None,
            })
            .collect();
        let next_id = configs.len() as u64;
        EngineImage {
            configs,
            metadata: metadata.to_vec(),
            contracts: None,
            counters: EngineCounters {
                next_id,
                ..EngineCounters::default()
            },
            applied_seq: 0,
        }
    }

    /// Inserts or replaces a configuration, mirroring
    /// [`Engine::upsert_config`](crate::Engine::upsert_config): replace
    /// in place keeps the id and bumps the generation; insert goes at
    /// the name-sorted position with a fresh id from `next_id`.
    ///
    /// Only the structural state (texts, ids, generations) is
    /// maintained here; the caller syncs [`EngineImage::counters`] from
    /// the live engine afterwards.
    pub fn upsert(&mut self, name: &str, text: &str) {
        match self.configs.binary_search_by(|c| c.name.as_str().cmp(name)) {
            Ok(i) => {
                self.configs[i].text = text.to_string();
                self.configs[i].generation += 1;
                // The text changed, so any captured sketch is stale by
                // generation; the next checkpoint re-exports it.
                self.configs[i].sketch = None;
            }
            Err(i) => {
                self.configs.insert(
                    i,
                    ImageConfig {
                        name: name.to_string(),
                        text: text.to_string(),
                        id: self.counters.next_id,
                        generation: 0,
                        sketch: None,
                    },
                );
                self.counters.next_id += 1;
            }
        }
    }

    /// Removes a configuration, mirroring
    /// [`Engine::remove_config`](crate::Engine::remove_config). Returns
    /// `true` when the configuration existed.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.configs.binary_search_by(|c| c.name.as_str().cmp(name)) {
            Ok(i) => {
                self.configs.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// The configuration texts in image order, ready for
    /// [`Engine::from_corpus`](crate::Engine::from_corpus) — the
    /// from-scratch oracle the fault harness compares against.
    pub fn corpus(&self) -> Vec<(String, String)> {
        self.configs
            .iter()
            .map(|c| (c.name.clone(), c.text.clone()))
            .collect()
    }
}

impl ToJson for ImageConfig {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), self.name.to_json()),
            ("text".to_string(), self.text.to_json()),
            ("id".to_string(), self.id.to_json()),
            ("generation".to_string(), self.generation.to_json()),
            (
                "sketch".to_string(),
                match &self.sketch {
                    Some(json) => Json::Str(json.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for ImageConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ImageConfig {
            name: req_str(value, "name")?,
            text: req_str(value, "text")?,
            id: req_u64(value, "id")?,
            generation: req_u64(value, "generation")?,
            // Tolerant: sketches are derived state, so a missing field
            // (an old snapshot) or a non-string value loads as "no
            // sketch" rather than failing the config.
            sketch: value
                .get("sketch")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

impl ToJson for EngineCounters {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("next_id".to_string(), self.next_id.to_json()),
            ("edits".to_string(), self.edits.to_json()),
            ("relearns".to_string(), self.relearns.to_json()),
            (
                "contracts_epoch".to_string(),
                self.contracts_epoch.to_json(),
            ),
            (
                "lines_at_last_learn".to_string(),
                self.lines_at_last_learn.to_json(),
            ),
            (
                "changed_lines_since_learn".to_string(),
                self.changed_lines_since_learn.to_json(),
            ),
            (
                "contracts_edits".to_string(),
                self.contracts_edits.to_json(),
            ),
        ])
    }
}

impl FromJson for EngineCounters {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(EngineCounters {
            next_id: req_u64(value, "next_id")?,
            edits: req_u64(value, "edits")?,
            relearns: req_u64(value, "relearns")?,
            contracts_epoch: req_u64(value, "contracts_epoch")?,
            lines_at_last_learn: req_u64(value, "lines_at_last_learn")? as usize,
            changed_lines_since_learn: req_u64(value, "changed_lines_since_learn")? as usize,
            // Added with the incremental-learning work: absent in older
            // snapshots, where 0 ("contracts set before any edit") is
            // the conservative reading.
            contracts_edits: value
                .get("contracts_edits")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        })
    }
}

impl ToJson for EngineImage {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "configs".to_string(),
                Json::Array(self.configs.iter().map(ToJson::to_json).collect()),
            ),
            (
                "metadata".to_string(),
                Json::Array(
                    self.metadata
                        .iter()
                        .map(|(n, t)| Json::Array(vec![n.to_json(), t.to_json()]))
                        .collect(),
                ),
            ),
            (
                "contracts".to_string(),
                match &self.contracts {
                    Some(json) => Json::Str(json.clone()),
                    None => Json::Null,
                },
            ),
            ("counters".to_string(), self.counters.to_json()),
            ("applied_seq".to_string(), self.applied_seq.to_json()),
        ])
    }
}

impl FromJson for EngineImage {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let configs = value
            .get("configs")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError::custom("image missing configs array"))?
            .iter()
            .map(ImageConfig::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let metadata = value
            .get("metadata")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError::custom("image missing metadata array"))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .ok_or_else(|| JsonError::custom("metadata entry is not a pair"))?;
                match pair {
                    [n, t] => Ok((
                        n.as_str()
                            .ok_or_else(|| JsonError::custom("metadata name is not a string"))?
                            .to_string(),
                        t.as_str()
                            .ok_or_else(|| JsonError::custom("metadata text is not a string"))?
                            .to_string(),
                    )),
                    _ => Err(JsonError::custom("metadata entry is not a pair")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let contracts = match value.get("contracts") {
            None => None,
            Some(Json::Null) => None,
            Some(j) => Some(
                j.as_str()
                    .ok_or_else(|| JsonError::custom("contracts is not a string"))?
                    .to_string(),
            ),
        };
        let counters = value
            .get("counters")
            .map(EngineCounters::from_json)
            .transpose()?
            .ok_or_else(|| JsonError::custom("image missing counters"))?;
        let applied_seq = value
            .get("applied_seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError::custom("image missing applied_seq"))?;
        let mut image = EngineImage {
            configs,
            metadata,
            contracts,
            counters,
            applied_seq,
        };
        // Snapshots written before sketches moved into the per-config
        // segments carried one monolithic `Engine::export_sketches`
        // bundle; split it into per-config single-entry bundles so the
        // rest of the engine only ever sees the per-config shape.
        if let Some(bundle) = value.get("sketches").and_then(Json::as_str) {
            distribute_legacy_sketches(&mut image.configs, bundle);
        }
        Ok(image)
    }
}

/// Splits a legacy monolithic sketch bundle into per-config
/// single-entry bundles (each self-contained with the format version
/// and learn-params fingerprint, so `Engine::import_sketches` applies
/// its staleness guards unchanged). Best-effort: an unparsable bundle
/// or an unknown config name is silently dropped — sketches are derived
/// state and re-mining is always correct.
fn distribute_legacy_sketches(configs: &mut [ImageConfig], bundle: &str) {
    let Ok(bundle) = Json::parse(bundle) else {
        return;
    };
    let (Some(version), Some(params)) = (bundle.get("version"), bundle.get("params")) else {
        return;
    };
    let Some(entries) = bundle.get("configs").and_then(Json::as_array) else {
        return;
    };
    for entry in entries {
        let Some(name) = entry.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Ok(i) = configs.binary_search_by(|c| c.name.as_str().cmp(name)) else {
            continue;
        };
        let single = Json::Object(vec![
            ("version".to_string(), version.clone()),
            ("params".to_string(), params.clone()),
            ("configs".to_string(), Json::Array(vec![entry.clone()])),
        ]);
        configs[i].sketch = Some(single.render());
    }
}

fn req_str(value: &Json, key: &str) -> Result<String, JsonError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| JsonError::custom(format!("missing string field {key:?}")))
}

fn req_u64(value: &Json, key: &str) -> Result<u64, JsonError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| JsonError::custom(format!("missing integer field {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineOptions};

    fn corpus() -> Vec<(String, String)> {
        (0..4)
            .map(|i| (format!("dev{i}"), format!("vlan {}\nmtu 1500\n", 10 + i)))
            .collect()
    }

    #[test]
    fn image_round_trips_through_json() {
        let mut image = EngineImage::from_corpus(&corpus(), &[]);
        image.upsert("dev1", "vlan 99\n");
        image.contracts = Some("{\"schema\": \"x\"}".to_string());
        image.configs[0].sketch = Some("{\"version\": 1}".to_string());
        image.counters.contracts_edits = 3;
        image.applied_seq = 7;
        let json = image.to_json().render();
        let back = EngineImage::from_json(&Json::parse(&json).expect("parses")).expect("decodes");
        assert_eq!(image, back);
    }

    #[test]
    fn old_images_without_sketches_still_decode() {
        // Snapshots written before the sketches field / contracts_edits
        // counter existed must keep loading.
        let mut image = EngineImage::from_corpus(&corpus(), &[]);
        image.contracts = Some("{\"schema\": \"x\"}".to_string());
        let json = image.to_json();
        let Json::Object(pairs) = json else {
            panic!("image serializes as an object")
        };
        let pruned = Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k == "counters" {
                        let Json::Object(counters) = v else {
                            panic!("counters serialize as an object")
                        };
                        (
                            k,
                            Json::Object(
                                counters
                                    .into_iter()
                                    .filter(|(ck, _)| ck != "contracts_edits")
                                    .collect(),
                            ),
                        )
                    } else {
                        (k, v)
                    }
                })
                .filter(|(k, _)| k != "sketches")
                .collect(),
        );
        let back = EngineImage::from_json(&pruned).expect("old shape decodes");
        assert!(back.configs.iter().all(|c| c.sketch.is_none()));
        assert_eq!(back.counters.contracts_edits, 0);
        assert_eq!(back.configs, image.configs);
    }

    #[test]
    fn legacy_monolithic_sketch_bundle_distributes_per_config() {
        // A pre-segmentation snapshot carried one top-level `sketches`
        // bundle; decoding must split it into self-contained per-config
        // bundles (version + params preserved) and drop unknown names.
        let image = EngineImage::from_corpus(&corpus(), &[]);
        let Json::Object(mut pairs) = image.to_json() else {
            panic!("image serializes as an object")
        };
        let bundle = concat!(
            "{\"version\": 1, \"params\": \"fp\", \"configs\": [",
            "{\"name\": \"dev2\", \"generation\": 0, \"sketch\": {}},",
            "{\"name\": \"ghost\", \"generation\": 0, \"sketch\": {}}]}",
        );
        pairs.push(("sketches".to_string(), Json::Str(bundle.to_string())));
        let back = EngineImage::from_json(&Json::Object(pairs)).expect("decodes");
        let dev2 = back
            .configs
            .iter()
            .find(|c| c.name == "dev2")
            .expect("dev2 present");
        let single = Json::parse(dev2.sketch.as_deref().expect("distributed")).expect("parses");
        assert_eq!(single.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(single.get("params").and_then(Json::as_str), Some("fp"));
        assert_eq!(
            single
                .get("configs")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        assert!(back
            .configs
            .iter()
            .filter(|c| c.name != "dev2")
            .all(|c| c.sketch.is_none()));
    }

    #[test]
    fn image_mirrors_engine_ids_and_generations() {
        let mut engine =
            Engine::from_corpus(&corpus(), &[], EngineOptions::default()).expect("corpus builds");
        let mut image = EngineImage::from_corpus(&corpus(), &[]);

        for (name, text) in [
            ("dev1", "vlan 77\n"),
            ("aaa", "vlan 1\n"),
            ("dev1", "vlan 78\n"),
        ] {
            engine.upsert_config(name, text);
            image.upsert(name, text);
        }
        engine.remove_config("dev3");
        assert!(image.remove("dev3"));
        assert!(!image.remove("dev3"));
        image.counters = engine.counters();

        let pairs: Vec<(String, u64)> = image
            .configs
            .iter()
            .map(|c| (c.name.clone(), c.generation))
            .collect();
        assert_eq!(pairs, engine.generations());
        for (i, c) in image.configs.iter().enumerate() {
            assert_eq!(Some(crate::ConfigId(c.id)), engine.id_at(i));
        }
    }

    #[test]
    fn rebuilt_engine_matches_original_report() {
        let mut engine =
            Engine::from_corpus(&corpus(), &[], EngineOptions::default()).expect("corpus builds");
        let mut image = EngineImage::from_corpus(&corpus(), &[]);
        engine.relearn();
        image.contracts = Some(engine.contracts().expect("just learned").to_json());
        engine.upsert_config("dev9", "vlan 10\n");
        image.upsert("dev9", "vlan 10\n");
        image.counters = engine.counters();
        let want = engine.check_dirty().expect("check runs").report;

        let mut rebuilt = Engine::from_image(
            &image,
            concord_lexer::Lexer::standard(),
            EngineOptions::default(),
        )
        .expect("image rebuilds");
        assert_eq!(rebuilt.counters(), engine.counters());
        assert_eq!(rebuilt.generations(), engine.generations());
        let got = rebuilt.check_dirty().expect("check runs").report;
        assert_eq!(want.violations, got.violations);
        assert_eq!(
            want.coverage.per_config.len(),
            got.coverage.per_config.len()
        );
    }
}
