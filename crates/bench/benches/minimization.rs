//! Micro-benchmark: the graph machinery behind contract minimization
//! (§3.6) — SCC computation and transitive reduction on the shapes the
//! relation graph actually takes (equality cliques joined by chains).

use concord_bench::microbench::bench;
use concord_graph::DiGraph;

/// Builds `cliques` mutually-equal groups of size `k`, chained together —
/// the worst case motivating minimization (n² edges per clique).
fn clique_chain(cliques: usize, k: usize) -> DiGraph {
    let mut g = DiGraph::new(cliques * k);
    for c in 0..cliques {
        let base = c * k;
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    g.add_edge(base + i, base + j);
                }
            }
        }
        if c + 1 < cliques {
            g.add_edge(base, base + k);
        }
    }
    g
}

fn main() {
    for &(cliques, k) in &[(10usize, 5usize), (50, 10), (100, 10)] {
        let graph = clique_chain(cliques, k);
        bench(&format!("scc/{cliques}x{k}"), || graph.scc());
        bench(&format!("condense_reduce/{cliques}x{k}"), || {
            let (dag, _) = graph.condensation();
            dag.transitive_reduction()
        });
    }

    // A dense DAG: transitive reduction's heavier case.
    let mut dag = DiGraph::new(200);
    for u in 0..200usize {
        for v in (u + 1)..200 {
            if (u * 7 + v * 13) % 5 == 0 {
                dag.add_edge(u, v);
            }
        }
    }
    bench("transitive_reduction/dense200", || {
        dag.transitive_reduction()
    });
}
