//! Criterion benchmark: the graph machinery behind contract minimization
//! (§3.6) — SCC computation and transitive reduction on the shapes the
//! relation graph actually takes (equality cliques joined by chains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use concord_graph::DiGraph;

/// Builds `cliques` mutually-equal groups of size `k`, chained together —
/// the worst case motivating minimization (n² edges per clique).
fn clique_chain(cliques: usize, k: usize) -> DiGraph {
    let mut g = DiGraph::new(cliques * k);
    for c in 0..cliques {
        let base = c * k;
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    g.add_edge(base + i, base + j);
                }
            }
        }
        if c + 1 < cliques {
            g.add_edge(base, base + k);
        }
    }
    g
}

fn minimization_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_and_reduction");
    for &(cliques, k) in &[(10usize, 5usize), (50, 10), (100, 10)] {
        let graph = clique_chain(cliques, k);
        group.bench_with_input(
            BenchmarkId::new("scc", format!("{cliques}x{k}")),
            &graph,
            |b, g| b.iter(|| g.scc()),
        );
        group.bench_with_input(
            BenchmarkId::new("condense_reduce", format!("{cliques}x{k}")),
            &graph,
            |b, g| {
                b.iter(|| {
                    let (dag, _) = g.condensation();
                    dag.transitive_reduction()
                })
            },
        );
    }
    group.finish();

    // A dense DAG: transitive reduction's heavier case.
    let mut dag = DiGraph::new(200);
    for u in 0..200usize {
        for v in (u + 1)..200 {
            if (u * 7 + v * 13) % 5 == 0 {
                dag.add_edge(u, v);
            }
        }
    }
    c.bench_function("transitive_reduction/dense200", |b| {
        b.iter(|| dag.transitive_reduction())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = minimization_benches
}
criterion_main!(benches);
