//! Micro-benchmark: indexed relational learning versus the brute-force
//! baseline (the asymptotic gap behind §5.2).

use std::time::Duration;

use concord_baseline::naive;
use concord_bench::microbench::bench;
use concord_core::{learn, Dataset, LearnParams};

fn make_dataset(devices: usize) -> Dataset {
    let configs: Vec<(String, String)> = (0..devices)
        .map(|d| {
            let mut text = String::new();
            text.push_str(&format!("hostname DEV{}\n", 1000 + d));
            for v in 0..12 {
                let vlan = 200 + v;
                text.push_str(&format!(
                    "vlan {vlan}\n rd 10.0.{d}.1:10{vlan}\n vni {vlan}\n"
                ));
            }
            for i in 0..8 {
                text.push_str(&format!(
                    "interface Ethernet{i}\n ip address 10.{d}.0.{i}\n"
                ));
                text.push_str(&format!("seq {} permit 10.{d}.0.{i}/32\n", 10 * (i + 1)));
            }
            (format!("dev{d}"), text)
        })
        .collect();
    Dataset::from_named_texts(&configs, &[]).unwrap()
}

fn relational_params() -> LearnParams {
    LearnParams {
        enable_present: false,
        enable_ordering: false,
        enable_type: false,
        enable_sequence: false,
        enable_unique: false,
        minimize: false,
        ..LearnParams::default()
    }
}

fn main() {
    let params = relational_params();
    for devices in [6usize, 12, 24] {
        let dataset = make_dataset(devices);
        bench(&format!("relational_mining/indexed/{devices}"), || {
            learn(&dataset, &params)
        });
        bench(&format!("relational_mining/bruteforce/{devices}"), || {
            naive::mine_with_deadline(&dataset, &params, Duration::from_secs(600))
                .expect("bench sizes fit the deadline")
        });
    }
}
