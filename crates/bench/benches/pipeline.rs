//! Criterion benchmarks for the end-to-end pipeline: dataset
//! construction (embed + lex), learning, and checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use concord_core::{check_parallel, learn, Dataset, LearnParams};
use concord_datagen::{generate_role, standard_roles};

fn pipeline_benches(c: &mut Criterion) {
    let spec = standard_roles(0.25)
        .into_iter()
        .find(|s| s.name == "W2")
        .expect("W2 exists");
    let role = generate_role(&spec, 7);
    let params = LearnParams::default();

    c.bench_function("build_dataset/W2", |b| {
        b.iter(|| Dataset::from_named_texts(&role.configs, &role.metadata).unwrap())
    });

    let dataset = Dataset::from_named_texts(&role.configs, &role.metadata).unwrap();
    c.bench_function("learn/W2", |b| b.iter(|| learn(&dataset, &params)));

    let contracts = learn(&dataset, &params);
    c.bench_function("check/W2", |b| {
        b.iter(|| check_parallel(&contracts, &dataset, 1))
    });

    // Scaling: learning time versus number of devices.
    let mut group = c.benchmark_group("learn_scaling");
    let mut takes = vec![4usize, 8, role.configs.len()];
    takes.dedup();
    for take in takes {
        let subset: Vec<(String, String)> = role.configs.iter().take(take).cloned().collect();
        let ds = Dataset::from_named_texts(&subset, &role.metadata).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(take), &ds, |b, ds| {
            b.iter(|| learn(ds, &params))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pipeline_benches
}
criterion_main!(benches);
