//! Micro-benchmarks for the end-to-end pipeline: dataset construction
//! (embed + lex), learning, and checking.

use concord_bench::microbench::bench;
use concord_core::{check_parallel, learn, Dataset, LearnParams};
use concord_datagen::{generate_role, standard_roles};

fn main() {
    let spec = standard_roles(0.25)
        .into_iter()
        .find(|s| s.name == "W2")
        .expect("W2 exists");
    let role = generate_role(&spec, 7);
    let params = LearnParams::default();

    bench("build_dataset/W2", || {
        Dataset::from_named_texts(&role.configs, &role.metadata).unwrap()
    });

    let dataset = Dataset::from_named_texts(&role.configs, &role.metadata).unwrap();
    bench("learn/W2", || learn(&dataset, &params));

    let contracts = learn(&dataset, &params);
    bench("check/W2", || check_parallel(&contracts, &dataset, 1));

    // Scaling: learning time versus number of devices.
    let mut takes = vec![4usize, 8, role.configs.len()];
    takes.dedup();
    for take in takes {
        let subset: Vec<(String, String)> = role.configs.iter().take(take).cloned().collect();
        let ds = Dataset::from_named_texts(&subset, &role.metadata).unwrap();
        bench(&format!("learn_scaling/{take}"), || learn(&ds, &params));
    }
}
