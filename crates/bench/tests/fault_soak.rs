//! Randomized fault-injection soak for the resilient engine.
//!
//! A seeded [`FaultPlan`] drives a durable [`ResilientEngine`] through
//! a stream of edits while rotating through every storage- and
//! panic-level fault class: torn WAL tails, truncated checkpoint
//! manifests, torn per-config segments, and forced panics inside
//! upsert / check / learn. After **every** fault
//! the engine must still answer, and its CHECK report must match — byte
//! for byte — a clean engine rebuilt from scratch out of the recovered
//! image (the oracle the paper's incremental-equivalence argument rests
//! on). Request-level faults (malformed / oversized / disconnect) are
//! protocol concerns and are soaked at the serve layer in
//! `concord-cli`'s robustness tests.
//!
//! Everything is a pure function of `CONCORD_SOAK_SEED` (default
//! `0xC0C0`), and `CONCORD_SOAK_ITERS` (default 48) scales the run for
//! CI soak jobs. A failing step prints both so it replays exactly.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use concord_core::{CheckReport, ContractSet};
use concord_engine::fault::{FaultKind, FaultPlan, ALL_FAULTS};
// The storage-level (VFS) fault types share names with the plan-level
// ones above; alias them apart.
use concord_engine::{Engine, EngineFault, EngineOptions, OpKind, ResilientEngine};
use concord_engine::{FaultKind as StorageFault, FaultVfs};
use concord_lexer::Lexer;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn soak_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concord-fault-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders a check report the way the serve layer does, so "matches
/// byte for byte" means the bytes a client would actually see.
fn render(report: &CheckReport) -> String {
    let mut s = String::new();
    for v in &report.violations {
        let _ = writeln!(s, "{v}");
    }
    let summary = report.coverage.summary();
    let _ = writeln!(
        s,
        "{} violations; coverage {:.3}% of {} lines",
        report.violations.len(),
        summary.fraction * 100.0,
        summary.total_lines,
    );
    s
}

/// The from-scratch oracle: a fresh engine built out of the resilient
/// engine's last-known-good image, checked in full.
fn oracle(me: &ResilientEngine) -> String {
    let image = me.image();
    let mut oracle =
        Engine::from_corpus(&image.corpus(), &image.metadata, EngineOptions::default())
            .expect("oracle builds");
    if let Some(json) = &image.contracts {
        oracle.set_contracts(ContractSet::from_json(json).expect("image contracts parse"));
    }
    render(&oracle.check_dirty().expect("oracle checks").report)
}

/// The learn oracle: the contract set a full (non-delta) relearn of
/// the recovered corpus produces, as its canonical JSON.
fn learn_oracle(me: &ResilientEngine) -> String {
    let image = me.image();
    let options = EngineOptions {
        delta_learn: false,
        ..EngineOptions::default()
    };
    let mut oracle = Engine::from_corpus(&image.corpus(), &image.metadata, options)
        .expect("learn oracle builds");
    oracle.relearn();
    oracle.contracts().expect("learned").to_json()
}

fn reboot(dir: &Path) -> ResilientEngine {
    let (mut back, _) =
        ResilientEngine::with_store(&[], &[], Lexer::standard(), EngineOptions::default(), dir)
            .expect("reboot after fault");
    back.set_checkpoint_every(4);
    back
}

#[test]
fn storage_and_panic_fault_soak() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let iters = env_u64("CONCORD_SOAK_ITERS", 48) as usize;
    let dir = soak_dir();
    let mut plan = FaultPlan::new(seed);

    let corpus: Vec<(String, String)> = (0..8)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let (mut me, resumed) = ResilientEngine::with_store(
        &corpus,
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        &dir,
    )
    .expect("boots");
    assert!(!resumed);
    me.set_checkpoint_every(4);
    me.relearn().expect("initial learn");

    let mut reboots = 0u64;
    for step in 0..iters {
        // Seeded edit traffic between faults.
        match plan.index(4) {
            0 | 1 => {
                let name = plan.device_name(10);
                let text = plan.config_text();
                me.upsert(&name, &text)
                    .unwrap_or_else(|e| panic!("step {step}: upsert failed: {e}"));
            }
            2 => {
                let name = plan.device_name(10);
                let _ = me
                    .remove(&name)
                    .unwrap_or_else(|e| panic!("step {step}: remove failed: {e}"));
            }
            _ => {
                me.relearn()
                    .unwrap_or_else(|e| panic!("step {step}: relearn failed: {e}"));
            }
        }

        // Rotate deterministically through every fault class so a short
        // run still covers all of them; the *shape* of each fault (how
        // many bytes survive a tear, which device a panic hits) stays
        // seeded.
        let fault = ALL_FAULTS[step % ALL_FAULTS.len()];
        match fault {
            FaultKind::TornWal => {
                drop(me);
                let _ = plan.tear_wal(&dir).expect("tear wal");
                me = reboot(&dir);
                reboots += 1;
            }
            FaultKind::TruncatedSnapshot => {
                drop(me);
                let _ = plan.truncate_snapshot(&dir).expect("truncate manifest");
                me = reboot(&dir);
                reboots += 1;
            }
            FaultKind::TornSegment => {
                drop(me);
                let _ = plan.tear_fresh_segment(&dir).expect("tear segment");
                me = reboot(&dir);
                reboots += 1;
            }
            FaultKind::PanicUpsert => {
                me.arm_panic(OpKind::Upsert);
                let err = me.upsert(&plan.device_name(10), &plan.config_text());
                assert!(
                    matches!(err, Err(EngineFault::Panicked(_))),
                    "step {step}: expected injected panic, got {err:?}"
                );
            }
            FaultKind::PanicCheck => {
                me.arm_panic(OpKind::Check);
                let err = me.check();
                assert!(
                    matches!(err, Err(EngineFault::Panicked(_))),
                    "step {step}: expected injected panic, got {:?}",
                    err.map(|r| r.engine)
                );
            }
            FaultKind::PanicLearn => {
                me.arm_panic(OpKind::Learn);
                let err = me.relearn();
                assert!(
                    matches!(err, Err(EngineFault::Panicked(_))),
                    "step {step}: expected injected panic, got {err:?}"
                );
            }
            // Request-level faults: exercised against the serve layer in
            // concord-cli's robustness tests, no engine-level analogue.
            FaultKind::MalformedRequest | FaultKind::OversizedRequest | FaultKind::Disconnect => {}
            // Fleet faults: replication lag, shard failover, and stale
            // replica reads live above a single engine — soaked against
            // a real sharded server in `tests/fleet_soak.rs`.
            FaultKind::ReplicaLag | FaultKind::ShardCrash | FaultKind::StaleReplicaRead => {}
        }

        // Post-fault invariant: the engine answers, and byte-for-byte
        // agrees with a clean rebuild of its own image.
        let got = render(
            &me.check()
                .unwrap_or_else(|e| panic!("step {step} fault {fault:?}: check failed: {e}"))
                .report,
        );
        let want = oracle(&me);
        assert_eq!(
            got, want,
            "step {step} fault {fault:?} seed {seed}: post-fault check diverged from oracle"
        );

        // Sketch-replay invariant: a delta relearn on the recovered
        // engine — folding whatever sketches survived checkpointing,
        // torn storage, and WAL replay — must byte-identically match a
        // full relearn of the same corpus.
        if step % 4 == 3 {
            me.relearn()
                .unwrap_or_else(|e| panic!("step {step}: post-fault relearn failed: {e}"));
            let got = me.image().contracts.clone().expect("just learned");
            assert_eq!(
                got,
                learn_oracle(&me),
                "step {step} fault {fault:?} seed {seed}: delta relearn diverged from full relearn"
            );
        }
    }

    let rob = me.robustness();
    assert!(rob.panics_recovered >= 1, "{rob:?}");
    assert!(reboots >= 1 && rob.wal_replays >= 1, "{rob:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sketch persistence under `kill -9`: sketches checkpointed with the
/// snapshot are reused after a reboot, edits that only live in the WAL
/// invalidate exactly their configs, and a *torn* persisted sketch
/// bundle (bit-flipped snapshot payload) falls back to the backup
/// rather than poisoning the learner — in every case the post-reboot
/// delta relearn is byte-identical to a full relearn.
#[test]
fn sketch_cache_survives_kill_and_torn_persistence() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let dir = soak_dir();
    let mut plan = FaultPlan::new(seed ^ 0x5E7C);

    let corpus: Vec<(String, String)> = (0..8)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let (mut me, _) = ResilientEngine::with_store(
        &corpus,
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        &dir,
    )
    .expect("boots");
    me.set_checkpoint_every(0);
    me.relearn().expect("initial learn");
    me.checkpoint();

    // Post-checkpoint edits live only in the WAL: after a kill, the
    // persisted sketches for these configs are stale by generation.
    me.upsert("dev0", &plan.config_text()).expect("upserts");
    me.remove("dev7").expect("removes");
    drop(me); // kill -9: no checkpoint since the edits

    let mut back = reboot(&dir);
    let ld = back.learn_delta().expect("live");
    assert!(
        ld.sketches >= 5,
        "persisted sketches must survive the reboot: {ld:?}"
    );
    assert!(
        ld.dirty >= 1,
        "WAL-replayed edits must invalidate their sketches: {ld:?}"
    );
    back.relearn().expect("relearns");
    let got = back.image().contracts.clone().expect("just learned");
    assert_eq!(
        got,
        learn_oracle(&back),
        "seed {seed}: post-kill delta relearn diverged from full relearn"
    );
    back.checkpoint();
    drop(back);

    // Tear a persisted sketch: corrupt the newest segment of an edited
    // config (referenced by the live manifest only — the per-segment
    // CRC catches it and recovery falls back to the backup manifest
    // plus WAL replay). The learner must come back clean either way.
    assert!(
        plan.tear_fresh_segment(&dir).expect("tear segment"),
        "an edited config must leave two segment generations on disk"
    );

    let mut back = reboot(&dir);
    back.relearn().expect("relearns after torn segment");
    let got = back.image().contracts.clone().expect("just learned");
    assert_eq!(
        got,
        learn_oracle(&back),
        "seed {seed}: post-tear delta relearn diverged from full relearn"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kill between segment writes and the manifest rename: the crash
/// strands fully-written *orphan* segments (tmp + fsync + rename means
/// no half files), the old manifest still pins the old immutable
/// segments, and recovery is old-manifest + WAL replay. The orphans
/// are swept by the next checkpoint's garbage collector.
#[test]
fn kill_between_segment_writes_and_manifest_recovers_from_old_manifest() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let dir = soak_dir();
    let mut plan = FaultPlan::new(seed ^ 0x0DD5);

    let corpus: Vec<(String, String)> = (0..6)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let (mut me, _) = ResilientEngine::with_store(
        &corpus,
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        &dir,
    )
    .expect("boots");
    me.set_checkpoint_every(0);
    me.relearn().expect("initial learn");
    me.checkpoint();

    // Edits acknowledged into the WAL but never checkpointed.
    me.upsert("dev1", &plan.config_text()).expect("upserts");
    me.upsert("dev2", &plan.config_text()).expect("upserts");
    drop(me); // kill -9 before any further checkpoint

    // Simulate the torn checkpoint: the next checkpoint would have
    // written fresh segments for dev1/dev2 *before* the manifest
    // rename. Strand plausible orphans (new generation, garbage
    // payload is irrelevant — nothing references them).
    let seg_dir = dir.join("segments");
    for orphan in [
        "cfg-0000000000000001-0000000000000007-0.seg",
        "cfg-0000000000000002-0000000000000007-0.seg",
    ] {
        std::fs::write(
            seg_dir.join(orphan),
            b"concord-engine-segment/v1 crc32=00000000\n{}\n",
        )
        .expect("orphan written");
    }

    let mut back = reboot(&dir);
    let got = render(&back.check().expect("post-crash check").report);
    assert_eq!(
        got,
        oracle(&back),
        "seed {seed}: recovery from old manifest + WAL diverged from oracle"
    );
    back.relearn().expect("relearns");
    assert_eq!(
        back.image().contracts.clone().expect("just learned"),
        learn_oracle(&back),
        "seed {seed}: post-crash delta relearn diverged from full relearn"
    );

    // The reboot checkpointed (with_store folds replayed state), so the
    // orphans must be gone: unreferenced by both retained manifests.
    for orphan in [
        "cfg-0000000000000001-0000000000000007-0.seg",
        "cfg-0000000000000002-0000000000000007-0.seg",
    ] {
        assert!(
            !seg_dir.join(orphan).exists(),
            "orphan {orphan} survived garbage collection"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash after the manifest rename but before the WAL truncate-and-
/// rotate finished: records already folded into the manifest reappear
/// in both `wal.log.old` and `wal.log`. Replay must skip every one of
/// them (`seq <= applied_seq`) instead of double-applying.
#[test]
fn rotated_but_untruncated_wal_does_not_double_apply() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let dir = soak_dir();
    let mut plan = FaultPlan::new(seed ^ 0x3A1B);

    let corpus: Vec<(String, String)> = (0..6)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let (mut me, _) = ResilientEngine::with_store(
        &corpus,
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        &dir,
    )
    .expect("boots");
    me.set_checkpoint_every(0);
    me.relearn().expect("initial learn");
    me.upsert("dev3", &plan.config_text()).expect("upserts");
    me.checkpoint();
    let want_before = render(&me.check().expect("pre-crash check").report);
    drop(me); // kill -9 mid-rotation, emulated below

    std::fs::copy(dir.join("wal.log.old"), dir.join("wal.log")).expect("wal re-duplicated");

    let mut back = reboot(&dir);
    let got = render(&back.check().expect("post-crash check").report);
    assert_eq!(
        got, want_before,
        "seed {seed}: duplicated WAL records changed the recovered state"
    );
    assert_eq!(
        got,
        oracle(&back),
        "seed {seed}: recovery with duplicated WALs diverged from oracle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A state directory private to one storage-fault test, so these runs
/// never race the shared soak directory.
fn storage_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("concord-storage-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot_with_vfs(corpus: &[(String, String)], dir: &Path, vfs: &FaultVfs) -> ResilientEngine {
    let (mut me, _) = ResilientEngine::with_store_vfs(
        corpus,
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        dir,
        std::sync::Arc::new(vfs.clone()),
    )
    .expect("boots through fault vfs");
    me.set_checkpoint_every(0);
    me
}

/// ENOSPC tearing a write in half — once inside a WAL append, once
/// inside a checkpoint segment write. Both must be absorbed by the
/// engine's bounded retries (the torn tail repaired in between), never
/// degrade the engine, and leave a directory whose recovery is
/// byte-identical to the from-scratch oracle.
#[test]
fn enospc_mid_segment_write_is_retried_clean() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let dir = storage_dir("enospc");
    let mut plan = FaultPlan::new(seed ^ 0x5E6C);
    let corpus: Vec<(String, String)> = (0..6)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let vfs = FaultVfs::new(seed ^ 0x5E6C);
    let mut me = boot_with_vfs(&corpus, &dir, &vfs);
    me.relearn().expect("initial learn");

    // Half-write the next WAL append, then run out of space.
    vfs.fail_next(1, StorageFault::ShortWrite);
    me.upsert("dev0", &plan.config_text())
        .expect("short-written WAL append must be retried to success");

    // Same mid-write ENOSPC inside the checkpoint's segment writer.
    vfs.fail_next(1, StorageFault::ShortWrite);
    assert!(
        me.checkpoint(),
        "checkpoint must retry past the torn segment"
    );

    let storage = me.storage_stats();
    assert!(!storage.degraded, "transient ENOSPC must not degrade");
    assert!(storage.retries >= 2, "both faults retried: {storage:?}");
    assert!(storage.faults_injected >= 2, "faults counted: {storage:?}");
    assert_eq!(storage.degraded_transitions, 0);
    let want = render(&me.check().expect("post-fault check").report);
    drop(me);

    let mut back = reboot(&dir);
    let got = render(&back.check().expect("post-reboot check").report);
    assert_eq!(
        got, want,
        "seed {seed}: torn writes changed recovered state"
    );
    assert_eq!(
        got,
        oracle(&back),
        "seed {seed}: recovery after mid-write ENOSPC diverged from oracle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An fsync that fails after its data write landed: the append must be
/// retried (re-syncing a possibly duplicated record the replay's seq
/// dedup absorbs), acknowledged, and survive a reboot byte-identically.
#[test]
fn fsync_failure_then_retry_recovers() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let dir = storage_dir("fsync");
    let mut plan = FaultPlan::new(seed ^ 0xF5C0);
    let corpus: Vec<(String, String)> = (0..6)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let vfs = FaultVfs::new(seed ^ 0xF5C0);
    let mut me = boot_with_vfs(&corpus, &dir, &vfs);
    me.relearn().expect("initial learn");

    vfs.fail_next_syncs(1, StorageFault::Eio);
    me.upsert("dev1", &plan.config_text())
        .expect("append whose fsync failed once must be retried to success");

    let storage = me.storage_stats();
    assert!(!storage.degraded, "one failed fsync must not degrade");
    assert!(storage.retries >= 1, "fsync failure retried: {storage:?}");
    let want = render(&me.check().expect("post-fault check").report);
    let want_gen = me.config_generation("dev1").expect("generation read");
    drop(me);

    let mut back = reboot(&dir);
    assert_eq!(
        back.config_generation("dev1").expect("generation read"),
        want_gen,
        "seed {seed}: the retried append was lost across reboot"
    );
    let got = render(&back.check().expect("post-reboot check").report);
    assert_eq!(
        got, want,
        "seed {seed}: fsync retry changed recovered state"
    );
    assert_eq!(
        got,
        oracle(&back),
        "seed {seed}: recovery after fsync failure diverged from oracle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The degraded-mode contract end to end: persistent storage failure
/// drives the engine read-only after bounded retries, CHECK keeps
/// answering byte-identically to the oracle the whole time, writes are
/// refused without touching memory, and the engine re-probes its way
/// back to healthy the moment the device recovers — all deterministic
/// under the soak seed.
#[test]
fn degraded_read_only_serves_then_recovers_when_faults_clear() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let dir = storage_dir("degraded");
    let mut plan = FaultPlan::new(seed ^ 0xDE64);
    let corpus: Vec<(String, String)> = (0..8)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let vfs = FaultVfs::new(seed ^ 0xDE64);
    let mut me = boot_with_vfs(&corpus, &dir, &vfs);
    me.relearn().expect("initial learn");
    me.upsert("dev0", &plan.config_text())
        .expect("healthy write");

    // The device dies for good (until further notice).
    vfs.fail_all_writes(Some(StorageFault::Eio));
    let err = me
        .upsert("dev1", &plan.config_text())
        .expect_err("write on a dead device must be refused");
    assert!(
        matches!(err, EngineFault::StorageDegraded(_)),
        "expected storage-degraded, got {err}"
    );
    assert!(
        me.degraded(),
        "engine must be degraded after retry exhaustion"
    );

    // Degraded is read-only: refused writes leave no trace, and CHECK
    // keeps answering from the resident state, matching the oracle.
    for i in 0..3 {
        let name = format!("ghost{i}");
        assert!(me.upsert(&name, &plan.config_text()).is_err());
        assert_eq!(
            me.config_generation(&name).expect("degraded read"),
            None,
            "ghost write applied"
        );
        assert_eq!(
            render(&me.check().expect("degraded check").report),
            oracle(&me),
            "seed {seed}: degraded CHECK diverged from oracle"
        );
    }
    let storage = me.storage_stats();
    assert_eq!(
        storage.degraded_transitions, 1,
        "one transition: {storage:?}"
    );
    assert!(storage.retries >= 1 && storage.faults_injected >= 1);

    // The device comes back; the next write re-probes and recovers.
    vfs.fail_all_writes(None);
    me.upsert("dev1", &plan.config_text())
        .expect("write after the device recovers");
    assert!(!me.degraded(), "engine must recover once writes succeed");
    let storage = me.storage_stats();
    assert!(storage.recoveries >= 1, "recovery counted: {storage:?}");
    assert!(me.checkpoint(), "post-recovery checkpoint");
    let want = render(&me.check().expect("post-recovery check").report);
    drop(me);

    let mut back = reboot(&dir);
    let got = render(&back.check().expect("post-reboot check").report);
    assert_eq!(
        got, want,
        "seed {seed}: degraded episode changed durable state"
    );
    assert_eq!(
        got,
        oracle(&back),
        "seed {seed}: recovery after degraded episode diverged from oracle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
