//! Randomized fault-injection soak for the resilient engine.
//!
//! A seeded [`FaultPlan`] drives a durable [`ResilientEngine`] through
//! a stream of edits while rotating through every storage- and
//! panic-level fault class: torn WAL tails, truncated snapshots, and
//! forced panics inside upsert / check / learn. After **every** fault
//! the engine must still answer, and its CHECK report must match — byte
//! for byte — a clean engine rebuilt from scratch out of the recovered
//! image (the oracle the paper's incremental-equivalence argument rests
//! on). Request-level faults (malformed / oversized / disconnect) are
//! protocol concerns and are soaked at the serve layer in
//! `concord-cli`'s robustness tests.
//!
//! Everything is a pure function of `CONCORD_SOAK_SEED` (default
//! `0xC0C0`), and `CONCORD_SOAK_ITERS` (default 48) scales the run for
//! CI soak jobs. A failing step prints both so it replays exactly.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use concord_core::{CheckReport, ContractSet};
use concord_engine::fault::{FaultKind, FaultPlan, ALL_FAULTS};
use concord_engine::{Engine, EngineFault, EngineOptions, OpKind, ResilientEngine};
use concord_lexer::Lexer;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn soak_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concord-fault-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders a check report the way the serve layer does, so "matches
/// byte for byte" means the bytes a client would actually see.
fn render(report: &CheckReport) -> String {
    let mut s = String::new();
    for v in &report.violations {
        let _ = writeln!(s, "{v}");
    }
    let summary = report.coverage.summary();
    let _ = writeln!(
        s,
        "{} violations; coverage {:.3}% of {} lines",
        report.violations.len(),
        summary.fraction * 100.0,
        summary.total_lines,
    );
    s
}

/// The from-scratch oracle: a fresh engine built out of the resilient
/// engine's last-known-good image, checked in full.
fn oracle(me: &ResilientEngine) -> String {
    let image = me.image();
    let mut oracle =
        Engine::from_corpus(&image.corpus(), &image.metadata, EngineOptions::default())
            .expect("oracle builds");
    if let Some(json) = &image.contracts {
        oracle.set_contracts(ContractSet::from_json(json).expect("image contracts parse"));
    }
    render(&oracle.check_dirty().expect("oracle checks").report)
}

fn reboot(dir: &Path) -> ResilientEngine {
    let (mut back, _) =
        ResilientEngine::with_store(&[], &[], Lexer::standard(), EngineOptions::default(), dir)
            .expect("reboot after fault");
    back.set_checkpoint_every(4);
    back
}

#[test]
fn storage_and_panic_fault_soak() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let iters = env_u64("CONCORD_SOAK_ITERS", 48) as usize;
    let dir = soak_dir();
    let mut plan = FaultPlan::new(seed);

    let corpus: Vec<(String, String)> = (0..8)
        .map(|i| (format!("dev{i}"), plan.config_text()))
        .collect();
    let (mut me, resumed) = ResilientEngine::with_store(
        &corpus,
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        &dir,
    )
    .expect("boots");
    assert!(!resumed);
    me.set_checkpoint_every(4);
    me.relearn().expect("initial learn");

    let mut reboots = 0u64;
    for step in 0..iters {
        // Seeded edit traffic between faults.
        match plan.index(4) {
            0 | 1 => {
                let name = plan.device_name(10);
                let text = plan.config_text();
                me.upsert(&name, &text)
                    .unwrap_or_else(|e| panic!("step {step}: upsert failed: {e}"));
            }
            2 => {
                let name = plan.device_name(10);
                let _ = me
                    .remove(&name)
                    .unwrap_or_else(|e| panic!("step {step}: remove failed: {e}"));
            }
            _ => {
                me.relearn()
                    .unwrap_or_else(|e| panic!("step {step}: relearn failed: {e}"));
            }
        }

        // Rotate deterministically through every fault class so a short
        // run still covers all of them; the *shape* of each fault (how
        // many bytes survive a tear, which device a panic hits) stays
        // seeded.
        let fault = ALL_FAULTS[step % ALL_FAULTS.len()];
        match fault {
            FaultKind::TornWal => {
                drop(me);
                let _ = plan.tear_wal(&dir).expect("tear wal");
                me = reboot(&dir);
                reboots += 1;
            }
            FaultKind::TruncatedSnapshot => {
                drop(me);
                let _ = plan.truncate_snapshot(&dir).expect("truncate snapshot");
                me = reboot(&dir);
                reboots += 1;
            }
            FaultKind::PanicUpsert => {
                me.arm_panic(OpKind::Upsert);
                let err = me.upsert(&plan.device_name(10), &plan.config_text());
                assert!(
                    matches!(err, Err(EngineFault::Panicked(_))),
                    "step {step}: expected injected panic, got {err:?}"
                );
            }
            FaultKind::PanicCheck => {
                me.arm_panic(OpKind::Check);
                let err = me.check();
                assert!(
                    matches!(err, Err(EngineFault::Panicked(_))),
                    "step {step}: expected injected panic, got {:?}",
                    err.map(|r| r.engine)
                );
            }
            FaultKind::PanicLearn => {
                me.arm_panic(OpKind::Learn);
                let err = me.relearn();
                assert!(
                    matches!(err, Err(EngineFault::Panicked(_))),
                    "step {step}: expected injected panic, got {err:?}"
                );
            }
            // Request-level faults: exercised against the serve layer in
            // concord-cli's robustness tests, no engine-level analogue.
            FaultKind::MalformedRequest | FaultKind::OversizedRequest | FaultKind::Disconnect => {}
        }

        // Post-fault invariant: the engine answers, and byte-for-byte
        // agrees with a clean rebuild of its own image.
        let got = render(
            &me.check()
                .unwrap_or_else(|e| panic!("step {step} fault {fault:?}: check failed: {e}"))
                .report,
        );
        let want = oracle(&me);
        assert_eq!(
            got, want,
            "step {step} fault {fault:?} seed {seed}: post-fault check diverged from oracle"
        );
    }

    let rob = me.robustness();
    assert!(rob.panics_recovered >= 1, "{rob:?}");
    assert!(reboots >= 1 && rob.wal_replays >= 1, "{rob:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
