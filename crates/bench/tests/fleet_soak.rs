//! Fleet fault soak: a sharded, replicated `concord serve` under
//! seeded fault injection, byte-compared against an unsharded oracle.
//!
//! Two real servers boot in-process over loopback TCP from the same
//! seeded corpus: the subject (`--shards 3 --replicas 1` with a durable
//! state directory and fault injection enabled) and the oracle
//! (`--shards 1`, never faulted). Seeded edit traffic is mirrored to
//! both, rotating through every fleet fault class
//! ([`FLEET_FAULTS`]): suppressed replica polls (replication lag),
//! a stale replica read, and a shard-leader crash mid-CHECK (failover
//! to the shard's replica). The invariants, every round:
//!
//! * every non-CHECK response is byte-identical to the oracle's;
//! * every CHECK's violations and coverage are byte-identical (the
//!   `dirty=`/`reused=` counters may legitimately differ right after a
//!   failover, while the rebuilt leader re-checks from scratch — see
//!   the fleet module docs);
//! * the *second* CHECK of each round — both servers answering from
//!   their caches — is byte-identical in full, counters included.
//!
//! Everything is a pure function of `CONCORD_SOAK_SEED` (default
//! `0xC0C0`); `CONCORD_SOAK_ITERS` (default 12) scales the run.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use concord_engine::fault::{FaultKind, FaultPlan, FLEET_FAULTS};
use concord_engine::ShardRouter;

const SHARDS: usize = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concord-fleet-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A `Write` the server thread and the harness share, polled for the
/// `listening on <addr>` announcement.
#[derive(Clone, Default)]
struct SharedOut(Arc<Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("out lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn spawn_server(extra: &[&str]) -> String {
    let mut argv: Vec<String> = [
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--deadline-ms",
        "30000",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    argv.extend(extra.iter().map(|s| s.to_string()));
    let out = SharedOut::default();
    {
        let mut sink = out.clone();
        std::thread::spawn(move || concord_cli::run(&argv, &mut sink));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = String::from_utf8_lossy(&out.0.lock().expect("out lock")).into_owned();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            return line["listening on ".len()..].to_string();
        }
        assert!(Instant::now() < deadline, "server never announced: {text}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// Sends one command (with body for UPSERT) and reads its full
    /// response: one line for most verbs, violations + summary for
    /// CHECK.
    fn request(&mut self, wire: &str) -> String {
        self.writer.write_all(wire.as_bytes()).expect("send");
        let check = wire.starts_with("CHECK");
        let mut response = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "server closed mid-response to {wire:?}");
            response.push_str(&line);
            if !check || line.starts_with("ok check ") || line.starts_with("err ") {
                return response;
            }
        }
    }
}

/// A CHECK response with the incremental counters masked — everything a
/// correctness argument rests on (violations, coverage, line counts),
/// none of the cache telemetry.
fn mask_counters(response: &str) -> String {
    match response.find("; dirty=") {
        Some(i) => response[..i].to_string(),
        None => response.to_string(),
    }
}

/// Mirrors one command to both servers and asserts byte-identical
/// responses; returns the (shared) response.
fn mirrored(subject: &mut Client, oracle: &mut Client, wire: &str, context: &str) -> String {
    let got = subject.request(wire);
    let want = oracle.request(wire);
    assert_eq!(got, want, "{context}: {wire:?} diverged");
    got
}

#[test]
fn sharded_serve_survives_fleet_faults_byte_identically() {
    let seed = env_u64("CONCORD_SOAK_SEED", 0xC0C0);
    let iters = env_u64("CONCORD_SOAK_ITERS", 12) as usize;
    let mut plan = FaultPlan::new(seed ^ 0xF1EE7);

    // Shared seeded corpus on disk; both servers boot from the glob.
    let corpus_dir = temp_dir("corpus");
    let pool = 10usize;
    for i in 0..8 {
        std::fs::write(corpus_dir.join(format!("dev{i}.cfg")), plan.config_text())
            .expect("write config");
    }
    let glob = format!("{}/*.cfg", corpus_dir.display());
    let state_dir = temp_dir("state");

    let subject_addr = spawn_server(&[
        "--configs",
        &glob,
        "--shards",
        "3",
        "--replicas",
        "1",
        "--state-dir",
        &state_dir.display().to_string(),
        "--enable-fault-injection",
    ]);
    let oracle_addr = spawn_server(&["--configs", &glob]);
    let mut subject = Client::connect(&subject_addr);
    let mut oracle = Client::connect(&oracle_addr);
    let router = ShardRouter::new(SHARDS);
    // A device per shard, for targeting faults at the shard that owns it.
    let device_on = |shard: usize| -> String {
        (0..pool)
            .map(|i| format!("dev{i}"))
            .find(|name| router.route(name) == shard)
            .unwrap_or_else(|| panic!("no pool device routes to shard {shard}"))
    };

    mirrored(&mut subject, &mut oracle, "LEARN\n", "initial learn");

    for round in 0..iters {
        let context = format!("round {round} seed {seed}");

        // Seeded mirrored edit traffic.
        for _ in 0..2 {
            match plan.index(4) {
                0 | 1 => {
                    let name = plan.device_name(pool);
                    let body = plan.config_text();
                    mirrored(
                        &mut subject,
                        &mut oracle,
                        &format!("UPSERT {name}\n{body}.\n"),
                        &context,
                    );
                }
                2 => {
                    let name = plan.device_name(pool);
                    mirrored(
                        &mut subject,
                        &mut oracle,
                        &format!("REMOVE {name}\n"),
                        &context,
                    );
                }
                _ => {
                    let name = plan.device_name(pool);
                    mirrored(
                        &mut subject,
                        &mut oracle,
                        &format!("GEN {name}\n"),
                        &context,
                    );
                }
            }
        }

        // One fleet fault per round, subject-only.
        let fault = FLEET_FAULTS[round % FLEET_FAULTS.len()];
        let shard = plan.index(SHARDS);
        match fault {
            FaultKind::ReplicaLag | FaultKind::StaleReplicaRead => {
                let (verb, polls) = if fault == FaultKind::ReplicaLag {
                    (format!("FAULT replica-lag {shard} 2\n"), 2)
                } else {
                    (format!("FAULT stale-read {shard}\n"), 1)
                };
                let armed = subject.request(&verb);
                assert!(armed.starts_with("ok fault armed"), "{context}: {armed}");
                // The suppressed polls serve the stale replica image —
                // allowed to lag (even answer for a device the leader
                // has since removed, or miss one it just created),
                // never allowed to fail internally.
                let device = device_on(shard);
                for _ in 0..polls {
                    let stale = subject.request(&format!("GEN {device}\n"));
                    assert!(
                        stale.starts_with("ok gen ") || stale.starts_with("err unknown-config"),
                        "{context}: stale read failed: {stale}"
                    );
                }
                // Caught up: replica reads rejoin the oracle byte-for-byte.
                mirrored(
                    &mut subject,
                    &mut oracle,
                    &format!("GEN {device}\n"),
                    &context,
                );
            }
            FaultKind::ShardCrash => {
                // Dirty the target shard so the armed panic actually
                // fires inside its next CHECK recompute.
                let device = device_on(shard);
                let body = plan.config_text();
                mirrored(
                    &mut subject,
                    &mut oracle,
                    &format!("UPSERT {device}\n{body}.\n"),
                    &context,
                );
                let armed = subject.request(&format!("FAULT check {shard}\n"));
                assert!(armed.starts_with("ok fault armed"), "{context}: {armed}");
            }
            other => panic!("unexpected fleet fault {other:?}"),
        }

        // Post-fault invariant 1: the next CHECK answers on both
        // servers with byte-identical violations and coverage. (On a
        // crash round the subject's answer came from the shard's
        // replica, at the leader's acked sequence.)
        let got = subject.request("CHECK\n");
        let want = oracle.request("CHECK\n");
        assert!(
            got.contains("ok check "),
            "{context}: post-fault check did not answer: {got}"
        );
        assert_eq!(
            mask_counters(&got),
            mask_counters(&want),
            "{context} fault {fault:?}: post-fault check diverged from oracle"
        );

        // Post-fault invariant 2: the steady-state repeat CHECK — both
        // sides answering from their report caches — is byte-identical
        // in full, incremental counters included.
        mirrored(&mut subject, &mut oracle, "CHECK\n", &context);

        // Periodic mirrored LEARN keeps the contract sets (and their
        // delta-learn counters) in lockstep.
        if round % 4 == 3 {
            mirrored(&mut subject, &mut oracle, "LEARN\n", &context);
            mirrored(&mut subject, &mut oracle, "CONTRACTS\n", &context);
        }
    }

    mirrored(&mut subject, &mut oracle, "QUIT\n", "shutdown");
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&state_dir);
}
