//! Randomized edit-sequence oracle for the arena-interned SoA dataset:
//! the pre-refactor array-of-structs [`LegacyDataset`] (feature
//! `legacy-ir`) is driven through the *same* seeded upsert/remove
//! sequence as the production [`Dataset`], and after every step the two
//! must agree line for line — pattern text, params, line numbers,
//! originals, metadata flags — and produce byte-identical LEARN and
//! CHECK output with identical stats counters. Runs over both generator
//! families (EDGE indentation and WAN flat syntax) at parallelism 1
//! and 8, mirroring `engine_equivalence`.
//!
//! This is the refactor's semantics pin: interning and
//! structure-of-arrays layout are allowed to change memory, never
//! bytes.

use concord_bench::seed;
use concord_core::{
    check_parallel_with_stats, learn, CheckStats, ContractSet, Dataset, LearnParams, LegacyDataset,
};
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_lexer::Lexer;
use concord_rng::rngs::StdRng;
use concord_rng::{Rng, SeedableRng};

/// Random edit steps per (style, parallelism) sequence.
const STEPS: usize = 25;

/// Asserts the SoA dataset and the legacy oracle hold identical line
/// records, field for field.
fn assert_line_identical(soa: &Dataset, legacy: &LegacyDataset, context: &str) {
    assert_eq!(
        soa.configs.len(),
        legacy.configs.len(),
        "{context}: configs"
    );
    assert_eq!(
        soa.pattern_count(),
        legacy.table.len(),
        "{context}: pattern tables"
    );
    let mut legacy_own_lines = 0usize;
    for (cs, cl) in soa.configs.iter().zip(&legacy.configs) {
        let name = soa.name_of(cs);
        assert_eq!(name, cl.name, "{context}");
        assert_eq!(cs.format, cl.format, "{context}: {name}");
        assert_eq!(cs.len(), cl.lines.len(), "{context}: {name} line count");
        for (ls, ll) in cs.lines(&soa.arenas).zip(&cl.lines) {
            assert_eq!(
                soa.table.text(ls.pattern),
                legacy.table.text(ll.pattern),
                "{context}: {name}:{}",
                ls.line_no
            );
            assert_eq!(
                ls.params,
                &ll.params[..],
                "{context}: {name}:{}",
                ls.line_no
            );
            assert_eq!(ls.line_no, ll.line_no, "{context}: {name}");
            assert_eq!(
                ls.original, &*ll.original,
                "{context}: {name}:{}",
                ls.line_no
            );
            assert_eq!(ls.is_meta, ll.is_meta, "{context}: {name}:{}", ls.line_no);
        }
        legacy_own_lines += cl.lines.iter().filter(|l| !l.is_meta).count();
    }
    // Satellite pin: the SoA side's O(1) counter equals the legacy
    // O(lines) recount after every edit.
    assert_eq!(
        soa.total_lines(),
        legacy_own_lines,
        "{context}: O(1) total_lines diverged from recount"
    );
}

fn assert_counters_equal(a: &CheckStats, b: &CheckStats, context: &str) {
    assert_eq!(a.contracts, b.contracts, "{context}");
    assert_eq!(a.violations, b.violations, "{context}");
    assert_eq!(a.witness_indexes, b.witness_indexes, "{context}");
    assert_eq!(a.witness_entries, b.witness_entries, "{context}");
    assert_eq!(a.witness_probes, b.witness_probes, "{context}");
    assert_eq!(a.witness_probe_hits, b.witness_probe_hits, "{context}");
}

/// One random text mutation (same shapes as `engine_equivalence`):
/// duplicate a line, delete a line, or rewrite digits.
fn mutate(text: &str, rng: &mut StdRng) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "vlan 1\n".to_string();
    }
    let i = rng.gen_range(0..lines.len());
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    match rng.gen_range(0..3u32) {
        0 => out.insert(i, lines[i].to_string()),
        1 => {
            out.remove(i);
        }
        _ => {
            let digit = char::from(b'0' + rng.gen_range(0..10u32) as u8);
            out[i] = out[i]
                .chars()
                .map(|c| if c.is_ascii_digit() { digit } else { c })
                .collect();
        }
    }
    let mut joined = out.join("\n");
    joined.push('\n');
    joined
}

fn run_sequence(style: Style, parallelism: usize, salt: u64) {
    let spec = RoleSpec {
        name: format!("IR{salt}"),
        devices: 6,
        style,
        blocks: 4,
        with_metadata: true,
    };
    let role = generate_role(&spec, seed());
    let mut corpus = role.configs.clone();
    corpus.sort();
    let metadata = role.metadata.clone();

    let lexer = Lexer::standard();
    let mut soa = Dataset::from_named_texts(&corpus, &metadata).expect("SoA dataset builds");
    let mut legacy = LegacyDataset::from_named_texts(&corpus, &metadata);
    assert_line_identical(
        &soa,
        &legacy,
        &format!("{style:?} p={parallelism} seed build"),
    );

    // One fixed contract set pins CHECK for the whole sequence; LEARN
    // equivalence is asserted per step on the evolving corpus.
    let params = LearnParams::default();
    let contracts: ContractSet = learn(&soa, &params);
    assert!(!contracts.is_empty(), "sequence needs contracts to check");

    let mut rng = StdRng::seed_from_u64(seed() ^ salt);
    for step in 0..STEPS {
        let context = format!("{style:?} p={parallelism} step {step}");
        match rng.gen_range(0..10u32) {
            0 if corpus.len() > 2 => {
                let i = rng.gen_range(0..corpus.len());
                let name = corpus[i].0.clone();
                corpus.remove(i);
                let si = soa.remove_config(&name);
                let li = legacy.remove_config(&name);
                assert_eq!(si, li, "{context}: remove index");
                assert!(si.is_some(), "{context}");
            }
            1 => {
                let i = rng.gen_range(0..corpus.len());
                let text = mutate(&corpus[i].1.clone(), &mut rng);
                let name = format!("gen-{salt}-{step}");
                corpus.push((name.clone(), text.clone()));
                let si = soa.upsert_config(&name, &text, &lexer, true, None);
                let li = legacy.upsert_config(&name, &text, &lexer, true, None);
                assert_eq!(si, li, "{context}: insert index");
            }
            _ => {
                let i = rng.gen_range(0..corpus.len());
                let name = corpus[i].0.clone();
                let text = mutate(&corpus[i].1.clone(), &mut rng);
                corpus[i].1 = text.clone();
                let si = soa.upsert_config(&name, &text, &lexer, true, None);
                let li = legacy.upsert_config(&name, &text, &lexer, true, None);
                assert_eq!(si, li, "{context}: replace index");
            }
        }

        assert_line_identical(&soa, &legacy, &context);

        // Byte-identical LEARN over both representations. The legacy
        // side converts through `to_dataset()` (a full re-intern), so
        // any drift in interning order or dedup shows up here.
        let soa_learned = learn(&soa, &params).to_json();
        let legacy_learned = learn(&legacy.to_dataset(), &params).to_json();
        assert_eq!(
            soa_learned, legacy_learned,
            "{context}: LEARN diverged between representations"
        );

        // Byte-identical CHECK (violations, order, coverage) plus
        // identical witness counters.
        let (soa_report, soa_stats) = check_parallel_with_stats(&contracts, &soa, parallelism);
        let (legacy_report, legacy_stats) =
            check_parallel_with_stats(&contracts, &legacy.to_dataset(), parallelism);
        assert_eq!(
            format!("{:?}", soa_report.violations),
            format!("{:?}", legacy_report.violations),
            "{context}: CHECK violations diverged"
        );
        assert_eq!(
            soa_report.coverage.summary().fraction,
            legacy_report.coverage.summary().fraction,
            "{context}: coverage diverged"
        );
        assert_counters_equal(&soa_stats, &legacy_stats, &context);
    }
}

#[test]
fn random_edits_match_legacy_edge_indent() {
    for parallelism in [1, 8] {
        run_sequence(Style::EdgeIndent, parallelism, 31 + parallelism as u64);
    }
}

#[test]
fn random_edits_match_legacy_wan_flat() {
    for parallelism in [1, 8] {
        run_sequence(Style::WanFlat, parallelism, 47 + parallelism as u64);
    }
}
