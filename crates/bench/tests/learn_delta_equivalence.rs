//! Randomized edit-sequence oracle for incremental learning: after
//! *every* upsert/remove in a random sequence, a delta relearn (fold
//! the persisted per-config sketches, re-mining only edited configs)
//! must produce a contract set byte-identical to a full relearn of the
//! same corpus. This is the contract that lets the engine cache miner
//! sketches without a semantics review: the full learner is the spec.
//!
//! Edits are deterministic (seeded xoshiro) and deliberately messy:
//! duplicated lines (perturbing uniqueness counts), deleted lines
//! (presence/ordering support), value rewrites (relational witnesses,
//! often fresh patterns), fresh configurations, and removals. Runs over
//! both generator families (EDGE indentation and WAN flat syntax) at
//! parallelism 1 and 8.

use concord_bench::seed;
use concord_core::LearnParams;
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_engine::{Engine, EngineOptions};
use concord_rng::rngs::StdRng;
use concord_rng::{Rng, SeedableRng};

/// Random edit steps per (style, parallelism) sequence.
const STEPS: usize = 20;

/// One random text mutation: duplicate a line, delete a line, or rewrite
/// the digits of a line (new parameter value, often a new pattern).
fn mutate(text: &str, rng: &mut StdRng) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "vlan 1\n".to_string();
    }
    let i = rng.gen_range(0..lines.len());
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    match rng.gen_range(0..3u32) {
        0 => out.insert(i, lines[i].to_string()),
        1 => {
            out.remove(i);
        }
        _ => {
            let digit = char::from(b'0' + rng.gen_range(0..10u32) as u8);
            out[i] = out[i]
                .chars()
                .map(|c| if c.is_ascii_digit() { digit } else { c })
                .collect();
        }
    }
    let mut joined = out.join("\n");
    joined.push('\n');
    joined
}

fn run_sequence(style: Style, parallelism: usize, salt: u64) {
    let spec = RoleSpec {
        name: format!("LD{salt}"),
        devices: 6,
        style,
        blocks: 4,
        with_metadata: true,
    };
    let role = generate_role(&spec, seed());
    let mut corpus = role.configs.clone();
    corpus.sort();
    let metadata = role.metadata.clone();

    let delta_options = EngineOptions {
        parallelism,
        learn: LearnParams::default(),
        ..EngineOptions::default()
    };
    assert!(delta_options.delta_learn, "delta learn is the default");
    let full_options = EngineOptions {
        delta_learn: false,
        ..delta_options.clone()
    };
    let mut delta = Engine::from_corpus(&corpus, &metadata, delta_options).expect("engine builds");
    let mut full = Engine::from_corpus(&corpus, &metadata, full_options).expect("engine builds");

    let mut rng = StdRng::seed_from_u64(seed() ^ salt);
    let mut reuse_steps = 0usize;
    for step in 0..=STEPS {
        delta.relearn();
        full.relearn();
        let context = format!("{style:?} p={parallelism} step {step}");
        assert_eq!(
            delta.contracts().expect("learned").to_json(),
            full.contracts().expect("learned").to_json(),
            "delta learn diverged from full relearn at {context}"
        );
        let ld = delta.learn_delta();
        assert_eq!(ld.dirty, 0, "every config sketched after {context}");
        if ld.reused_last_learn > 0 {
            reuse_steps += 1;
        }
        if step == STEPS {
            break;
        }

        // A random edit against both engines.
        match rng.gen_range(0..10u32) {
            // Remove a random configuration (keeping at least two).
            0 if corpus.len() > 2 => {
                let i = rng.gen_range(0..corpus.len());
                let name = corpus.remove(i).0;
                assert!(delta.remove_config(&name).is_some());
                assert!(full.remove_config(&name).is_some());
            }
            // Add a fresh configuration mutated from an existing one.
            1 => {
                let i = rng.gen_range(0..corpus.len());
                let text = mutate(&corpus[i].1.clone(), &mut rng);
                let name = format!("gen-{salt}-{step}");
                let at = corpus.partition_point(|(n, _)| n.as_str() < name.as_str());
                corpus.insert(at, (name.clone(), text.clone()));
                delta.upsert_config(&name, &text);
                full.upsert_config(&name, &text);
            }
            // Mutate an existing configuration in place.
            _ => {
                let i = rng.gen_range(0..corpus.len());
                let name = corpus[i].0.clone();
                let text = mutate(&corpus[i].1.clone(), &mut rng);
                corpus[i].1 = text.clone();
                delta.upsert_config(&name, &text);
                full.upsert_config(&name, &text);
            }
        }
    }
    // The sequence must actually exercise the sketch cache: most steps
    // touch one config, so reuse has to dominate re-mining.
    assert!(
        reuse_steps > STEPS / 2,
        "{style:?} p={parallelism}: only {reuse_steps}/{STEPS} relearns reused sketches"
    );
}

#[test]
fn random_edit_relearns_match_full_edge_indent() {
    for parallelism in [1, 8] {
        run_sequence(Style::EdgeIndent, parallelism, 101 + parallelism as u64);
    }
}

#[test]
fn random_edit_relearns_match_full_wan_flat() {
    for parallelism in [1, 8] {
        run_sequence(Style::WanFlat, parallelism, 211 + parallelism as u64);
    }
}

#[test]
fn random_edit_relearns_match_full_wan_indent() {
    for parallelism in [1, 8] {
        run_sequence(Style::WanIndent, parallelism, 307 + parallelism as u64);
    }
}
