//! Randomized edit-sequence oracle for the incremental engine: after
//! *every* upsert/remove in a random sequence, `Engine::check_dirty`
//! must be byte-identical — violations, order, coverage, and witness
//! counters — to a from-scratch batch build-and-check of the same
//! corpus. This is the contract that lets the engine cache outcomes,
//! replay unique tables, and skip clean configurations without a
//! semantics review: the batch pipeline is the spec.
//!
//! Edits are deterministic (seeded xoshiro) and deliberately messy:
//! duplicated lines (tripping unique contracts), deleted lines (tripping
//! presence/ordering), value rewrites (tripping relational witnesses),
//! fresh configurations, and removals. Runs over both generator families
//! (EDGE indentation and WAN flat syntax) at parallelism 1 and 8.

use concord_bench::seed;
use concord_core::{
    check_parallel_with_stats, CheckReport, CheckStats, ContractSet, Dataset, LearnParams,
};
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_engine::{Engine, EngineOptions};
use concord_rng::rngs::StdRng;
use concord_rng::{Rng, SeedableRng};

/// Random edit steps per (style, parallelism) sequence.
const STEPS: usize = 30;

/// Renders a report to a canonical string (same convention as the
/// check-engine oracle: violation order matters, coverage sets do not).
fn render(report: &CheckReport) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{v:?}\n"));
    }
    for c in &report.coverage.per_config {
        let mut covered: Vec<usize> = c.covered.iter().copied().collect();
        covered.sort_unstable();
        out.push_str(&format!(
            "coverage {} total={} covered={covered:?}\n",
            c.name, c.total_lines
        ));
        for (cat, lines) in &c.by_category {
            let mut lines: Vec<usize> = lines.iter().copied().collect();
            lines.sort_unstable();
            out.push_str(&format!("  {cat}: {lines:?}\n"));
        }
    }
    out
}

/// One random text mutation: duplicate a line, delete a line, or rewrite
/// the digits of a line (new parameter value, often a new pattern).
fn mutate(text: &str, rng: &mut StdRng) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "vlan 1\n".to_string();
    }
    let i = rng.gen_range(0..lines.len());
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    match rng.gen_range(0..3u32) {
        0 => out.insert(i, lines[i].to_string()),
        1 => {
            out.remove(i);
        }
        _ => {
            let digit = char::from(b'0' + rng.gen_range(0..10u32) as u8);
            out[i] = out[i]
                .chars()
                .map(|c| if c.is_ascii_digit() { digit } else { c })
                .collect();
        }
    }
    let mut joined = out.join("\n");
    joined.push('\n');
    joined
}

/// Inserts `(name, text)` into the name-sorted mirror corpus.
fn mirror_upsert(corpus: &mut Vec<(String, String)>, name: &str, text: String) {
    match corpus.iter_mut().find(|(n, _)| n == name) {
        Some(entry) => entry.1 = text,
        None => {
            let at = corpus.partition_point(|(n, _)| n.as_str() < name);
            corpus.insert(at, (name.to_string(), text));
        }
    }
}

fn assert_counters_equal(incremental: &CheckStats, batch: &CheckStats, context: &str) {
    assert_eq!(incremental.contracts, batch.contracts, "{context}");
    assert_eq!(incremental.violations, batch.violations, "{context}");
    assert_eq!(
        incremental.witness_indexes, batch.witness_indexes,
        "{context}: cached index counters must replay exactly"
    );
    assert_eq!(
        incremental.witness_entries, batch.witness_entries,
        "{context}"
    );
    assert_eq!(
        incremental.witness_probes, batch.witness_probes,
        "{context}"
    );
    assert_eq!(
        incremental.witness_probe_hits, batch.witness_probe_hits,
        "{context}"
    );
}

fn run_sequence(style: Style, parallelism: usize, salt: u64) {
    let spec = RoleSpec {
        name: format!("EQ{salt}"),
        devices: 6,
        style,
        blocks: 4,
        with_metadata: true,
    };
    let role = generate_role(&spec, seed());
    let mut corpus = role.configs.clone();
    corpus.sort();
    let metadata = role.metadata.clone();

    let options = EngineOptions {
        parallelism,
        learn: LearnParams::default(),
        ..EngineOptions::default()
    };
    let mut engine = Engine::from_corpus(&corpus, &metadata, options).expect("engine builds");
    // One fixed contract set for the whole sequence: the oracle pins
    // checking; learning is corpus-global and separately deterministic.
    engine.relearn();
    let contracts: ContractSet = engine.contracts().expect("just learned").clone();
    assert!(!contracts.is_empty(), "sequence needs contracts to check");

    let mut rng = StdRng::seed_from_u64(seed() ^ salt);
    let mut total_dirty = 0usize;
    let mut reuse_steps = 0usize;
    for step in 0..STEPS {
        // A random edit against both the engine and the mirror corpus.
        match rng.gen_range(0..10u32) {
            // Remove a random configuration (keeping at least two).
            0 if corpus.len() > 2 => {
                let i = rng.gen_range(0..corpus.len());
                let name = corpus[i].0.clone();
                corpus.remove(i);
                assert!(engine.remove_config(&name).is_some());
            }
            // Add a fresh configuration mutated from an existing one.
            1 => {
                let i = rng.gen_range(0..corpus.len());
                let text = mutate(&corpus[i].1.clone(), &mut rng);
                let name = format!("gen-{salt}-{step}");
                mirror_upsert(&mut corpus, &name, text.clone());
                engine.upsert_config(&name, &text);
            }
            // Mutate an existing configuration in place.
            _ => {
                let i = rng.gen_range(0..corpus.len());
                let name = corpus[i].0.clone();
                let text = mutate(&corpus[i].1.clone(), &mut rng);
                mirror_upsert(&mut corpus, &name, text.clone());
                engine.upsert_config(&name, &text);
            }
        }

        let incremental = engine.check_dirty().expect("contracts loaded");
        let batch_dataset =
            Dataset::from_named_texts(&corpus, &metadata).expect("batch dataset builds");
        let (batch_report, batch_stats) =
            check_parallel_with_stats(&contracts, &batch_dataset, parallelism);

        let context = format!("{style:?} p={parallelism} step {step}");
        assert_eq!(
            render(&incremental.report),
            render(&batch_report),
            "engine diverged from batch at {context}"
        );
        assert_counters_equal(&incremental.stats, &batch_stats, &context);
        total_dirty += incremental.engine.dirty_configs;
        if incremental.engine.reused_configs > 0 {
            reuse_steps += 1;
        }
        assert_eq!(
            engine.snapshot_stats().dirty_configs,
            0,
            "nothing left dirty after {context}"
        );
    }
    // The sequence must actually exercise the incremental path: most
    // steps touch one config, so reuse has to dominate recomputation.
    assert!(
        reuse_steps > STEPS / 2,
        "{style:?} p={parallelism}: only {reuse_steps}/{STEPS} steps reused cache"
    );
    assert!(
        total_dirty >= STEPS,
        "every step dirties at least one config"
    );
}

#[test]
fn random_edits_match_batch_edge_indent() {
    for parallelism in [1, 8] {
        run_sequence(Style::EdgeIndent, parallelism, 11 + parallelism as u64);
    }
}

#[test]
fn random_edits_match_batch_wan_flat() {
    for parallelism in [1, 8] {
        run_sequence(Style::WanFlat, parallelism, 23 + parallelism as u64);
    }
}

#[test]
fn random_edits_match_batch_wan_indent() {
    for parallelism in [1, 8] {
        run_sequence(Style::WanIndent, parallelism, 37 + parallelism as u64);
    }
}
