//! Golden equivalence: the parallel learn engine must produce contract
//! sets identical to the sequential reference learner (`learn_reference`,
//! kept behind the `reference-learn` feature) — same contracts in the
//! same order — across config styles and parallelism levels. This is the
//! contract that lets every optimization in the learn engine (concurrent
//! miners, the tree-merged relational accumulation, Fx hashing, parallel
//! minimization) land without a semantics review: the reference is the
//! spec.

use concord_bench::{default_params, seed};
use concord_core::{learn, learn_reference, Dataset, LearnParams};
use concord_datagen::{generate_role, RoleSpec, Style};

fn learn_style(style: Style, name: &str) {
    let spec = RoleSpec {
        name: name.to_string(),
        devices: 8,
        style,
        blocks: 6,
        with_metadata: true,
    };
    let role = generate_role(&spec, seed());
    let dataset = Dataset::from_named_texts(&role.configs, &role.metadata).expect("dataset builds");

    // Constants on (via default_params): present-exact mining joins the
    // mix, so every miner participates in the comparison.
    let reference = learn_reference(&dataset, &default_params());
    assert!(
        !reference.contracts.is_empty(),
        "{name} learned no contracts"
    );

    let mut runs = Vec::new();
    for parallelism in [1, 8] {
        let params = LearnParams {
            parallelism,
            ..default_params()
        };
        let optimized = learn(&dataset, &params);
        assert_eq!(
            reference.contracts, optimized.contracts,
            "optimized learner diverges from the reference on {name} at parallelism {parallelism}"
        );
        runs.push(optimized);
    }
    // Full-pipeline determinism across worker counts (not just vs the
    // reference): parallelism must never change the learned set.
    assert_eq!(
        runs[0].contracts, runs[1].contracts,
        "{name} learns differently at parallelism 1 vs 8"
    );
}

#[test]
fn parallel_learner_matches_reference_on_edge_style() {
    learn_style(Style::EdgeIndent, "EDGE-LEARN-EQ");
}

#[test]
fn parallel_learner_matches_reference_on_wan_style() {
    learn_style(Style::WanFlat, "WAN-LEARN-EQ");
}
