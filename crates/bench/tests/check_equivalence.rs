//! Golden equivalence: the compiled check engine must produce
//! byte-identical reports to the naive oracle (`check_naive_parallel`,
//! kept behind the `naive-check` feature) — same violations in the same
//! order, same coverage — across config styles, injected faults, and
//! worker counts. This is the contract that lets every optimization in
//! the compiled engine land without a semantics review: the oracle is
//! the spec.

use concord_bench::{default_params, seed};
use concord_core::{check_naive_parallel, check_parallel, CheckReport, ContractSet, Dataset};
use concord_datagen::faults::{incidents, inject, Fault};
use concord_datagen::{generate_role, GeneratedRole, RoleSpec, Style};

/// Renders a report to a canonical string. Violations keep engine order
/// (order equality is part of the contract); coverage sets are sorted
/// (`HashSet` iteration order is not part of the report's meaning).
fn render(report: &CheckReport) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{v:?}\n"));
    }
    for c in &report.coverage.per_config {
        let mut covered: Vec<usize> = c.covered.iter().copied().collect();
        covered.sort_unstable();
        out.push_str(&format!(
            "coverage {} total={} covered={covered:?}\n",
            c.name, c.total_lines
        ));
        for (cat, lines) in &c.by_category {
            let mut lines: Vec<usize> = lines.iter().copied().collect();
            lines.sort_unstable();
            out.push_str(&format!("  {cat}: {lines:?}\n"));
        }
    }
    out
}

/// Applies a rotating fault per device; devices whose text lacks the
/// fault's marker stay clean (faults target style-specific lines).
fn with_faults(role: &GeneratedRole) -> Vec<(String, String)> {
    let faults = [
        incidents::MISSING_AGGREGATE,
        incidents::ROGUE_VLAN_BLOCK,
        incidents::VRF_INSERTION,
        Fault::ReplaceValue("10.", "172."),
        Fault::DuplicateLineContaining("vlan"),
    ];
    role.configs
        .iter()
        .enumerate()
        .map(|(i, (name, text))| {
            let text = match inject(text, faults[i % faults.len()]) {
                Some(injection) => injection.text,
                None => text.clone(),
            };
            (name.clone(), text)
        })
        .collect()
}

fn assert_engines_agree(contracts: &ContractSet, dataset: &Dataset, label: &str) {
    for parallelism in [1, 8] {
        let compiled = check_parallel(contracts, dataset, parallelism);
        let naive = check_naive_parallel(contracts, dataset, parallelism);
        assert_eq!(
            render(&compiled),
            render(&naive),
            "engines diverge on {label} at parallelism {parallelism}"
        );
        // The faulted datasets must actually exercise the engines.
        if label.contains("faulted") {
            assert!(
                !compiled.violations.is_empty(),
                "{label} produced no violations — the faults were not injected"
            );
        }
    }
}

fn check_style(style: Style, name: &str) {
    let spec = RoleSpec {
        name: name.to_string(),
        devices: 8,
        style,
        blocks: 6,
        with_metadata: true,
    };
    let role = generate_role(&spec, seed());
    // Constants on: present-exact contracts join the mix, so every
    // violation and coverage category is exercised.
    let dataset =
        Dataset::from_named_texts(&role.configs, &role.metadata).expect("clean dataset builds");
    let contracts = concord_core::learn(&dataset, &default_params());
    assert!(!contracts.is_empty(), "{name} learned no contracts");

    assert_engines_agree(&contracts, &dataset, &format!("{name} clean"));

    let faulted = with_faults(&role);
    let faulted_dataset =
        Dataset::from_named_texts(&faulted, &role.metadata).expect("faulted dataset builds");
    assert_engines_agree(&contracts, &faulted_dataset, &format!("{name} faulted"));
}

#[test]
fn compiled_engine_matches_naive_on_edge_style() {
    check_style(Style::EdgeIndent, "EDGE-EQ");
}

#[test]
fn compiled_engine_matches_naive_on_wan_style() {
    check_style(Style::WanFlat, "WAN-EQ");
}
