//! Exhaustive crash-point exploration over the durability layer.
//!
//! The scripted edit workload below runs once over a counting
//! [`FaultVfs`] with no faults armed, which yields the total number of
//! storage sync points the workload crosses (every `sync_data` /
//! `sync_all` / directory fsync in boot, WAL appends, and checkpoints).
//! The workload is then re-run once *per sync point*, crashing at
//! exactly that point: the sync fails, every later mutating filesystem
//! operation fails (the "process" is dead — pre-crash writes remain
//! visible, the friendly single-node crash model), and the surviving
//! directory is rebooted through the real filesystem.
//!
//! Two invariants must hold at **every** crash point `k`:
//!
//! 1. **Recovery is self-consistent.** The rebooted engine's CHECK is
//!    byte-identical to a clean engine rebuilt from scratch out of the
//!    recovered image — no torn write, half checkpoint, or truncated
//!    WAL tail leaks into the recovered state.
//! 2. **Nothing acknowledged is lost.** Re-applying exactly the ops the
//!    crashed run never acknowledged brings the rebooted engine to the
//!    clean run's final CHECK report and contract set, byte for byte.
//!    (Acknowledged ops must already be there via snapshot + WAL
//!    replay; unacknowledged ops are the client's to retry.)
//!
//! `CONCORD_CRASH_POINTS_MAX` bounds how many crash points a run
//! explores (0 = all) so CI can run a quick smoke while the full sweep
//! stays the default.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use concord_core::{CheckReport, ContractSet};
use concord_engine::{Engine, EngineOptions, FaultVfs, ResilientEngine};
use concord_lexer::Lexer;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("concord-crash-points-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One step of the scripted workload. Deterministic: the same sequence
/// runs in the clean pass and in every crashing pass.
#[derive(Debug, Clone)]
enum Step {
    Learn,
    Upsert(&'static str, &'static str),
    Remove(&'static str),
    Checkpoint,
}

fn corpus() -> Vec<(String, String)> {
    (0..4)
        .map(|i| {
            (
                format!("dev{i}"),
                format!("hostname DEV{}\nvlan {}\nmtu 1500\n", 100 + i, 250 + i),
            )
        })
        .collect()
}

/// The scripted workload: every durability code path — appends of all
/// op kinds, explicit checkpoints (segment writes, manifest rename, WAL
/// rotation, segment GC), and a final learn whose contracts land in the
/// image.
fn steps() -> Vec<Step> {
    vec![
        Step::Learn,
        Step::Upsert("dev0", "hostname DEV100\nvlan 999\nmtu 9000\n"),
        Step::Upsert("dev4", "hostname DEV104\nvlan 254\nmtu 1500\n"),
        Step::Checkpoint,
        Step::Remove("dev1"),
        Step::Upsert("dev2", "hostname DEV102\nvlan 777\nmtu 1500\n"),
        Step::Learn,
        Step::Checkpoint,
    ]
}

/// Renders a check report the way the serve layer does, so
/// "byte-identical" means the bytes a client would actually see.
fn render(report: &CheckReport) -> String {
    let mut s = String::new();
    for v in &report.violations {
        let _ = writeln!(s, "{v}");
    }
    let summary = report.coverage.summary();
    let _ = writeln!(
        s,
        "{} violations; coverage {:.3}% of {} lines",
        report.violations.len(),
        summary.fraction * 100.0,
        summary.total_lines,
    );
    s
}

/// The from-scratch oracle over an engine's own recovered image.
fn oracle(me: &ResilientEngine) -> String {
    let image = me.image();
    let mut oracle =
        Engine::from_corpus(&image.corpus(), &image.metadata, EngineOptions::default())
            .expect("oracle builds");
    if let Some(json) = &image.contracts {
        oracle.set_contracts(ContractSet::from_json(json).expect("image contracts parse"));
    }
    render(&oracle.check_dirty().expect("oracle checks").report)
}

/// The final observable state: the serve-rendered CHECK plus the
/// canonical contracts JSON.
fn final_state(me: &mut ResilientEngine) -> (String, String) {
    let check = render(&me.check().expect("final check").report);
    let contracts = me.image().contracts.clone().unwrap_or_default();
    (check, contracts)
}

/// Applies one step; `true` if the engine acknowledged it (so replay
/// after a crash must reproduce it without any help).
fn apply(me: &mut ResilientEngine, step: &Step) -> bool {
    match step {
        Step::Learn => me.relearn().is_ok(),
        Step::Upsert(name, text) => me.upsert(name, text).is_ok(),
        Step::Remove(name) => me.remove(name).is_ok(),
        Step::Checkpoint => me.checkpoint(),
    }
}

/// Runs the workload over `vfs` in a fresh `dir`. Returns the per-step
/// acknowledgement flags (`false` for steps never reached or never
/// acknowledged before the crash) and the engine if it survived.
fn run_workload(dir: &Path, vfs: &FaultVfs) -> (Vec<bool>, Option<ResilientEngine>) {
    let steps = steps();
    let mut acked = vec![false; steps.len()];
    let booted = ResilientEngine::with_store_vfs(
        &corpus(),
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        dir,
        Arc::new(vfs.clone()),
    );
    let Ok((mut me, _)) = booted else {
        // Crashed so early the state directory did not even open; every
        // step is unacknowledged.
        return (acked, None);
    };
    me.set_checkpoint_every(0); // sync points come only from the script
    for (i, step) in steps.iter().enumerate() {
        if vfs.crashed() {
            break; // the process is dead; nothing further is issued
        }
        acked[i] = apply(&mut me, step);
    }
    (acked, Some(me))
}

/// Reboots a (possibly crash-scarred) state directory through the real
/// filesystem, reseeding from the boot corpus when no usable snapshot
/// survived — exactly what a restarted production process would do.
fn reboot(dir: &Path) -> ResilientEngine {
    let (mut back, _) = ResilientEngine::with_store(
        &corpus(),
        &[],
        Lexer::standard(),
        EngineOptions::default(),
        dir,
    )
    .expect("reboot must always succeed through a healthy filesystem");
    back.set_checkpoint_every(0);
    back
}

#[test]
fn every_sync_point_crash_recovers_byte_identical() {
    // Pass 1: clean run under a counting VFS — no faults armed — to
    // enumerate the sync points and capture the oracle final state.
    let clean_dir = fresh_dir("clean");
    let clean_vfs = FaultVfs::new(0);
    let (clean_acked, clean_engine) = run_workload(&clean_dir, &clean_vfs);
    let mut clean_engine = clean_engine.expect("clean run boots");
    assert!(
        clean_acked.iter().all(|&a| a),
        "clean run must acknowledge every step: {clean_acked:?}"
    );
    assert_eq!(clean_vfs.faults(), 0, "clean run must inject nothing");
    let total = clean_vfs.sync_points();
    assert!(
        total >= 10,
        "workload must cross boot + append + checkpoint sync points, got {total}"
    );
    let (want_check, want_contracts) = final_state(&mut clean_engine);
    drop(clean_engine);
    let _ = std::fs::remove_dir_all(&clean_dir);

    // Pass 2: one run per sync point, crashing exactly there.
    let max = env_u64("CONCORD_CRASH_POINTS_MAX", 0);
    let explore = if max == 0 { total } else { total.min(max) };
    let mut crashed_runs = 0u64;
    for k in 1..=explore {
        let dir = fresh_dir("crash");
        let vfs = FaultVfs::new(k);
        vfs.crash_at_sync_point(k);
        let (acked, survivor) = run_workload(&dir, &vfs);
        assert!(
            vfs.crashed(),
            "crash point {k}/{total} never fired — sync-point schedule drifted"
        );
        crashed_runs += 1;
        drop(survivor); // kill the crashed process

        let mut back = reboot(&dir);

        // Invariant 1: recovery is self-consistent — the recovered
        // state checks byte-identically to a clean rebuild of itself.
        // (Crashes before the first Learn recover a contract-less
        // image, which has no CHECK output to compare yet.)
        if back.image().contracts.is_some() {
            let got = render(&back.check().expect("post-crash check").report);
            assert_eq!(
                got,
                oracle(&back),
                "crash point {k}/{total}: recovered state diverged from its own oracle"
            );
        }

        // Invariant 2: nothing acknowledged is lost — replaying only
        // the unacknowledged steps reaches the clean final state.
        for (step, was_acked) in steps().iter().zip(&acked) {
            if !was_acked {
                assert!(
                    apply(&mut back, step),
                    "crash point {k}/{total}: healthy re-apply of {step:?} failed"
                );
            }
        }
        let (got_check, got_contracts) = final_state(&mut back);
        assert_eq!(
            got_check, want_check,
            "crash point {k}/{total}: final CHECK diverged from the clean run"
        );
        assert_eq!(
            got_contracts, want_contracts,
            "crash point {k}/{total}: final contracts diverged from the clean run"
        );
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(crashed_runs, explore);
}
