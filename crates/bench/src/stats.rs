//! Sampling statistics for the precision study (§5.4).
//!
//! The paper sizes its manual-review samples with the classic proportion
//! formula `n = Z²·p·(1−p)/E²` followed by the finite population
//! correction `n_adj = n / (1 + n/N)`, capping review effort at 150
//! contracts per category and reporting the achieved margin of error.

/// z-score for 95% confidence.
pub const Z_95: f64 = 1.96;

/// The paper's review cap per category.
pub const REVIEW_CAP: usize = 150;

/// Computes the uncorrected sample size `n = Z²·p·(1−p)/E²`.
pub fn sample_size(z: f64, p: f64, e: f64) -> f64 {
    z * z * p * (1.0 - p) / (e * e)
}

/// Applies the finite population correction `n / (1 + n/N)`.
pub fn fpc(n: f64, population: usize) -> f64 {
    if population == 0 {
        return 0.0;
    }
    n / (1.0 + n / population as f64)
}

/// The margin of error achieved when reviewing `n` of `population` items
/// with estimated proportion `p` at confidence `z`.
pub fn achieved_margin(z: f64, p: f64, n: usize, population: usize) -> f64 {
    if n == 0 || population <= 1 || n >= population {
        return 0.0;
    }
    let n_f = n as f64;
    let pop = population as f64;
    z * (p * (1.0 - p) / n_f * ((pop - n_f) / (pop - 1.0))).sqrt()
}

/// One row of Table 6: the adjusted sample size and achieved error for a
/// contract category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePlan {
    /// Contracts to review (`n_adj`, capped and bounded by `N`).
    pub n_adj: usize,
    /// Achieved margin of error.
    pub error: f64,
}

/// Plans the review sample for a category of `population` contracts with
/// LLM-estimated true-positive proportion `p` (target E = 5%, Z = 95%).
///
/// Mirrors §5.4: categories needing more than [`REVIEW_CAP`] reviews are
/// capped (raising the error, never above ~10%), and categories with
/// fewer than 10 contracts are reviewed exhaustively.
pub fn plan_sample(p: f64, population: usize) -> SamplePlan {
    if population < 10 {
        return SamplePlan {
            n_adj: population,
            error: 0.0,
        };
    }
    // An extreme estimate (p near 0 or 1) would size the sample at ~0;
    // clamp so every sizable category still gets a meaningful review.
    let p = p.clamp(0.1, 0.9);
    let n = sample_size(Z_95, p, 0.05);
    let adjusted = fpc(n, population).ceil() as usize;
    let n_adj = adjusted.min(REVIEW_CAP).min(population);
    let error = achieved_margin(Z_95, p, n_adj, population);
    SamplePlan { n_adj, error }
}

/// Builds a CDF over discrete 1–10 scores: `cdf[i]` is the fraction of
/// scores `>= 10 - i` (matching Figure 9's descending score axis).
pub fn score_cdf(scores: &[u8]) -> Vec<f64> {
    let total = scores.len().max(1) as f64;
    let mut counts = [0usize; 11];
    for &s in scores {
        counts[usize::from(s.clamp(1, 10))] += 1;
    }
    let mut cdf = Vec::with_capacity(10);
    let mut acc = 0usize;
    for score in (1..=10).rev() {
        acc += counts[score];
        cdf.push(acc as f64 / total);
    }
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_sample_size() {
        // p = 0.5, E = 5%, Z = 1.96 -> n ≈ 384.16.
        let n = sample_size(Z_95, 0.5, 0.05);
        assert!((n - 384.16).abs() < 0.1, "{n}");
    }

    #[test]
    fn fpc_shrinks() {
        let n = sample_size(Z_95, 0.5, 0.05);
        let adjusted = fpc(n, 1000);
        assert!(adjusted < n);
        assert!((adjusted - 277.7).abs() < 1.0, "{adjusted}");
    }

    #[test]
    fn plan_reviews_small_categories_exhaustively() {
        let plan = plan_sample(0.9, 9);
        assert_eq!(plan.n_adj, 9);
        assert_eq!(plan.error, 0.0);
    }

    #[test]
    fn plan_caps_at_150_with_bounded_error() {
        // A huge category at p=0.5 wants ~384 reviews; the cap raises E
        // but keeps it under 10% (as in the paper).
        let plan = plan_sample(0.5, 10_000);
        assert_eq!(plan.n_adj, REVIEW_CAP);
        assert!(plan.error > 0.05 && plan.error < 0.10, "{}", plan.error);
    }

    #[test]
    fn plan_hits_5_percent_when_uncapped() {
        let plan = plan_sample(0.9, 500);
        assert!(plan.n_adj < REVIEW_CAP);
        assert!(plan.error <= 0.051, "{}", plan.error);
    }

    #[test]
    fn cdf_monotone_and_normalized() {
        let scores = vec![10, 9, 9, 7, 3, 1];
        let cdf = score_cdf(&scores);
        assert_eq!(cdf.len(), 10);
        assert!((cdf[0] - 1.0 / 6.0).abs() < 1e-9); // >= 10
        assert!((cdf[9] - 1.0).abs() < 1e-9); // >= 1
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn empty_scores_yield_zero_cdf() {
        let cdf = score_cdf(&[]);
        assert!(cdf.iter().all(|&v| v == 0.0));
    }
}
