//! A minimal wall-clock micro-benchmark harness.
//!
//! The bench targets under `benches/` use this instead of an external
//! framework so the workspace builds hermetically. It follows the same
//! shape as the original criterion setup (warm-up, fixed sample count,
//! report the distribution) but measures with plain [`Instant`].

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (matches the old
/// `sample_size(10)` configuration).
pub const SAMPLES: usize = 10;

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Timed samples taken.
    pub samples: usize,
    /// Fastest sample — the least-noisy single-shot estimate.
    pub min: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// Runs `f` once to warm up, then [`SAMPLES`] timed iterations, and
/// prints a one-line summary `name  min  mean  max`.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    let min = *times.iter().min().expect("SAMPLES > 0");
    let max = *times.iter().max().expect("SAMPLES > 0");
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let m = Measurement {
        samples: times.len(),
        min,
        mean,
        max,
    };
    println!(
        "{name:<40} min {:>10}  mean {:>10}  max {:>10}  ({} samples)",
        fmt(min),
        fmt(mean),
        fmt(max),
        m.samples,
    );
    m
}

/// Peak resident set size of this process in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or if the field is
/// unavailable — bench snapshots record it as `null` there, so the
/// schema stays stable across platforms.
pub fn max_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest.trim().trim_end_matches("kB").trim().parse().ok();
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Formats a duration with a unit suited to its magnitude.
pub fn fmt(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_all_samples() {
        let mut calls = 0u32;
        let m = bench("noop", || calls += 1);
        assert_eq!(m.samples, SAMPLES);
        assert_eq!(calls as usize, SAMPLES + 1); // warm-up + samples
        assert!(m.min <= m.mean && m.mean <= m.max);
    }

    #[test]
    fn max_rss_is_positive_on_linux() {
        let rss = max_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(rss.expect("VmHWM present on Linux") > 0);
        }
    }

    #[test]
    fn fmt_picks_units() {
        assert_eq!(fmt(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt(Duration::from_secs(2)), "2.00s");
    }
}
