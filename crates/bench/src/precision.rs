//! Shared machinery for the precision experiments (Figure 9, Tables 6–7).
//!
//! For each dataset family (Edge = E1–E2, WAN = W1–W8) contracts are
//! learned per role, every contract receives an oracle verdict (does it
//! survive on freshly generated devices?) and a deterministic 1–10 score
//! (the LLM substitute). Per-category work is capped to keep wall-clock
//! bounded; the cap is far above the paper's review sizes.

use std::collections::BTreeMap;

use concord_core::learn;

use crate::oracle::{score_1_to_10, Oracle};
use crate::{dataset_of, generate, roles, seed, CATEGORY_COLUMNS};

/// Max contracts evaluated per (role, category).
pub const PER_ROLE_CATEGORY_CAP: usize = 120;

/// One evaluated contract.
#[derive(Debug, Clone, Copy)]
pub struct Scored {
    /// Oracle verdict: holds on unseen same-template devices.
    pub valid: bool,
    /// The 1–10 LLM-substitute confidence score.
    pub score: u8,
}

/// Per-family, per-category scored contracts.
pub type FamilyScores = BTreeMap<&'static str, Vec<Scored>>;

/// Evaluates one family of roles (`prefix` = `"E"` or `"W"`).
pub fn evaluate_family(prefix: &str) -> FamilyScores {
    let mut out: FamilyScores = BTreeMap::new();
    for column in CATEGORY_COLUMNS {
        out.insert(column, Vec::new());
    }
    // No constant learning here: exact-line constants are deployment-
    // local by design and are not part of the paper's precision study.
    let params = concord_core::LearnParams::default();
    for spec in roles().into_iter().filter(|s| s.name.starts_with(prefix)) {
        let role = generate(&spec);
        let dataset = dataset_of(&role);
        let contracts = learn(&dataset, &params);
        let oracle = Oracle::new(&spec, seed());
        let mut taken: BTreeMap<&str, usize> = BTreeMap::new();
        for contract in &contracts.contracts {
            let category = contract.category();
            let Some(bucket) = out.get_mut(category) else {
                continue;
            };
            let count = taken.entry(category).or_insert(0);
            if *count >= PER_ROLE_CATEGORY_CAP {
                continue;
            }
            *count += 1;
            let valid = oracle.is_valid(contract);
            bucket.push(Scored {
                valid,
                score: score_1_to_10(contract, valid),
            });
        }
    }
    out
}

/// Precision (fraction valid) of a scored sample; `None` when empty.
pub fn precision(scored: &[Scored]) -> Option<f64> {
    if scored.is_empty() {
        return None;
    }
    Some(scored.iter().filter(|s| s.valid).count() as f64 / scored.len() as f64)
}

/// LLM-estimated true-positive proportion: fraction of scores in 6–10.
pub fn estimated_p(scored: &[Scored]) -> Option<f64> {
    if scored.is_empty() {
        return None;
    }
    Some(scored.iter().filter(|s| s.score >= 6).count() as f64 / scored.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(valid: bool, score: u8) -> Scored {
        Scored { valid, score }
    }

    #[test]
    fn precision_counts_valid_fraction() {
        assert_eq!(precision(&[]), None);
        let sample = [
            scored(true, 9),
            scored(true, 8),
            scored(false, 2),
            scored(false, 3),
        ];
        assert_eq!(precision(&sample), Some(0.5));
    }

    #[test]
    fn estimated_p_counts_high_scores() {
        assert_eq!(estimated_p(&[]), None);
        let sample = [scored(true, 9), scored(false, 6), scored(false, 5)];
        let p = estimated_p(&sample).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn family_scores_cover_all_categories() {
        // A cheap smoke test at tiny scale: every category key exists
        // even if empty.
        std::env::set_var("CONCORD_SCALE", "0.1");
        let scores = evaluate_family("E");
        std::env::remove_var("CONCORD_SCALE");
        for column in crate::CATEGORY_COLUMNS {
            assert!(scores.contains_key(column));
        }
    }
}
