#![warn(missing_docs)]

//! Shared infrastructure for the experiment harness.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §5 for the index). This library
//! provides the common pieces: dataset construction from the synthetic
//! roles, wall-clock timing, the ground-truth *oracle* that replaces the
//! paper's GPT-4 + manual review (a learned contract is a true positive
//! iff it keeps holding on freshly generated devices from the same role
//! template), the deterministic 1–10 scorer standing in for the LLM, the
//! sample-size statistics of §5.4, and machine-readable result output
//! under `target/experiments/`.

pub mod microbench;
pub mod oracle;
pub mod precision;
pub mod stats;

use std::time::{Duration, Instant};

use concord_core::{Dataset, LearnParams};
use concord_datagen::{generate_role, standard_roles, GeneratedRole, RoleSpec};

/// The scale factor for dataset generation, read from `CONCORD_SCALE`
/// (default 0.5 — laptop-friendly; raise it to approach paper-scale).
pub fn scale() -> f64 {
    std::env::var("CONCORD_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// The base seed for dataset generation, read from `CONCORD_SEED`.
pub fn seed() -> u64 {
    std::env::var("CONCORD_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20260427)
}

/// Returns the ten standard roles at the configured scale.
pub fn roles() -> Vec<RoleSpec> {
    standard_roles(scale())
}

/// Generates a role with the configured seed.
pub fn generate(spec: &RoleSpec) -> GeneratedRole {
    generate_role(spec, seed())
}

/// Builds a [`Dataset`] from a generated role.
pub fn dataset_of(role: &GeneratedRole) -> Dataset {
    Dataset::from_named_texts(&role.configs, &role.metadata).expect("dataset builds")
}

/// Default learning parameters for experiments (constants enabled, as the
/// coverage tables assume; ordering learned — the harness filters where a
/// table calls for it).
pub fn default_params() -> LearnParams {
    LearnParams {
        learn_constants: true,
        ..LearnParams::default()
    }
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration like the paper's tables (`0.1s`, `16.0s`).
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.1}s", d.as_secs_f64())
}

/// Writes a machine-readable experiment result under
/// `target/experiments/<name>.json`.
pub fn write_result(name: &str, json: &concord_json::Value) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(text) = concord_json::to_string_pretty(json) {
            let _ = std::fs::write(&path, text);
            eprintln!("(wrote {})", path.display());
        }
    }
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = *w))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Groups the 8 per-category columns of Tables 4–7 in paper order.
pub const CATEGORY_COLUMNS: [&str; 8] = [
    "present", "ordering", "type", "unique", "sequence", "equality", "contains", "affix",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_generate_at_scale() {
        let roles = roles();
        assert_eq!(roles.len(), 10);
    }

    #[test]
    fn timing_is_positive() {
        let (v, d) = timed(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49995000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn fmt_secs_matches_table_style() {
        assert_eq!(fmt_secs(Duration::from_millis(100)), "0.1s");
        assert_eq!(fmt_secs(Duration::from_secs(16)), "16.0s");
    }

    #[test]
    fn row_aligns() {
        let r = row(&["a".into(), "bb".into()], &[4, 4]);
        assert_eq!(r, "a    bb  ");
    }
}
