//! Figure 9: CDFs of the (LLM-substitute) 1–10 confidence scores per
//! contract category, for the WAN and edge dataset families.
//!
//! Each row prints the cumulative fraction of contracts scoring at least
//! 10, 9, ..., 1 (matching the descending score axis of the figure).
//! Scores 6–10 count as estimated true positives, the input to Table 6's
//! sample sizing.
//!
//! Run with: `cargo run --release -p concord-bench --bin fig9`

use concord_bench::precision::{evaluate_family, FamilyScores};
use concord_bench::stats::score_cdf;
use concord_bench::{write_result, CATEGORY_COLUMNS};

fn print_family(label: &str, scores: &FamilyScores, out: &mut Vec<concord_json::Value>) {
    println!("== {label} ==");
    println!("{:<10} {:>5}  CDF over scores 10..1", "category", "n");
    for category in CATEGORY_COLUMNS {
        let scored = &scores[category];
        let cdf = score_cdf(&scored.iter().map(|s| s.score).collect::<Vec<_>>());
        let rendered: Vec<String> = cdf.iter().map(|v| format!("{v:.2}")).collect();
        println!(
            "{category:<10} {:>5}  [{}]",
            scored.len(),
            rendered.join(" ")
        );
        out.push(concord_json::json!({
            "family": label,
            "category": category,
            "n": scored.len(),
            "cdf_desc_scores": cdf,
        }));
    }
    println!();
}

fn main() {
    let mut results = Vec::new();
    let edge = evaluate_family("E");
    print_family("Edge", &edge, &mut results);
    let wan = evaluate_family("W");
    print_family("WAN", &wan, &mut results);
    println!("(scores 6-10 are estimated true positives; see table6 for the\n resulting sample sizes and table7 for oracle precision)");
    write_result("fig9", &concord_json::json!({ "rows": results }));
}
