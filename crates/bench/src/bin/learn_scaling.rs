//! Learn-engine scaling: the sequential reference learner
//! (`learn_reference`, kept behind the `reference-learn` feature) vs the
//! parallel learn engine on growing relational-heavy workloads.
//!
//! For each dataset size the harness times three learners (minimum of
//! several samples): the pre-optimization reference (sequential miners,
//! left-fold relational accumulation, std hashing), the optimized engine
//! at parallelism 1 (isolating the algorithmic wins — Fx hashing,
//! allocation discipline), and the optimized engine at parallelism 8
//! (adding concurrent miners, the tree merge, and parallel
//! minimization). Contract sets are asserted identical before the
//! timings are compared, then the curve is recorded into
//! `BENCH_learn.json` at the repository root (and
//! `target/experiments/learn_scaling.json`). Pass `--smoke` (or set
//! `CONCORD_LEARN_SMOKE=1`) for the small CI sizes.
//!
//! The workload is the EdgeIndent generator with many repeated blocks
//! per device: relational candidate mining and witness accumulation
//! dominate, which is exactly what the tree merge and Fx hot paths
//! target.

use concord_bench::{dataset_of, fmt_secs, seed, timed, write_result};
use concord_core::{learn_reference, learn_with_stats, ContractSet, LearnParams};
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_json::{json, Json};
use std::time::Duration;

/// Timed learn samples per engine; the minimum is the reported estimate.
/// Samples are interleaved round-robin across the three engines so a
/// transient noise window (another tenant, frequency dip) degrades all
/// arms alike instead of skewing one ratio.
const SAMPLES: usize = 5;

/// Repeated-block knob (`CONCORD_LEARN_BLOCKS` overrides): per-device
/// VLAN/interface/prefix-list multiplicity. Relational mining cost grows
/// with the number of candidate witnesses per config, so this is the
/// axis that stresses the accumulation merge. Full runs use the value
/// the committed `BENCH_learn.json` was measured at; smoke runs shrink
/// it to keep CI fast.
const BLOCKS_FULL: usize = 96;
const BLOCKS_SMOKE: usize = 24;

fn blocks() -> usize {
    std::env::var("CONCORD_LEARN_BLOCKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { BLOCKS_SMOKE } else { BLOCKS_FULL })
}

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("CONCORD_LEARN_SMOKE").is_ok_and(|v| v == "1")
}

/// Keeps the fastest sample seen so far for one engine.
fn keep_min<T>(best: &mut Option<(T, Duration)>, sample: (T, Duration)) {
    if best.as_ref().is_none_or(|(_, t)| sample.1 < *t) {
        *best = Some(sample);
    }
}

fn main() {
    let sizes: &[usize] = if smoke() {
        &[4, 8, 16]
    } else {
        &[8, 16, 32, 64]
    };

    let mut entries: Vec<Json> = Vec::new();
    for &devices in sizes {
        let spec = RoleSpec {
            name: format!("SCALE{devices}"),
            devices,
            style: Style::EdgeIndent,
            blocks: blocks(),
            with_metadata: false,
        };
        let role = generate_role(&spec, seed());
        let dataset = dataset_of(&role);
        // Constants on: per-line Present mining adds miner-side load so
        // the concurrent-miner stage has real work to overlap.
        let params = LearnParams {
            learn_constants: true,
            ..LearnParams::default()
        };
        let p8 = LearnParams {
            parallelism: 8,
            ..params.clone()
        };

        let mut reference_best: Option<(ContractSet, Duration)> = None;
        let mut p1_best = None;
        let mut p8_best = None;
        for _ in 0..SAMPLES {
            keep_min(
                &mut reference_best,
                timed(|| learn_reference(&dataset, &params)),
            );
            keep_min(&mut p1_best, timed(|| learn_with_stats(&dataset, &params)));
            keep_min(&mut p8_best, timed(|| learn_with_stats(&dataset, &p8)));
        }
        let (reference, reference_time) = reference_best.expect("SAMPLES > 0");
        let (optimized_p1, p1_time) = p1_best.expect("SAMPLES > 0");
        let (optimized_p8, p8_time) = p8_best.expect("SAMPLES > 0");
        if std::env::var_os("CONCORD_LEARN_DEBUG_STATS").is_some() {
            eprintln!("p1 stats: {:?}", optimized_p1.1);
        }
        assert_eq!(
            reference.contracts, optimized_p1.0.contracts,
            "optimized learner (p=1) must match the reference before timings are comparable"
        );
        assert_eq!(
            reference.contracts, optimized_p8.0.contracts,
            "optimized learner (p=8) must match the reference before timings are comparable"
        );
        let stats = optimized_p8.1;

        let speedup_p1 = reference_time.as_secs_f64() / p1_time.as_secs_f64().max(1e-9);
        let speedup_p8 = reference_time.as_secs_f64() / p8_time.as_secs_f64().max(1e-9);
        println!(
            "{:>4} configs ({} lines, {} contracts): reference {} / optimized p1 {} ({speedup_p1:.1}x) / optimized p8 {} ({speedup_p8:.1}x)",
            devices,
            role.total_lines(),
            reference.contracts.len(),
            fmt_secs(reference_time),
            fmt_secs(p1_time),
            fmt_secs(p8_time),
        );

        let miners = Json::Array(
            stats
                .miner_times
                .iter()
                .map(|(name, time)| json!({ "name": name.as_str(), "secs": time.as_secs_f64() }))
                .collect(),
        );
        entries.push(json!({
            "configs": devices,
            "lines": role.total_lines(),
            "contracts": reference.contracts.len(),
            "reference_secs": reference_time.as_secs_f64(),
            "optimized_p1_secs": p1_time.as_secs_f64(),
            "optimized_p8_secs": p8_time.as_secs_f64(),
            "speedup_p1": speedup_p1,
            "speedup_p8": speedup_p8,
            "miner_parallelism": stats.miner_parallelism,
            "relational_merge_secs": stats.relational_merge_time.as_secs_f64(),
            "fanout_truncations": stats.fanout_truncations,
            "minimize_secs": stats.minimize_time.as_secs_f64(),
            "miners": miners,
        }));
    }

    let result = json!({
        "schema": "concord-bench-learn/v1",
        "smoke": smoke(),
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "seed": seed(),
        "blocks": blocks(),
        "sizes": Json::Array(entries),
    });
    write_result("learn_scaling", &result);
    if !smoke() {
        write_bench_file(&result);
    }
}

/// Writes the latest run to `BENCH_learn.json` at the repository root.
/// A snapshot, not an append-only log: the scaling curve is the
/// artifact, not its history. Smoke runs skip it — the committed
/// snapshot is always a full-ladder measurement.
fn write_bench_file(result: &Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_learn.json");
    let text = concord_json::to_string_pretty(result).expect("result serializes");
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}
