//! Table 5: coverage contributed by each contract category individually.
//!
//! Run with: `cargo run --release -p concord-bench --bin table5`

use std::collections::BTreeMap;

use concord_bench::{
    dataset_of, default_params, generate, roles, row, write_result, CATEGORY_COLUMNS,
};
use concord_core::{check_parallel, learn};

fn main() {
    let widths = [8, 8, 9, 6, 7, 9, 9, 9, 6];
    // Type never contributes coverage by construction, so the paper's
    // Table 5 omits it; keep the column order otherwise.
    let columns: Vec<&str> = CATEGORY_COLUMNS
        .iter()
        .copied()
        .filter(|&c| c != "type")
        .collect();
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(columns.iter().map(|s| s.to_string()));
    println!("{}", row(&header, &widths));

    let params = default_params();
    let mut results = Vec::new();
    for spec in roles() {
        let role = generate(&spec);
        let dataset = dataset_of(&role);
        let contracts = learn(&dataset, &params);
        let report = check_parallel(&contracts, &dataset, 1);
        let summary = report.coverage.summary();
        let mut cells = vec![spec.name.clone()];
        let mut by_cat: BTreeMap<String, f64> = BTreeMap::new();
        for &col in &columns {
            let fraction = summary.by_category.get(col).copied().unwrap_or(0.0);
            by_cat.insert(col.to_string(), fraction);
            cells.push(format!("{:.1}%", fraction * 100.0));
        }
        println!("{}", row(&cells, &widths));
        results.push(concord_json::json!({
            "role": spec.name,
            "coverage_by_category": by_cat,
        }));
    }
    write_result("table5", &concord_json::json!({ "rows": results }));
}
