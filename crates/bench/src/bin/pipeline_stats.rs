//! Pipeline performance trajectory: records per-stage timing and lex-cache
//! effectiveness into `BENCH_pipeline.json` at the repository root (and
//! `target/experiments/pipeline_stats.json`), so successive changes have a
//! measured baseline to compare against.
//!
//! The workload is the deterministic synthetic W2 role (same generator the
//! paper-table harness uses), so numbers are comparable across runs on the
//! same machine. Dataset construction is measured twice — scanner only,
//! then with the shared lex cache — to keep the cache's speedup visible in
//! the trajectory.

use concord_bench::{fmt_secs, scale, seed, write_result};
use concord_core::{
    check_parallel_with_stats, learn_with_stats, Dataset, LearnParams, PipelineStats,
};
use concord_datagen::{generate_role, standard_roles};
use concord_json::{json, Json};
use concord_lexer::{LexCache, Lexer};
use std::time::{Duration, Instant};

/// Timed build samples; the minimum is the reported estimate.
const SAMPLES: usize = 5;

fn min_build_time(
    configs: &[(String, String)],
    lexer: &Lexer,
    cached: bool,
) -> (Duration, concord_core::BuildStats) {
    let mut best: Option<(Duration, concord_core::BuildStats)> = None;
    for _ in 0..SAMPLES {
        // A fresh cache per sample: we measure one cold build, not reuse.
        let cache = LexCache::new();
        let cache_ref = cached.then_some(&cache);
        let start = Instant::now();
        let (_, stats) = Dataset::build_with_stats(configs, &[], lexer, true, 1, cache_ref)
            .expect("build succeeds");
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, stats));
        }
    }
    best.expect("SAMPLES > 0")
}

fn main() {
    let spec = standard_roles(scale())
        .into_iter()
        .find(|s| s.name == "W2")
        .expect("W2 exists");
    let role = generate_role(&spec, seed());
    let lexer = Lexer::standard();
    let params = LearnParams::default();

    let (uncached_time, uncached_stats) = min_build_time(&role.configs, &lexer, false);
    let (cached_time, cached_stats) = min_build_time(&role.configs, &lexer, true);
    let speedup = uncached_time.as_secs_f64() / cached_time.as_secs_f64().max(1e-9);

    let total = Instant::now();
    let cache = LexCache::new();
    let (dataset, build_stats) =
        Dataset::build_with_stats(&role.configs, &[], &lexer, true, 1, Some(&cache))
            .expect("build succeeds");
    let (contracts, learn_stats) = learn_with_stats(&dataset, &params);
    let (_report, check_stats) = check_parallel_with_stats(&contracts, &dataset, 1);
    let pipeline = PipelineStats {
        check: Some(check_stats),
        build: Some(build_stats),
        learn: Some(learn_stats),
        engine: None,
        total_time: total.elapsed(),
    };

    println!(
        "build W2 ({} configs, {} lines): uncached {} / cached {} ({speedup:.2}x, {} hits / {} misses)",
        role.configs.len(),
        uncached_stats.lines,
        fmt_secs(uncached_time),
        fmt_secs(cached_time),
        cached_stats.cache_hits,
        cached_stats.cache_misses,
    );
    println!("{}", pipeline.render_text());
    assert!(
        cached_stats.cache_hits > 0,
        "repetitive configs must hit the lex cache"
    );

    let result = json!({
        "schema": "concord-bench-pipeline/v1",
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "workload": json!({
            "role": "W2",
            "scale": scale(),
            "seed": seed(),
            "configs": role.configs.len(),
            "lines": uncached_stats.lines,
            "patterns": uncached_stats.patterns,
        }),
        "build_uncached_secs": uncached_time.as_secs_f64(),
        "build_cached_secs": cached_time.as_secs_f64(),
        "cache_speedup": speedup,
        "pipeline": pipeline.to_json(),
    });
    write_result("pipeline_stats", &result);
    write_trajectory(&result);
}

/// Appends this run to the `BENCH_pipeline.json` trajectory at the
/// repository root (a JSON array, one entry per recorded run).
fn write_trajectory(result: &Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    let mut runs: Vec<Json> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| json.as_array().map(<[Json]>::to_vec))
        .unwrap_or_default();
    runs.push(result.clone());
    let text = concord_json::to_string_pretty(&Json::Array(runs)).expect("trajectory serializes");
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("(appended run to {})", path.display()),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}
