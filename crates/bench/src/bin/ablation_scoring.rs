//! Ablation: the informativeness/diversity score filter (§3.5).
//!
//! The paper argues that scoring relation instances by how unlikely they
//! are to be coincidental (and aggregating over diverse witnesses) is
//! what keeps relational learning from drowning in spurious contracts.
//! This experiment disables the filter (threshold 0) and measures, per
//! role: how many extra relational contracts appear, and what fraction of
//! the extras fail the ground-truth oracle (i.e. are exactly the false
//! positives the filter exists to remove).
//!
//! Run with: `cargo run --release -p concord-bench --bin ablation_scoring`

use std::collections::HashSet;

use concord_bench::oracle::Oracle;
use concord_bench::{dataset_of, generate, roles, seed, timed, write_result};
use concord_core::{check, learn, Contract, LearnParams};

fn relational_only(threshold: f64) -> LearnParams {
    LearnParams {
        enable_present: false,
        enable_ordering: false,
        enable_type: false,
        enable_sequence: false,
        enable_unique: false,
        score_threshold: threshold,
        ..LearnParams::default()
    }
}

fn main() {
    println!(
        "{:<8} {:>9} {:>11} {:>7} {:>17} {:>10}",
        "role", "filtered", "unfiltered", "extra", "extra-FP-rate", "check-cost"
    );
    let mut rows = Vec::new();
    for spec in roles() {
        let role = generate(&spec);
        let dataset = dataset_of(&role);
        let filtered = learn(
            &dataset,
            &relational_only(LearnParams::default().score_threshold),
        );
        let unfiltered = learn(&dataset, &relational_only(0.0));

        let keys = |set: &concord_core::ContractSet| -> HashSet<String> {
            set.contracts.iter().map(Contract::describe).collect()
        };
        let kept = keys(&filtered);
        let extras: Vec<&Contract> = unfiltered
            .contracts
            .iter()
            .filter(|c| !kept.contains(&c.describe()))
            .collect();

        // Judge a bounded sample of the extras against the oracle.
        let oracle = Oracle::new(&spec, seed());
        let sample: Vec<&&Contract> = extras.iter().take(60).collect();
        let false_positives = sample.iter().filter(|c| !oracle.is_valid(c)).count();
        let fp_rate = if sample.is_empty() {
            0.0
        } else {
            false_positives as f64 / sample.len() as f64
        };
        // The extra contracts also cost checking time on every change.
        let (_, check_filtered) = timed(|| check(&filtered, &dataset));
        let (_, check_unfiltered) = timed(|| check(&unfiltered, &dataset));
        println!(
            "{:<8} {:>9} {:>11} {:>7} {:>16.0}% {:>9.2}x",
            spec.name,
            filtered.len(),
            unfiltered.len(),
            extras.len(),
            fp_rate * 100.0,
            check_unfiltered.as_secs_f64() / check_filtered.as_secs_f64().max(1e-9),
        );
        rows.push(concord_json::json!({
            "role": spec.name,
            "filtered": filtered.len(),
            "unfiltered": unfiltered.len(),
            "extras": extras.len(),
            "extras_sampled": sample.len(),
            "extra_fp_rate": fp_rate,
            "check_slowdown": check_unfiltered.as_secs_f64() / check_filtered.as_secs_f64().max(1e-9),
        }));
    }
    println!(
        "\nThe score filter (§3.5) halves the relational contract set. The\nremoved extras are low-informativeness matches between common\nconstants — on real data those are the coincidences the paper\npenalizes; on deterministic synthetic templates a slice of them still\nsurvives the oracle, while the rest (e.g. 40% on E2) are outright\nfalse positives. The extras also tax every future check run."
    );
    write_result("ablation_scoring", &concord_json::json!({ "rows": rows }));
}
