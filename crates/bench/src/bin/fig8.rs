//! Figure 8: contract minimization reduction factor per role (§3.6).
//!
//! The reduction factor is the ratio of relational contracts before and
//! after SCC + transitive-reduction minimization (the paper reports
//! 2.5x–22.3x across roles).
//!
//! Run with: `cargo run --release -p concord-bench --bin fig8`

use concord_bench::{dataset_of, default_params, generate, roles, row, write_result};
use concord_core::{learn, Contract};

fn main() {
    let widths = [8, 8, 8, 10];
    println!(
        "{}",
        row(
            &["Dataset", "Before", "After", "Reduction"].map(String::from),
            &widths
        )
    );
    let params = default_params();
    let mut results = Vec::new();
    for spec in roles() {
        let role = generate(&spec);
        let dataset = dataset_of(&role);
        let contracts = learn(&dataset, &params);
        let after = contracts
            .contracts
            .iter()
            .filter(|c| matches!(c, Contract::Relational(_)))
            .count();
        let before = contracts.relational_before_minimization;
        let factor = if after == 0 {
            1.0
        } else {
            before as f64 / after as f64
        };
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    before.to_string(),
                    after.to_string(),
                    format!("{factor:.2}x"),
                ],
                &widths
            )
        );
        results.push(concord_json::json!({
            "role": spec.name,
            "before": before,
            "after": after,
            "reduction": factor,
        }));
    }
    write_result("fig8", &concord_json::json!({ "rows": results }));
}
