//! Table 4: contracts learned per category and total coverage per role.
//!
//! Run with: `cargo run --release -p concord-bench --bin table4`

use std::collections::BTreeMap;

use concord_bench::{
    dataset_of, default_params, generate, roles, row, write_result, CATEGORY_COLUMNS,
};
use concord_core::{check_parallel, learn};

fn main() {
    let widths = [8, 8, 9, 6, 7, 9, 9, 9, 6, 7];
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(CATEGORY_COLUMNS.iter().map(|s| s.to_string()));
    header.push("Cov".into());
    println!("{}", row(&header, &widths));

    let params = default_params();
    let mut results = Vec::new();
    let mut totals: BTreeMap<&str, usize> = BTreeMap::new();
    for spec in roles() {
        let role = generate(&spec);
        let dataset = dataset_of(&role);
        let contracts = learn(&dataset, &params);
        let report = check_parallel(&contracts, &dataset, 1);
        let summary = report.coverage.summary();
        let counts = contracts.count_by_category();
        let mut cells = vec![spec.name.clone()];
        for col in CATEGORY_COLUMNS {
            let count = counts.get(col).copied().unwrap_or(0);
            *totals.entry(col).or_insert(0) += count;
            cells.push(count.to_string());
        }
        cells.push(format!("{:.1}%", summary.fraction * 100.0));
        println!("{}", row(&cells, &widths));
        results.push(concord_json::json!({
            "role": spec.name,
            "counts": counts.iter().map(|(k, v)| (k.to_string(), v)).collect::<BTreeMap<_, _>>(),
            "coverage": summary.fraction,
        }));
    }
    let mut cells = vec!["Total".to_string()];
    for col in CATEGORY_COLUMNS {
        cells.push(totals.get(col).copied().unwrap_or(0).to_string());
    }
    cells.push("-".into());
    println!("{}", row(&cells, &widths));
    write_result("table4", &concord_json::json!({ "rows": results }));
}
