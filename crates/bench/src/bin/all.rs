//! Runs every experiment in sequence — the one-command reproduction of
//! the paper's evaluation section.
//!
//! Run with: `cargo run --release -p concord-bench --bin all`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table3",
    "fig6",
    "bruteforce",
    "table4",
    "table5",
    "fig7",
    "fig8",
    "fig9",
    "table6",
    "table7",
    "table8",
    "incidents",
    "ablation_scoring",
    "baseline_kv",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("executable directory");
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================");
        let status = Command::new(exe_dir.join(name)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name}: exited with {s}");
                failed.push(*name);
            }
            Err(e) => {
                eprintln!("{name}: failed to launch ({e}); build with --release first");
                failed.push(*name);
            }
        }
    }
    if failed.is_empty() {
        println!(
            "\nall {} experiments completed; results under target/experiments/",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
