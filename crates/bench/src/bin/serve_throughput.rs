//! Serve-transport throughput: serial request/response vs pipelining,
//! BATCH, and binary frames against the event-driven serve loop.
//!
//! The harness boots a real `concord serve --listen` instance
//! in-process, then drives it over loopback TCP with 1/8/32/128
//! concurrent clients (1/4 under `--smoke`). Every client issues the
//! same read-dominated workload — `GEN` of a warmed device — four ways:
//!
//! * **serial** — one command per write, wait for the response before
//!   the next: the per-request round-trip the old worker-pool serve
//!   paid on every command;
//! * **pipelined** — `GROUP` commands per write, responses read back
//!   in order;
//! * **batch** — the same group as one `BATCH n` request, so the server
//!   acquires the engine once per group instead of once per command;
//! * **binary** — the group as length-prefixed `0xC3` frames with
//!   `0xC4` responses, skipping line scanning entirely.
//!
//! Results (req/s plus p50/p99 request latency per mode and client
//! count) go to `target/experiments/serve_throughput.json`; full runs
//! also snapshot `BENCH_serve.json` at the repository root. The
//! headline `summary.max_ratio` is the best grouped mode over serial at
//! the same client count — the number the CI gate holds at >= 5x.

use concord_bench::{timed, write_result};
use concord_cli::protocol::{self, opcode};
use concord_json::{json, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Commands per pipelined write / BATCH count / binary frame group.
const GROUP: usize = 32;

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("CONCORD_SERVE_SMOKE").is_ok_and(|v| v == "1")
}

/// Groups each client runs per mode (ops per client = GROUP * groups).
fn groups_per_client() -> usize {
    if smoke() {
        4
    } else {
        48
    }
}

fn client_counts() -> &'static [usize] {
    if smoke() {
        &[1, 4]
    } else {
        &[1, 8, 32, 128]
    }
}

/// A `Write` the server thread and the harness share, polled for the
/// `listening on <addr>` announcement.
#[derive(Clone, Default)]
struct SharedOut(Arc<Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn spawn_server(configs: &str) -> String {
    let argv: Vec<String> = [
        "serve",
        "--configs",
        configs,
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "8",
        "--max-conns",
        "1024",
        "--deadline-ms",
        "30000",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = SharedOut::default();
    {
        let mut sink = out.clone();
        std::thread::spawn(move || concord_cli::run(&argv, &mut sink));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = String::from_utf8_lossy(&out.0.lock().unwrap()).into_owned();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            return line["listening on ".len()..].to_string();
        }
        assert!(Instant::now() < deadline, "server never announced: {text}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream
}

/// One client's workload in one mode: returns per-request latencies in
/// microseconds (for grouped modes, each request in a group records the
/// elapsed time from the group's send to that response's arrival).
fn run_client(addr: &str, mode: &str, device: &str, barrier: &Barrier) -> Vec<f64> {
    let stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let groups = groups_per_client();
    let mut latencies = Vec::with_capacity(groups * GROUP);

    // Pre-render the wire bytes for one group in this mode.
    let gen_line = format!("GEN {device}\n");
    let group_bytes: Vec<u8> = match mode {
        "serial" => gen_line.clone().into_bytes(),
        "pipelined" => gen_line.repeat(GROUP).into_bytes(),
        "batch" => format!("BATCH {GROUP}\n{}", gen_line.repeat(GROUP)).into_bytes(),
        "binary" => {
            let mut buf = Vec::new();
            for _ in 0..GROUP {
                protocol::encode_frame(opcode::GEN, device.as_bytes(), b"", &mut buf);
            }
            buf
        }
        other => unreachable!("mode {other}"),
    };

    barrier.wait();
    for _ in 0..groups {
        match mode {
            "serial" => {
                // One round trip per request, GROUP times.
                for _ in 0..GROUP {
                    let start = Instant::now();
                    writer.write_all(&group_bytes).expect("write");
                    let mut line = String::new();
                    assert!(reader.read_line(&mut line).expect("read") > 0, "closed");
                    assert!(line.starts_with("ok gen "), "{line}");
                    latencies.push(start.elapsed().as_secs_f64() * 1e6);
                }
            }
            "pipelined" | "batch" => {
                let start = Instant::now();
                writer.write_all(&group_bytes).expect("write");
                for _ in 0..GROUP {
                    let mut line = String::new();
                    assert!(reader.read_line(&mut line).expect("read") > 0, "closed");
                    assert!(line.starts_with("ok gen "), "{line}");
                    latencies.push(start.elapsed().as_secs_f64() * 1e6);
                }
                if mode == "batch" {
                    let mut trailer = String::new();
                    assert!(reader.read_line(&mut trailer).expect("read") > 0, "closed");
                    assert!(trailer.starts_with("ok batch "), "{trailer}");
                }
            }
            "binary" => {
                let start = Instant::now();
                writer.write_all(&group_bytes).expect("write");
                for _ in 0..GROUP {
                    let mut header = [0u8; 6];
                    reader.read_exact(&mut header).expect("frame header");
                    assert_eq!(header[0], protocol::FRAME_RESPONSE, "bad magic");
                    assert_eq!(header[1], 0, "error status");
                    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
                    let mut payload = vec![0u8; len as usize];
                    reader.read_exact(&mut payload).expect("frame payload");
                    latencies.push(start.elapsed().as_secs_f64() * 1e6);
                }
            }
            other => unreachable!("mode {other}"),
        }
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one (mode, client count) cell; returns (req/s, p50 us, p99 us).
fn run_cell(addr: &str, mode: &'static str, device: &str, clients: usize) -> (f64, f64, f64) {
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    let (all, wall) = timed(|| {
        for _ in 0..clients {
            let addr = addr.to_string();
            let device = device.to_string();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                run_client(&addr, mode, &device, &barrier)
            }));
        }
        let mut all: Vec<f64> = Vec::new();
        for handle in handles.drain(..) {
            all.extend(handle.join().expect("client thread"));
        }
        all
    });
    let total_ops = clients * groups_per_client() * GROUP;
    assert_eq!(all.len(), total_ops, "{mode}: dropped responses");
    let mut sorted = all;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let reqs_per_sec = total_ops as f64 / wall.as_secs_f64().max(1e-9);
    (
        reqs_per_sec,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
    )
}

fn main() {
    // A small on-disk corpus: transport overhead is the subject, the
    // engine work per GEN is deliberately tiny and identical per mode.
    let dir = std::env::temp_dir().join(format!("concord-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    for i in 0..6 {
        std::fs::write(
            dir.join(format!("dev{i}.cfg")),
            format!(
                "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                100 + i,
                250 + i
            ),
        )
        .expect("write corpus");
    }
    let configs = format!("{}/*.cfg", dir.display());
    let device = "dev0";

    let addr = spawn_server(&configs);

    // Warm the engine (learn + settle the incremental check cache) so
    // every measured GEN takes the shared read path.
    {
        let stream = connect(&addr);
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer
            .write_all(b"LEARN\nCHECK\nCHECK\nQUIT\n")
            .expect("warm");
        let mut text = String::new();
        reader.read_to_string(&mut text).expect("warm responses");
        assert!(text.contains("ok learn"), "{text}");
        assert!(text.ends_with("ok bye\n"), "{text}");
    }

    const MODES: &[&str] = &["serial", "pipelined", "batch", "binary"];
    let mut entries: Vec<Json> = Vec::new();
    let mut max_ratio = 0.0f64;
    for &clients in client_counts() {
        let mut modes = Vec::new();
        let mut serial_rps = 0.0f64;
        let mut best_grouped = 0.0f64;
        for &mode in MODES {
            let (rps, p50, p99) = run_cell(&addr, mode, device, clients);
            println!(
                "{clients:>4} clients {mode:>9}: {rps:>10.0} req/s  p50 {p50:>8.1}us  p99 {p99:>8.1}us"
            );
            if mode == "serial" {
                serial_rps = rps;
            } else if rps > best_grouped {
                best_grouped = rps;
            }
            modes.push(json!({
                "mode": mode,
                "reqs_per_sec": rps,
                "p50_us": p50,
                "p99_us": p99,
            }));
        }
        let ratio = best_grouped / serial_rps.max(1e-9);
        println!("{clients:>4} clients: best grouped mode is {ratio:.1}x serial");
        if ratio > max_ratio {
            max_ratio = ratio;
        }
        entries.push(json!({
            "clients": clients,
            "modes": Json::Array(modes),
            "ratio_vs_serial": ratio,
        }));
    }

    let result = json!({
        "schema": "concord-bench-serve/v1",
        "smoke": smoke(),
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "group": GROUP,
        "groups_per_client": groups_per_client(),
        "workers": 8,
        "cells": Json::Array(entries),
        "summary": json!({
            "max_ratio": max_ratio,
        }),
    });
    write_result("serve_throughput", &result);
    if !smoke() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
        let text = concord_json::to_string_pretty(&result).expect("result serializes");
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("(wrote {})", path.display()),
            Err(e) => eprintln!("(could not write {}: {e})", path.display()),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
