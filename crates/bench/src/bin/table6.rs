//! Table 6: number of contracts to review per category (`n_adj`) and the
//! achieved margin of error, for 95% confidence in the true-positive
//! rate.
//!
//! The LLM-substitute scores (Figure 9) give the initial proportion
//! estimate `p`; the sample size follows `n = Z²·p·(1−p)/E²` with finite
//! population correction, capped at 150 reviews per category (§5.4).
//!
//! Run with: `cargo run --release -p concord-bench --bin table6`

use concord_bench::precision::{estimated_p, evaluate_family};
use concord_bench::stats::plan_sample;
use concord_bench::{write_result, CATEGORY_COLUMNS};

fn main() {
    let mut results = Vec::new();
    for (label, prefix) in [("Edge", "E"), ("WAN", "W")] {
        let scores = evaluate_family(prefix);
        println!("== {label} ==");
        println!(
            "{:<10} {:>6} {:>7} {:>7} {:>7}",
            "category", "N", "p_est", "n_adj", "E"
        );
        for category in CATEGORY_COLUMNS {
            let scored = &scores[category];
            let population = scored.len();
            let p = estimated_p(scored).unwrap_or(0.0);
            let plan = plan_sample(p, population);
            println!(
                "{category:<10} {population:>6} {p:>7.2} {:>7} {:>6.0}%",
                plan.n_adj,
                plan.error * 100.0
            );
            results.push(concord_json::json!({
                "family": label,
                "category": category,
                "population": population,
                "p_estimate": p,
                "n_adj": plan.n_adj,
                "error": plan.error,
            }));
        }
        println!();
    }
    write_result("table6", &concord_json::json!({ "rows": results }));
}
