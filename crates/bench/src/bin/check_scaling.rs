//! Check-engine scaling: naive reference checker vs the compiled
//! [`CheckProgram`] engine on growing relational-heavy workloads.
//!
//! For each dataset size the harness learns contracts once, then times
//! both checkers (minimum of several samples) and records the speedup
//! into `BENCH_check.json` at the repository root (and
//! `target/experiments/check_scaling.json`). Pass `--smoke` (or set
//! `CONCORD_CHECK_SMOKE=1`) for the small CI sizes.
//!
//! The workload is the EdgeIndent generator: every device carries
//! loopback/prefix-list/VLAN blocks whose invariants learn as
//! relational contracts, so checking cost is dominated by relational
//! witness search — exactly what the compiled engine's indexes target.

use concord_bench::{dataset_of, fmt_secs, seed, timed, write_result};
use concord_core::LearnParams;
use concord_core::{check_naive_parallel, check_parallel_with_stats, learn, CheckReport};
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_json::{json, Json};
use std::time::Duration;

/// Timed check samples per engine; the minimum is the reported estimate.
const SAMPLES: usize = 3;

/// Repeated-block knob (`CONCORD_CHECK_BLOCKS` overrides): per-device
/// VLAN/interface/prefix-list multiplicity. Naive relational checking is
/// O(blocks²) per contract per config (every antecedent occurrence scans
/// every consequent occurrence), so this is the axis that separates the
/// engines; the compiled engine's witness indexes make it O(blocks).
/// Full runs use the value the committed `BENCH_check.json` was measured
/// at; smoke runs shrink it to keep CI fast.
const BLOCKS_FULL: usize = 768;
const BLOCKS_SMOKE: usize = 96;

fn blocks() -> usize {
    std::env::var("CONCORD_CHECK_BLOCKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { BLOCKS_SMOKE } else { BLOCKS_FULL })
}

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("CONCORD_CHECK_SMOKE").is_ok_and(|v| v == "1")
}

fn min_time(mut run: impl FnMut() -> CheckReport) -> (CheckReport, Duration) {
    let mut best: Option<(CheckReport, Duration)> = None;
    for _ in 0..SAMPLES {
        let (report, elapsed) = timed(&mut run);
        if best.as_ref().is_none_or(|(_, t)| elapsed < *t) {
            best = Some((report, elapsed));
        }
    }
    best.expect("SAMPLES > 0")
}

fn main() {
    let sizes: &[usize] = if smoke() {
        &[4, 8, 16]
    } else {
        &[8, 16, 32, 64]
    };
    let parallelism = 1; // single-threaded: measure the algorithm, not the pool

    let mut entries: Vec<Json> = Vec::new();
    for &devices in sizes {
        let spec = RoleSpec {
            name: format!("SCALE{devices}"),
            devices,
            style: Style::EdgeIndent,
            blocks: blocks(),
            with_metadata: false,
        };
        let role = generate_role(&spec, seed());
        let dataset = dataset_of(&role);
        // Default params (no constant mining): constants learn thousands of
        // per-line Present contracts that cost the same in both engines;
        // this benchmark isolates the relational witness search.
        let contracts = learn(&dataset, &LearnParams::default());

        let (naive_report, naive_time) =
            min_time(|| check_naive_parallel(&contracts, &dataset, parallelism));
        let mut compiled_stats = None;
        let (compiled_report, compiled_time) = min_time(|| {
            let (report, stats) = check_parallel_with_stats(&contracts, &dataset, parallelism);
            compiled_stats = Some(stats);
            report
        });
        let compiled_stats = compiled_stats.expect("SAMPLES > 0");
        assert_eq!(
            naive_report.violations, compiled_report.violations,
            "engines must agree before their timings are comparable"
        );

        let speedup = naive_time.as_secs_f64() / compiled_time.as_secs_f64().max(1e-9);
        println!(
            "{:>4} configs ({} lines, {} contracts): naive {} / compiled {} ({speedup:.1}x), {} violations",
            devices,
            role.total_lines(),
            contracts.len(),
            fmt_secs(naive_time),
            fmt_secs(compiled_time),
            compiled_report.violations.len(),
        );

        let phases = Json::Array(
            compiled_stats
                .category_times
                .iter()
                .map(|(name, time)| json!({ "name": name.as_str(), "secs": time.as_secs_f64() }))
                .collect(),
        );
        entries.push(json!({
            "configs": devices,
            "lines": role.total_lines(),
            "contracts": contracts.len(),
            "violations": compiled_report.violations.len(),
            "naive_secs": naive_time.as_secs_f64(),
            "compiled_secs": compiled_time.as_secs_f64(),
            "speedup": speedup,
            "compile_secs": compiled_stats.compile_time.as_secs_f64(),
            "witness": json!({
                "indexes": compiled_stats.witness_indexes,
                "entries": compiled_stats.witness_entries,
                "probes": compiled_stats.witness_probes,
                "hit_rate": compiled_stats.probe_hit_rate(),
            }),
            "phases": phases,
        }));
    }

    let result = json!({
        "schema": "concord-bench-check/v1",
        "smoke": smoke(),
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "seed": seed(),
        "blocks": blocks(),
        "parallelism": parallelism,
        "sizes": Json::Array(entries),
    });
    write_result("check_scaling", &result);
    if !smoke() {
        write_bench_file(&result);
    }
}

/// Writes the latest run to `BENCH_check.json` at the repository root.
/// Unlike the pipeline trajectory this is a snapshot, not an append-only
/// log: the scaling curve is the artifact, not its history. Smoke runs
/// skip it — the committed snapshot is always a full-ladder measurement.
fn write_bench_file(result: &Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_check.json");
    let text = concord_json::to_string_pretty(result).expect("result serializes");
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}
