//! Figure 7: effect of context embedding (§3.1) and constant learning
//! (§4) on coverage, per role.
//!
//! Three bars per role: Baseline (no embedding, no constants), +Context
//! (embedding only), +Constants (embedding and constant learning). Flat
//! WAN roles (W4–W8) gain nothing from embedding because their syntax
//! already carries full context per line.
//!
//! Run with: `cargo run --release -p concord-bench --bin fig7`

use concord_bench::{generate, roles, row, seed, write_result};
use concord_core::{check_parallel, learn, Dataset, LearnParams};
use concord_lexer::Lexer;

fn coverage(role: &concord_datagen::GeneratedRole, embed: bool, constants: bool) -> f64 {
    let lexer = Lexer::standard();
    let dataset =
        Dataset::build(&role.configs, &role.metadata, &lexer, embed, 1).expect("dataset builds");
    let params = LearnParams {
        learn_constants: constants,
        ..LearnParams::default()
    };
    let contracts = learn(&dataset, &params);
    let report = check_parallel(&contracts, &dataset, 1);
    report.coverage.summary().fraction
}

fn main() {
    let _ = seed();
    let widths = [8, 10, 10, 11];
    println!(
        "{}",
        row(
            &["Dataset", "Baseline", "Context", "Constants"].map(String::from),
            &widths
        )
    );
    let mut results = Vec::new();
    for spec in roles() {
        let role = generate(&spec);
        let baseline = coverage(&role, false, false);
        let context = coverage(&role, true, false);
        let constants = coverage(&role, true, true);
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    format!("{:.1}%", baseline * 100.0),
                    format!("{:.1}%", context * 100.0),
                    format!("{:.1}%", constants * 100.0),
                ],
                &widths
            )
        );
        results.push(concord_json::json!({
            "role": spec.name,
            "baseline": baseline,
            "context": context,
            "constants": constants,
        }));
    }
    println!(
        "\nExpected shape (paper): Context >= Baseline everywhere, with no\nembedding gain on the flat roles W4-W8; Constants adds further coverage."
    );
    write_result("fig7", &concord_json::json!({ "rows": results }));
}
