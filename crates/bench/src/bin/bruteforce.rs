//! §5.2 ablation: relation-finding data structures vs brute force.
//!
//! With the fast relation indexes disabled, every candidate contract —
//! each ordered pair of `(pattern, parameter, transformation)` nodes per
//! relation — must be enumerated and verified by scanning; the paper
//! reports that this fails to terminate within an hour on every WAN
//! role. The number of candidates scales **quadratically in the number
//! of distinct patterns**, so this binary sweeps pattern diversity (the
//! quantity real configurations have in the thousands — Table 3) at a
//! fixed device count, and reports where brute force falls off the cliff
//! under a (much smaller) deadline while indexed learning stays linear.
//!
//! Run with: `cargo run --release -p concord-bench --bin bruteforce`
//! (set `CONCORD_BRUTE_DEADLINE_SECS` to adjust the timeout, default 10).

use std::time::Duration;

use concord_baseline::naive;
use concord_bench::{timed, write_result};
use concord_core::{learn, Dataset, LearnParams};

/// Builds a fleet whose devices each carry `kinds` distinct line kinds,
/// pairwise related by value (one planted equality per kind).
fn diverse_dataset(devices: usize, kinds: usize) -> Dataset {
    let configs: Vec<(String, String)> = (0..devices)
        .map(|d| {
            let mut text = String::new();
            for k in 0..kinds {
                let value = 1000 + (d * 31 + k * 7) % 8000;
                text.push_str(&format!("feature-{k} alpha {value}\n"));
                text.push_str(&format!("backup-{k} beta {value}\n"));
            }
            (format!("dev{d}"), text)
        })
        .collect();
    Dataset::from_named_texts(&configs, &[]).expect("dataset builds")
}

fn main() {
    let deadline = Duration::from_secs(
        std::env::var("CONCORD_BRUTE_DEADLINE_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10),
    );
    let params = LearnParams {
        enable_present: false,
        enable_ordering: false,
        enable_type: false,
        enable_sequence: false,
        enable_unique: false,
        minimize: false,
        ..LearnParams::default()
    };

    println!("patterns  lines/dev  indexed    brute-force        slowdown");
    let mut rows = Vec::new();
    let mut brute_dead = false;
    for kinds in [25usize, 50, 100, 200, 400, 800, 1600] {
        let dataset = diverse_dataset(8, kinds);
        let (_, indexed_time) = timed(|| learn(&dataset, &params));
        let (brute_text, slowdown, timed_out) = if brute_dead {
            (
                "SKIPPED (previous size timed out)".to_string(),
                "-".to_string(),
                true,
            )
        } else {
            let (brute, brute_time) =
                timed(|| naive::mine_with_deadline(&dataset, &params, deadline));
            match brute {
                Some(_) => (
                    format!("{:.2}s", brute_time.as_secs_f64()),
                    format!(
                        "{:.0}x",
                        brute_time.as_secs_f64() / indexed_time.as_secs_f64().max(1e-9)
                    ),
                    false,
                ),
                None => {
                    brute_dead = true;
                    (
                        format!("TIMEOUT (>{:.0}s)", deadline.as_secs_f64()),
                        "-".to_string(),
                        true,
                    )
                }
            }
        };
        println!(
            "{:<9} {:<10} {:<10.3} {brute_text:<18} {slowdown}",
            kinds * 2,
            kinds * 2,
            indexed_time.as_secs_f64()
        );
        rows.push(concord_json::json!({
            "patterns": kinds * 2,
            "indexed_secs": indexed_time.as_secs_f64(),
            "brute": brute_text,
            "brute_timed_out": timed_out,
        }));
    }
    println!(
        "\nIndexed learning scales near-linearly with pattern diversity while\nbrute force grows quadratically — the paper's production datasets\n(thousands of patterns, Table 3) put brute force past a 1-hour timeout\non every WAN role."
    );
    write_result("bruteforce", &concord_json::json!({ "rows": rows }));
}
