//! Incremental-learn scaling: full relearn vs folding persisted miner
//! sketches on a single-configuration edit.
//!
//! For each corpus size the harness builds two engines over the same
//! corpus — one with the sketch cache (the default), one with
//! `delta_learn` off (the full-relearn oracle) — learns once to warm
//! the cache, then measures the steady-state edit loop both ways:
//!
//! * **full relearn** — what `--full-relearn` pays per LEARN: re-mine
//!   every configuration from scratch;
//! * **delta relearn** — `Engine::upsert_config` of the one edited file
//!   followed by `Engine::relearn`, which re-sketches one configuration
//!   and folds the cached sketches of everything else.
//!
//! The contract sets are asserted byte-identical before any timing is
//! reported, every sample. Results go to `BENCH_learn_delta.json` at
//! the repository root (full runs; smoke runs only write
//! `target/experiments/learn_delta_scaling.json`). Pass `--smoke` (or
//! set `CONCORD_LEARN_DELTA_SMOKE=1`) for the small CI sizes.

use concord_bench::{fmt_secs, seed, timed, write_result};
use concord_core::LearnParams;
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_engine::{Engine, EngineOptions};
use concord_json::{json, Json};
use std::time::Duration;

/// Timed edit→relearn samples per path; the minimum is the estimate.
const SAMPLES: usize = 3;

/// Per-device block multiplicity (matches `engine_scaling`: learning
/// stays non-trivial so the delta win is about work avoided).
const BLOCKS_FULL: usize = 192;
const BLOCKS_SMOKE: usize = 48;

fn blocks() -> usize {
    std::env::var("CONCORD_LEARN_DELTA_BLOCKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { BLOCKS_SMOKE } else { BLOCKS_FULL })
}

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("CONCORD_LEARN_DELTA_SMOKE").is_ok_and(|v| v == "1")
}

fn main() {
    let sizes: &[usize] = if smoke() {
        &[4, 8, 16]
    } else {
        &[8, 16, 32, 64]
    };
    let parallelism = 1; // measure work avoided, not the thread pool

    let mut entries: Vec<Json> = Vec::new();
    for &devices in sizes {
        let spec = RoleSpec {
            name: format!("LD{devices}"),
            devices,
            style: Style::EdgeIndent,
            blocks: blocks(),
            with_metadata: false,
        };
        let role = generate_role(&spec, seed());
        let mut corpus = role.configs.clone();
        corpus.sort();

        let delta_options = EngineOptions {
            parallelism,
            learn: LearnParams::default(),
            ..EngineOptions::default()
        };
        assert!(delta_options.delta_learn, "delta learn is the default");
        let full_options = EngineOptions {
            delta_learn: false,
            ..delta_options.clone()
        };
        let mut delta = Engine::from_corpus(&corpus, &[], delta_options).expect("engine builds");
        let mut full = Engine::from_corpus(&corpus, &[], full_options).expect("engine builds");
        // Cold start: the first delta relearn sketches every config.
        delta.relearn();
        full.relearn();

        // The steady-state edit: toggle one device's text between its
        // original and a one-line-longer variant, invalidating exactly
        // one sketch per round.
        let target = corpus[0].0.clone();
        let base = corpus[0].1.clone();
        let longer = {
            let last = base.lines().next_back().expect("non-empty config");
            format!("{base}{last}\n")
        };

        let mut full_best: Option<Duration> = None;
        let mut delta_best: Option<Duration> = None;
        for sample in 0..SAMPLES {
            let text = if sample % 2 == 0 { &longer } else { &base };

            let (_, delta_time) = timed(|| {
                delta.upsert_config(&target, text);
                delta.relearn()
            });
            let (_, full_time) = timed(|| {
                full.upsert_config(&target, text);
                full.relearn()
            });
            assert_eq!(
                delta.contracts().expect("learned").to_json(),
                full.contracts().expect("learned").to_json(),
                "{devices} configs, sample {sample}: contract sets diverged"
            );
            if full_best.is_none_or(|t| full_time < t) {
                full_best = Some(full_time);
            }
            if delta_best.is_none_or(|t| delta_time < t) {
                delta_best = Some(delta_time);
            }
        }
        let full_time = full_best.expect("SAMPLES > 0");
        let delta_time = delta_best.expect("SAMPLES > 0");
        let speedup = full_time.as_secs_f64() / delta_time.as_secs_f64().max(1e-9);
        let ld = delta.learn_delta();

        println!(
            "{:>4} configs ({} lines, {} contracts): full relearn {} / delta {} ({speedup:.1}x), mined {}/{}",
            devices,
            role.total_lines(),
            delta.contracts().expect("learned").len(),
            fmt_secs(full_time),
            fmt_secs(delta_time),
            ld.mined_last_learn,
            ld.mined_last_learn + ld.reused_last_learn,
        );

        entries.push(json!({
            "configs": devices,
            "lines": role.total_lines(),
            "contracts": delta.contracts().expect("learned").len(),
            "full_relearn_secs": full_time.as_secs_f64(),
            "delta_relearn_secs": delta_time.as_secs_f64(),
            "speedup": speedup,
            "mined_configs": ld.mined_last_learn,
            "reused_configs": ld.reused_last_learn,
        }));
    }

    let result = json!({
        "schema": "concord-bench-learn-delta/v1",
        "smoke": smoke(),
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "seed": seed(),
        "blocks": blocks(),
        "parallelism": parallelism,
        "sizes": Json::Array(entries),
    });
    write_result("learn_delta_scaling", &result);
    if !smoke() {
        write_bench_file(&result);
    }
}

/// Writes the latest full-ladder run to `BENCH_learn_delta.json` at the
/// repository root (a snapshot, like `BENCH_engine.json` — the scaling
/// curve is the artifact, not its history).
fn write_bench_file(result: &Json) {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_learn_delta.json");
    let text = concord_json::to_string_pretty(result).expect("result serializes");
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}
