//! Incremental-engine scaling: batch full rebuild vs the resident
//! `concord-engine` snapshot on a single-configuration edit.
//!
//! For each corpus size the harness builds an engine, learns contracts
//! once, then measures the steady-state edit loop both ways:
//!
//! * **full rebuild** — what the batch workflow pays per edit: rebuild
//!   the [`Dataset`] from all texts (fresh lex cache — a batch run has
//!   no memory) and run the full compiled check;
//! * **incremental** — `Engine::upsert_config` of the one edited file
//!   followed by `Engine::check_dirty`, which re-lexes one file through
//!   the persistent cache and re-checks one configuration.
//!
//! The reports are asserted byte-identical before any timing is
//! reported, every sample. Results go to `BENCH_engine.json` at the
//! repository root (full runs; smoke runs only write
//! `target/experiments/engine_scaling.json`). Pass `--smoke` (or set
//! `CONCORD_ENGINE_SMOKE=1`) for the small CI sizes.
//!
//! A second, **resident** ladder scales the fleet dimension instead of
//! the per-device dimension: thousands of small (~12 line)
//! configurations held by a durable [`ResilientEngine`]. Each rung
//! records deterministic heap accounting (arena-interned SoA bytes vs
//! the `legacy-ir` oracle's per-record `Arc` bytes, pattern table
//! excluded on both sides), the process RSS high-water, and the
//! segmented-checkpoint scorecard: a forced full checkpoint (every
//! segment re-written — the price the monolithic snapshot paid every
//! time) against a checkpoint after one edit (one segment plus the
//! manifest).

use concord_bench::{fmt_secs, seed, timed, write_result};
use concord_core::{check_parallel_with_stats, CheckReport, Dataset, LearnParams, LegacyDataset};
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_engine::{Engine, EngineOptions, ResilientEngine};
use concord_json::{json, Json};
use concord_lexer::{LexCache, Lexer};
use std::time::Duration;

/// Timed edit→check samples per path; the minimum is the estimate.
const SAMPLES: usize = 3;

/// Per-device block multiplicity (see `check_scaling` for the rationale;
/// the engine benchmark keeps checking non-trivial so the incremental
/// win is about work avoided, not noise).
const BLOCKS_FULL: usize = 192;
const BLOCKS_SMOKE: usize = 48;

fn blocks() -> usize {
    std::env::var("CONCORD_ENGINE_BLOCKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { BLOCKS_SMOKE } else { BLOCKS_FULL })
}

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("CONCORD_ENGINE_SMOKE").is_ok_and(|v| v == "1")
}

fn assert_reports_equal(incremental: &CheckReport, batch: &CheckReport, context: &str) {
    assert_eq!(
        incremental.violations, batch.violations,
        "{context}: violations diverged"
    );
    assert_eq!(
        incremental.coverage.per_config, batch.coverage.per_config,
        "{context}: coverage diverged"
    );
}

/// One small resident-fleet configuration (~12 lines). Lines repeat
/// heavily across devices — as real fleet snapshots do — so interning
/// has sharing to exploit; the hostname and vlan rotation keep the
/// corpus non-degenerate.
fn resident_config(i: usize) -> (String, String) {
    let name = format!("res{i:06}");
    let vlan_a = 10 + (i % 8);
    let vlan_b = 20 + (i % 8);
    let text = [
        format!("hostname {name}"),
        format!("vlan {vlan_a}"),
        format!("vlan {vlan_b}"),
        "interface Ethernet1".to_string(),
        " description uplink".to_string(),
        " mtu 9100".to_string(),
        format!(" switchport access vlan {vlan_a}"),
        "interface Ethernet2".to_string(),
        " description peer".to_string(),
        " mtu 9100".to_string(),
        format!(" switchport access vlan {vlan_b}"),
        "ntp server 10.0.0.1".to_string(),
    ]
    .join("\n")
        + "\n";
    (name, text)
}

/// One rung of the resident ladder: memory accounting plus the
/// full-vs-edit checkpoint comparison at `devices` configurations.
fn resident_rung(devices: usize) -> Json {
    let corpus: Vec<(String, String)> = (0..devices).map(resident_config).collect();

    // Deterministic heap accounting. The legacy oracle counts every
    // distinct `Arc` payload once; the SoA side reports its arenas.
    // Both exclude the shared pattern table, so the ratio isolates what
    // the refactor changed: per-record ownership vs interned storage.
    let legacy_heap_bytes = LegacyDataset::from_named_texts(&corpus, &[]).heap_bytes() as u64;

    let dir = std::env::temp_dir().join(format!(
        "concord-engine-resident-{}-{devices}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let options = EngineOptions {
        parallelism: 1,
        learn: LearnParams::default(),
        ..EngineOptions::default()
    };
    let ((mut engine, _resumed), boot_time) = timed(|| {
        ResilientEngine::with_store(&corpus, &[], Lexer::standard(), options, &dir)
            .expect("resident engine boots")
    });
    engine.set_checkpoint_every(0); // explicit checkpoints only

    // Full checkpoint: clear the segment directory so every
    // configuration must be re-serialized and re-written — the cost the
    // monolithic snapshot paid on *every* checkpoint.
    let segments = dir.join("segments");
    for entry in std::fs::read_dir(&segments).expect("segments dir exists") {
        let entry = entry.expect("readable segments entry");
        std::fs::remove_file(entry.path()).expect("segment file removable");
    }
    let (ok, full_time) = timed(|| engine.checkpoint());
    assert!(ok, "{devices} configs: full checkpoint failed");

    // Checkpoint after one edit: exactly one segment plus the manifest.
    let (target, base) = corpus[0].clone();
    let longer = format!("{base}ntp server 10.0.0.2\n");
    let mut edit_best: Option<Duration> = None;
    for sample in 0..SAMPLES {
        let text = if sample % 2 == 0 { &longer } else { &base };
        engine.upsert(&target, text).expect("upsert succeeds");
        let (ok, edit_time) = timed(|| engine.checkpoint());
        assert!(ok, "{devices} configs: edit checkpoint failed");
        if edit_best.is_none_or(|t| edit_time < t) {
            edit_best = Some(edit_time);
        }
    }
    let edit_time = edit_best.expect("SAMPLES > 0");

    let memory = engine.snapshot_stats().expect("stats available").memory;
    // Pin the segmented-store invariant the timing relies on: the seed
    // and forced-full checkpoints each wrote the whole fleet, and every
    // edit checkpoint wrote exactly one segment and skipped the rest.
    assert_eq!(
        memory.segments_written,
        2 * devices as u64 + SAMPLES as u64,
        "{devices} configs: unexpected segment write count"
    );
    assert_eq!(
        memory.segments_skipped,
        (SAMPLES * (devices - 1)) as u64,
        "{devices} configs: unexpected segment skip count"
    );

    let soa_heap_bytes = memory.string_arena_bytes + memory.param_arena_bytes + memory.column_bytes;
    let heap_ratio = legacy_heap_bytes as f64 / (soa_heap_bytes as f64).max(1.0);
    let speedup = full_time.as_secs_f64() / edit_time.as_secs_f64().max(1e-9);
    let rss_kb = concord_bench::microbench::max_rss_kb().unwrap_or(0);

    println!(
        "{devices:>7} resident configs: boot {} / full checkpoint {} / edit checkpoint {} ({speedup:.1}x); heap {:.1} MiB SoA vs {:.1} MiB legacy ({heap_ratio:.1}x); rss high-water {rss_kb} KiB",
        fmt_secs(boot_time),
        fmt_secs(full_time),
        fmt_secs(edit_time),
        soa_heap_bytes as f64 / (1024.0 * 1024.0),
        legacy_heap_bytes as f64 / (1024.0 * 1024.0),
    );

    let _ = std::fs::remove_dir_all(&dir);
    json!({
        "configs": devices,
        "boot_secs": boot_time.as_secs_f64(),
        "checkpoint_full_secs": full_time.as_secs_f64(),
        "checkpoint_edit_secs": edit_time.as_secs_f64(),
        "checkpoint_speedup": speedup,
        "soa_heap_bytes": soa_heap_bytes,
        "legacy_heap_bytes": legacy_heap_bytes,
        "heap_ratio": heap_ratio,
        "segments_written": memory.segments_written,
        "segments_skipped": memory.segments_skipped,
        "max_rss_kb": rss_kb,
    })
}

fn main() {
    let sizes: &[usize] = if smoke() {
        &[4, 8, 16]
    } else {
        &[8, 16, 32, 64]
    };
    let resident_sizes: &[usize] = if smoke() {
        &[100, 500]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let parallelism = 1; // measure work avoided, not the thread pool

    let mut entries: Vec<Json> = Vec::new();
    for &devices in sizes {
        let spec = RoleSpec {
            name: format!("ENG{devices}"),
            devices,
            style: Style::EdgeIndent,
            blocks: blocks(),
            with_metadata: false,
        };
        let role = generate_role(&spec, seed());
        let mut corpus = role.configs.clone();
        corpus.sort();

        let options = EngineOptions {
            parallelism,
            learn: LearnParams::default(),
            ..EngineOptions::default()
        };
        let mut engine = Engine::from_corpus(&corpus, &[], options).expect("engine builds");
        engine.relearn();
        let contracts = engine.contracts().expect("just learned").clone();
        engine.check_dirty().expect("contracts loaded");

        // The steady-state edit: toggle one device's text between its
        // original and a one-line-longer variant (the duplicated last
        // line reuses an existing pattern, so contract resolution — and
        // therefore the outcome cache — survives the edit).
        let target = corpus[0].0.clone();
        let base = corpus[0].1.clone();
        let longer = {
            let last = base.lines().next_back().expect("non-empty config");
            format!("{base}{last}\n")
        };

        let lexer = Lexer::standard();
        let mut full_best: Option<Duration> = None;
        let mut incr_best: Option<Duration> = None;
        let mut last_violations = 0usize;
        let mut last_dirty = 0usize;
        let mut last_reused = 0usize;
        for sample in 0..SAMPLES {
            let text = if sample % 2 == 0 { &longer } else { &base };
            corpus[0].1 = text.clone();

            let (incr_report, incr_time) = timed(|| {
                engine.upsert_config(&target, text);
                engine.check_dirty().expect("contracts loaded").report
            });
            let ((full_report, _), full_time) = timed(|| {
                let cache = LexCache::new();
                let (dataset, _) = Dataset::build_with_stats(
                    &corpus,
                    &[],
                    &lexer,
                    true,
                    parallelism,
                    Some(&cache),
                )
                .expect("dataset builds");
                check_parallel_with_stats(&contracts, &dataset, parallelism)
            });
            assert_reports_equal(
                &incr_report,
                &full_report,
                &format!("{devices} configs, sample {sample}"),
            );
            last_violations = incr_report.violations.len();
            if full_best.is_none_or(|t| full_time < t) {
                full_best = Some(full_time);
            }
            if incr_best.is_none_or(|t| incr_time < t) {
                incr_best = Some(incr_time);
            }
            let last = engine.snapshot_stats().last_check.expect("checked");
            last_dirty = last.dirty_configs;
            last_reused = last.reused_configs;
        }
        let full_time = full_best.expect("SAMPLES > 0");
        let incr_time = incr_best.expect("SAMPLES > 0");
        let speedup = full_time.as_secs_f64() / incr_time.as_secs_f64().max(1e-9);

        println!(
            "{:>4} configs ({} lines, {} contracts): rebuild {} / incremental {} ({speedup:.1}x), dirty {}/{}, {} violations",
            devices,
            role.total_lines(),
            contracts.len(),
            fmt_secs(full_time),
            fmt_secs(incr_time),
            last_dirty,
            last_dirty + last_reused,
            last_violations,
        );

        entries.push(json!({
            "configs": devices,
            "lines": role.total_lines(),
            "contracts": contracts.len(),
            "violations": last_violations,
            "full_rebuild_secs": full_time.as_secs_f64(),
            "incremental_secs": incr_time.as_secs_f64(),
            "speedup": speedup,
            "dirty_configs": last_dirty,
            "reused_configs": last_reused,
        }));
    }

    // The resident ladder runs in ascending order after the edit-loop
    // ladder, so each rung's RSS high-water reflects the largest fleet
    // held so far.
    let resident: Vec<Json> = resident_sizes
        .iter()
        .map(|&devices| resident_rung(devices))
        .collect();

    let result = json!({
        "schema": "concord-bench-engine/v1",
        "smoke": smoke(),
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "seed": seed(),
        "blocks": blocks(),
        "parallelism": parallelism,
        "sizes": Json::Array(entries),
        "resident": Json::Array(resident),
    });
    write_result("engine_scaling", &result);
    if !smoke() {
        write_bench_file(&result);
    }
}

/// Writes the latest full-ladder run to `BENCH_engine.json` at the
/// repository root (a snapshot, like `BENCH_check.json` — the scaling
/// curve is the artifact, not its history).
fn write_bench_file(result: &Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    let text = concord_json::to_string_pretty(result).expect("result serializes");
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}
