//! Incremental-engine scaling: batch full rebuild vs the resident
//! `concord-engine` snapshot on a single-configuration edit.
//!
//! For each corpus size the harness builds an engine, learns contracts
//! once, then measures the steady-state edit loop both ways:
//!
//! * **full rebuild** — what the batch workflow pays per edit: rebuild
//!   the [`Dataset`] from all texts (fresh lex cache — a batch run has
//!   no memory) and run the full compiled check;
//! * **incremental** — `Engine::upsert_config` of the one edited file
//!   followed by `Engine::check_dirty`, which re-lexes one file through
//!   the persistent cache and re-checks one configuration.
//!
//! The reports are asserted byte-identical before any timing is
//! reported, every sample. Results go to `BENCH_engine.json` at the
//! repository root (full runs; smoke runs only write
//! `target/experiments/engine_scaling.json`). Pass `--smoke` (or set
//! `CONCORD_ENGINE_SMOKE=1`) for the small CI sizes.

use concord_bench::{fmt_secs, seed, timed, write_result};
use concord_core::{check_parallel_with_stats, CheckReport, Dataset, LearnParams};
use concord_datagen::{generate_role, RoleSpec, Style};
use concord_engine::{Engine, EngineOptions};
use concord_json::{json, Json};
use concord_lexer::{LexCache, Lexer};
use std::time::Duration;

/// Timed edit→check samples per path; the minimum is the estimate.
const SAMPLES: usize = 3;

/// Per-device block multiplicity (see `check_scaling` for the rationale;
/// the engine benchmark keeps checking non-trivial so the incremental
/// win is about work avoided, not noise).
const BLOCKS_FULL: usize = 192;
const BLOCKS_SMOKE: usize = 48;

fn blocks() -> usize {
    std::env::var("CONCORD_ENGINE_BLOCKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { BLOCKS_SMOKE } else { BLOCKS_FULL })
}

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("CONCORD_ENGINE_SMOKE").is_ok_and(|v| v == "1")
}

fn assert_reports_equal(incremental: &CheckReport, batch: &CheckReport, context: &str) {
    assert_eq!(
        incremental.violations, batch.violations,
        "{context}: violations diverged"
    );
    assert_eq!(
        incremental.coverage.per_config, batch.coverage.per_config,
        "{context}: coverage diverged"
    );
}

fn main() {
    let sizes: &[usize] = if smoke() {
        &[4, 8, 16]
    } else {
        &[8, 16, 32, 64]
    };
    let parallelism = 1; // measure work avoided, not the thread pool

    let mut entries: Vec<Json> = Vec::new();
    for &devices in sizes {
        let spec = RoleSpec {
            name: format!("ENG{devices}"),
            devices,
            style: Style::EdgeIndent,
            blocks: blocks(),
            with_metadata: false,
        };
        let role = generate_role(&spec, seed());
        let mut corpus = role.configs.clone();
        corpus.sort();

        let options = EngineOptions {
            parallelism,
            learn: LearnParams::default(),
            ..EngineOptions::default()
        };
        let mut engine = Engine::from_corpus(&corpus, &[], options).expect("engine builds");
        engine.relearn();
        let contracts = engine.contracts().expect("just learned").clone();
        engine.check_dirty().expect("contracts loaded");

        // The steady-state edit: toggle one device's text between its
        // original and a one-line-longer variant (the duplicated last
        // line reuses an existing pattern, so contract resolution — and
        // therefore the outcome cache — survives the edit).
        let target = corpus[0].0.clone();
        let base = corpus[0].1.clone();
        let longer = {
            let last = base.lines().next_back().expect("non-empty config");
            format!("{base}{last}\n")
        };

        let lexer = Lexer::standard();
        let mut full_best: Option<Duration> = None;
        let mut incr_best: Option<Duration> = None;
        let mut last_violations = 0usize;
        let mut last_dirty = 0usize;
        let mut last_reused = 0usize;
        for sample in 0..SAMPLES {
            let text = if sample % 2 == 0 { &longer } else { &base };
            corpus[0].1 = text.clone();

            let (incr_report, incr_time) = timed(|| {
                engine.upsert_config(&target, text);
                engine.check_dirty().expect("contracts loaded").report
            });
            let ((full_report, _), full_time) = timed(|| {
                let cache = LexCache::new();
                let (dataset, _) = Dataset::build_with_stats(
                    &corpus,
                    &[],
                    &lexer,
                    true,
                    parallelism,
                    Some(&cache),
                )
                .expect("dataset builds");
                check_parallel_with_stats(&contracts, &dataset, parallelism)
            });
            assert_reports_equal(
                &incr_report,
                &full_report,
                &format!("{devices} configs, sample {sample}"),
            );
            last_violations = incr_report.violations.len();
            if full_best.is_none_or(|t| full_time < t) {
                full_best = Some(full_time);
            }
            if incr_best.is_none_or(|t| incr_time < t) {
                incr_best = Some(incr_time);
            }
            let last = engine.snapshot_stats().last_check.expect("checked");
            last_dirty = last.dirty_configs;
            last_reused = last.reused_configs;
        }
        let full_time = full_best.expect("SAMPLES > 0");
        let incr_time = incr_best.expect("SAMPLES > 0");
        let speedup = full_time.as_secs_f64() / incr_time.as_secs_f64().max(1e-9);

        println!(
            "{:>4} configs ({} lines, {} contracts): rebuild {} / incremental {} ({speedup:.1}x), dirty {}/{}, {} violations",
            devices,
            role.total_lines(),
            contracts.len(),
            fmt_secs(full_time),
            fmt_secs(incr_time),
            last_dirty,
            last_dirty + last_reused,
            last_violations,
        );

        entries.push(json!({
            "configs": devices,
            "lines": role.total_lines(),
            "contracts": contracts.len(),
            "violations": last_violations,
            "full_rebuild_secs": full_time.as_secs_f64(),
            "incremental_secs": incr_time.as_secs_f64(),
            "speedup": speedup,
            "dirty_configs": last_dirty,
            "reused_configs": last_reused,
        }));
    }

    let result = json!({
        "schema": "concord-bench-engine/v1",
        "smoke": smoke(),
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "seed": seed(),
        "blocks": blocks(),
        "parallelism": parallelism,
        "sizes": Json::Array(entries),
    });
    write_result("engine_scaling", &result);
    if !smoke() {
        write_bench_file(&result);
    }
}

/// Writes the latest full-ladder run to `BENCH_engine.json` at the
/// repository root (a snapshot, like `BENCH_check.json` — the scaling
/// curve is the artifact, not its history).
fn write_bench_file(result: &Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    let text = concord_json::to_string_pretty(result).expect("result serializes");
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}
