//! §5.5 utility experiment: replay the three production incidents across
//! every edge deployment seed and report which contract categories catch
//! each.
//!
//! Run with: `cargo run --release -p concord-bench --bin incidents`

use std::collections::BTreeSet;

use concord_bench::{dataset_of, default_params, roles, seed, write_result};
use concord_core::{check, learn, Dataset};
use concord_datagen::faults::{incidents, inject, Fault};
use concord_datagen::generate_role;

fn main() {
    let spec = roles()
        .into_iter()
        .find(|s| s.name == "E1")
        .expect("E1 exists");
    let cases: [(&str, Fault); 3] = [
        ("missing route aggregation", incidents::MISSING_AGGREGATE),
        (
            "MAC broadcast loop (rogue VLAN)",
            incidents::ROGUE_VLAN_BLOCK,
        ),
        ("multiple VRFs (ordering break)", incidents::VRF_INSERTION),
    ];

    println!(
        "{:<34} {:>7} {:>8}  categories",
        "incident", "caught", "trials"
    );
    let mut results = Vec::new();
    for (name, fault) in cases {
        let mut caught = 0usize;
        let mut trials = 0usize;
        let mut categories: BTreeSet<String> = BTreeSet::new();
        for s in 0..5u64 {
            let role = generate_role(&spec, seed().wrapping_add(s * 31));
            let dataset = dataset_of(&role);
            let contracts = learn(&dataset, &default_params());
            // Inject into each of the first three devices.
            for (victim, text) in role.configs.iter().take(3) {
                let Some(injected) = inject(text, fault) else {
                    continue;
                };
                trials += 1;
                let test =
                    Dataset::from_named_texts(&[(victim.clone(), injected.text)], &role.metadata)
                        .expect("test dataset");
                let report = check(&contracts, &test);
                // Ignore the pre-existing planted anomaly flags: count
                // only violations near or caused by the injected edit.
                let relevant: Vec<_> = report
                    .violations
                    .iter()
                    .filter(|v| v.category != "type")
                    .collect();
                if !relevant.is_empty() {
                    caught += 1;
                    for v in relevant {
                        categories.insert(v.category.clone());
                    }
                }
            }
        }
        let list: Vec<&str> = categories.iter().map(String::as_str).collect();
        println!("{name:<34} {caught:>7} {trials:>8}  {}", list.join(", "));
        results.push(concord_json::json!({
            "incident": name,
            "caught": caught,
            "trials": trials,
            "categories": list,
        }));
    }
    println!("\nPaper: all three replayed incidents were caught (via contains,\nmetadata-relational, and ordering contracts respectively).");
    write_result("incidents", &concord_json::json!({ "rows": results }));
}
