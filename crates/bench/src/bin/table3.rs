//! Table 3: dataset overview — configuration lines, extracted patterns
//! and parameters, `concord learn` runtime, and `concord check` runtime
//! per role.
//!
//! Run with: `cargo run --release -p concord-bench --bin table3`

use concord_bench::{
    dataset_of, default_params, fmt_secs, generate, roles, row, timed, write_result,
};
use concord_core::{check_parallel, learn_with_stats};

fn main() {
    let widths = [8, 10, 10, 12, 8, 8, 8, 10];
    println!(
        "{}",
        row(
            &[
                "Dataset",
                "Lines",
                "Patterns",
                "Parameters",
                "Learn",
                "Check",
                "(rel)",
                "(minimize)",
            ]
            .map(String::from),
            &widths
        )
    );
    let params = default_params();
    let mut results = Vec::new();
    for spec in roles() {
        let role = generate(&spec);
        let dataset = dataset_of(&role);
        let ((contracts, stats), learn_time) = timed(|| learn_with_stats(&dataset, &params));
        let (_report, check_time) = timed(|| check_parallel(&contracts, &dataset, 1));
        let lines = dataset.total_lines();
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    lines.to_string(),
                    dataset.pattern_count().to_string(),
                    dataset.parameter_count().to_string(),
                    fmt_secs(learn_time),
                    fmt_secs(check_time),
                    fmt_secs(stats.relational_time),
                    fmt_secs(stats.minimize_time),
                ],
                &widths
            )
        );
        results.push(concord_json::json!({
            "role": spec.name,
            "lines": lines,
            "patterns": dataset.pattern_count(),
            "parameters": dataset.parameter_count(),
            "learn_secs": learn_time.as_secs_f64(),
            "check_secs": check_time.as_secs_f64(),
            "relational_secs": stats.relational_time.as_secs_f64(),
            "minimize_secs": stats.minimize_time.as_secs_f64(),
            "contracts": contracts.len(),
        }));
    }
    write_result("table3", &concord_json::json!({ "rows": results }));
}
