//! Fleet scaling: sharded `concord serve` vs the unsharded engine on
//! the same corpus — answer identity and CHECK-after-edit throughput.
//!
//! The harness boots one real `concord serve --listen` instance per
//! shard count (1, 2, 4, 8) over a shared on-disk corpus and drives it
//! over loopback TCP:
//!
//! * **Identity.** A scripted session (LEARN, edits, CHECK, GEN,
//!   REMOVE, relearn) runs against every shard count — and once more
//!   with `--replicas 1` — and its full transcript must be
//!   byte-identical to the `--shards 1` transcript. This is asserted,
//!   not just recorded.
//! * **Scaling.** Per shard count: rounds of "UPSERT one device, then
//!   CHECK", timing only the CHECK round trips. The unsharded engine
//!   re-assembles its full report (per-config coverage clones, O(corpus)
//!   per CHECK) while the fleet rechecks one shard and merges cached
//!   per-shard aggregates — the near-linear CHECK-scaling claim. GEN
//!   round trips are timed the same way as a read-path baseline.
//! * **Replication.** A `--shards 4 --replicas 1` cell alternates
//!   UPSERT and GEN on one device (read-your-writes through the
//!   replica), then reads the v8 STATS `fleet.totals` for replica
//!   reads and the maximum observed lag.
//!
//! Results go to `target/experiments/fleet_scaling.json`; full runs
//! snapshot `BENCH_fleet.json` at the repository root, where CI holds
//! the 8-shard CHECK speedup at >= 3x. Pass `--smoke` (or
//! `CONCORD_FLEET_SMOKE=1`) for the small CI sizes.

use concord_bench::{timed, write_result};
use concord_json::{json, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("CONCORD_FLEET_SMOKE").is_ok_and(|v| v == "1")
}

/// Corpus devices. The fleet's per-CHECK merge is O(shards) integer
/// sums; the single engine's per-CHECK assembly is O(devices) — this is
/// the axis that separates them.
fn devices() -> usize {
    if smoke() {
        48
    } else {
        768
    }
}

/// Lines per device config. Scales the single engine's per-CHECK
/// coverage cloning (O(devices * lines)) and both sides' one-config
/// recheck equally.
fn lines_per_device() -> usize {
    if smoke() {
        24
    } else {
        192
    }
}

/// Timed UPSERT+CHECK rounds per shard count.
fn rounds() -> usize {
    if smoke() {
        6
    } else {
        32
    }
}

/// GEN round trips timed per shard count.
fn gen_rounds() -> usize {
    if smoke() {
        64
    } else {
        512
    }
}

fn shard_counts() -> &'static [usize] {
    &[1, 2, 4, 8]
}

/// A `Write` the server thread and the harness share, polled for the
/// `listening on <addr>` announcement.
#[derive(Clone, Default)]
struct SharedOut(Arc<Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("out lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn spawn_server(extra: &[String]) -> String {
    let mut argv: Vec<String> = [
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--deadline-ms",
        "60000",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    argv.extend(extra.iter().cloned());
    let out = SharedOut::default();
    {
        let mut sink = out.clone();
        std::thread::spawn(move || concord_cli::run(&argv, &mut sink));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = String::from_utf8_lossy(&out.0.lock().expect("out lock")).into_owned();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            return line["listening on ".len()..].to_string();
        }
        assert!(Instant::now() < deadline, "server never announced: {text}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// Sends one command (with body for UPSERT) and reads its full
    /// response: one line for most verbs, violations + summary for
    /// CHECK, the full JSON line for STATS.
    fn request(&mut self, wire: &str) -> String {
        self.writer.write_all(wire.as_bytes()).expect("send");
        let check = wire.starts_with("CHECK");
        let mut response = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "server closed mid-response to {wire:?}");
            response.push_str(&line);
            if !check || line.starts_with("ok check ") || line.starts_with("err ") {
                return response;
            }
        }
    }
}

/// One device's config: a uniform many-line body (every device carries
/// the same values, so learning mines presence contracts but no
/// fleet-wide unique contracts and the boot corpus checks
/// violation-free). Odd `variant`s drop the final line — an edit that
/// genuinely dirties the device (and may violate a mined contract)
/// without interning any line shape the boot corpus doesn't already
/// hold, so no resolution invalidation skews the scaling loop.
fn config_body(lines: usize, variant: usize) -> String {
    let mut body = String::from("hostname DEVX\nrouter bgp 65000\n");
    let mut n = 2;
    let mut block = 0usize;
    while n + 2 <= lines {
        body.push_str(&format!(
            "vlan {}\ninterface Vlan{}\n",
            100 + block,
            100 + block
        ));
        n += 2;
        block += 1;
    }
    if variant % 2 == 1 {
        let trimmed = body.trim_end_matches('\n');
        let cut = trimmed.rfind('\n').map_or(0, |i| i + 1);
        body.truncate(cut);
    }
    body
}

fn write_corpus(count: usize, lines: usize) -> (std::path::PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("concord-fleet-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    for i in 0..count {
        std::fs::write(dir.join(format!("dev{i}.cfg")), config_body(lines, 0))
            .expect("write corpus");
    }
    let glob = format!("{}/*.cfg", dir.display());
    (dir, glob)
}

fn server_args(glob: &str, shards: usize, replicas: usize, state_dir: Option<&str>) -> Vec<String> {
    let mut args = vec![
        "--configs".to_string(),
        glob.to_string(),
        "--shards".to_string(),
        shards.to_string(),
    ];
    if replicas > 0 {
        args.push("--replicas".to_string());
        args.push(replicas.to_string());
    }
    if let Some(dir) = state_dir {
        args.push("--state-dir".to_string());
        args.push(dir.to_string());
    }
    args
}

/// The identity script: every answer-bearing verb, including edits that
/// cross shard boundaries and a relearn over the edited corpus.
fn identity_transcript(addr: &str, lines: usize) -> String {
    let mut client = Client::connect(addr);
    let mut transcript = String::new();
    let body = config_body(lines, 1);
    let script: Vec<String> = vec![
        "LEARN\n".to_string(),
        "CHECK\n".to_string(),
        format!("UPSERT dev0\n{body}.\n"),
        "CHECK\n".to_string(),
        "CHECK\n".to_string(),
        "GEN dev0\n".to_string(),
        "GEN dev1\n".to_string(),
        format!("UPSERT devnew\n{body}.\n"),
        "REMOVE dev2\n".to_string(),
        "CHECK\n".to_string(),
        "LEARN\n".to_string(),
        "CONTRACTS\n".to_string(),
        "CHECK\n".to_string(),
        "QUIT\n".to_string(),
    ];
    for wire in script {
        transcript.push_str(&client.request(&wire));
    }
    transcript
}

/// Timed scaling cell: per round, UPSERT one (rotating) device with an
/// alternating body, then CHECK; only the CHECK round trips are summed.
/// Returns (checks/sec, gens/sec, the last CHECK response).
fn scaling_cell(addr: &str, count: usize, lines: usize) -> (f64, f64, String) {
    let mut client = Client::connect(addr);
    let learned = client.request("LEARN\n");
    assert!(learned.starts_with("ok learn "), "{learned}");
    // Warm: first CHECK pays the full from-cold recheck, second settles
    // the report caches.
    client.request("CHECK\n");
    client.request("CHECK\n");

    let mut check_time = Duration::ZERO;
    let mut last = String::new();
    for round in 0..rounds() {
        let device = format!("dev{}", round % count);
        let body = config_body(lines, round + 1);
        let up = client.request(&format!("UPSERT {device}\n{body}.\n"));
        assert!(up.starts_with("ok upsert "), "{up}");
        let (response, elapsed) = timed(|| client.request("CHECK\n"));
        assert!(response.contains("ok check "), "{response}");
        check_time += elapsed;
        last = response;
    }
    let checks_per_sec = rounds() as f64 / check_time.as_secs_f64().max(1e-9);

    let mut gen_time = Duration::ZERO;
    for round in 0..gen_rounds() {
        let device = format!("dev{}", round % count);
        let (response, elapsed) = timed(|| client.request(&format!("GEN {device}\n")));
        assert!(response.starts_with("ok gen "), "{response}");
        gen_time += elapsed;
    }
    let gens_per_sec = gen_rounds() as f64 / gen_time.as_secs_f64().max(1e-9);

    client.request("QUIT\n");
    (checks_per_sec, gens_per_sec, last)
}

/// Replica cell: alternate UPSERT and GEN on one device so every read
/// exercises the replica's read-your-writes poll, then report the v8
/// STATS fleet totals.
fn replica_cell(glob: &str) -> Json {
    let state =
        std::env::temp_dir().join(format!("concord-fleet-bench-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let addr = spawn_server(&server_args(glob, 4, 1, Some(&state.display().to_string())));
    let mut client = Client::connect(&addr);
    client.request("LEARN\n");
    let rounds = if smoke() { 8 } else { 64 };
    for round in 0..rounds {
        let body = config_body(lines_per_device(), round);
        let up = client.request(&format!("UPSERT dev0\n{body}.\n"));
        assert!(up.starts_with("ok upsert "), "{up}");
        let gen = client.request("GEN dev0\n");
        assert!(
            gen.starts_with("ok gen dev0 "),
            "replica read failed: {gen}"
        );
    }
    let stats = client.request("STATS\n");
    client.request("QUIT\n");
    let json_text = stats
        .strip_prefix("ok stats ")
        .expect("stats response")
        .trim();
    let stats = Json::parse(json_text).expect("stats parses");
    let totals = &stats["fleet"]["totals"];
    let replica_reads = totals["replica_reads"].as_u64().expect("replica_reads");
    let max_lag = totals["max_replica_lag"].as_u64().expect("max_replica_lag");
    assert!(
        replica_reads >= rounds as u64,
        "every GEN should read through a replica: {replica_reads} < {rounds}"
    );
    let _ = std::fs::remove_dir_all(&state);
    println!(
        "replica cell (4 shards x 1 replica): {replica_reads} replica reads, max lag {max_lag}"
    );
    json!({
        "shards": 4,
        "replicas": 1,
        "write_read_rounds": rounds,
        "replica_reads": replica_reads,
        "max_replica_lag": max_lag,
    })
}

fn main() {
    let count = devices();
    let lines = lines_per_device();
    let (dir, glob) = write_corpus(count, lines);

    // Identity: every shard count (and a replicated variant) answers
    // byte-identically to the unsharded engine.
    let baseline = identity_transcript(&spawn_server(&server_args(&glob, 1, 0, None)), lines);
    let mut identity_cells: Vec<Json> = Vec::new();
    for &shards in shard_counts().iter().skip(1) {
        let transcript =
            identity_transcript(&spawn_server(&server_args(&glob, shards, 0, None)), lines);
        assert_eq!(
            transcript, baseline,
            "--shards {shards} diverged from --shards 1"
        );
        identity_cells.push(json!({ "shards": shards, "replicas": 0, "identical": true }));
    }
    {
        let state = std::env::temp_dir().join(format!(
            "concord-fleet-bench-idstate-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&state);
        let transcript = identity_transcript(
            &spawn_server(&server_args(
                &glob,
                4,
                1,
                Some(&state.display().to_string()),
            )),
            lines,
        );
        assert_eq!(
            transcript, baseline,
            "--shards 4 --replicas 1 diverged from --shards 1"
        );
        identity_cells.push(json!({ "shards": 4, "replicas": 1, "identical": true }));
        let _ = std::fs::remove_dir_all(&state);
    }
    println!(
        "identity: {} devices x {} lines byte-identical across shard counts {:?} (+ replicas)",
        count,
        lines,
        shard_counts()
    );

    // Scaling: CHECK-after-edit and GEN throughput per shard count.
    let mut cells: Vec<Json> = Vec::new();
    let mut base_checks = 0.0f64;
    let mut base_gens = 0.0f64;
    let mut check_speedup_at_8 = 0.0f64;
    let mut last_responses: Vec<String> = Vec::new();
    for &shards in shard_counts() {
        let addr = spawn_server(&server_args(&glob, shards, 0, None));
        let (checks_per_sec, gens_per_sec, last) = scaling_cell(&addr, count, lines);
        if shards == 1 {
            base_checks = checks_per_sec;
            base_gens = gens_per_sec;
        }
        let check_speedup = checks_per_sec / base_checks.max(1e-9);
        let gen_speedup = gens_per_sec / base_gens.max(1e-9);
        if shards == 8 {
            check_speedup_at_8 = check_speedup;
        }
        println!(
            "{shards:>2} shards: {checks_per_sec:>8.1} checks/s ({check_speedup:.2}x)  {gens_per_sec:>8.1} gens/s ({gen_speedup:.2}x)"
        );
        last_responses.push(last);
        cells.push(json!({
            "shards": shards,
            "checks_per_sec": checks_per_sec,
            "check_speedup": check_speedup,
            "gens_per_sec": gens_per_sec,
            "gen_speedup": gen_speedup,
        }));
    }
    // The timed loops end in the same corpus state for every shard
    // count, so even the final CHECK answers must agree byte for byte
    // (modulo the incremental counters, identical here since every cell
    // runs the same edit sequence).
    for (i, response) in last_responses.iter().enumerate() {
        assert_eq!(
            response,
            &last_responses[0],
            "final CHECK at {} shards diverged",
            shard_counts()[i]
        );
    }

    let replica = replica_cell(&glob);

    let result = json!({
        "schema": "concord-bench-fleet/v1",
        "smoke": smoke(),
        "max_rss_kb": concord_bench::microbench::max_rss_kb(),
        "devices": count,
        "lines_per_device": lines,
        "rounds": rounds(),
        "gen_rounds": gen_rounds(),
        "identity": json!({
            "identical": true,
            "cells": Json::Array(identity_cells),
        }),
        "scaling": Json::Array(cells),
        "replica": replica,
        "summary": json!({
            "check_speedup_at_8": check_speedup_at_8,
        }),
    });
    write_result("fleet_scaling", &result);
    if !smoke() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
        let text = concord_json::to_string_pretty(&result).expect("result serializes");
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("(wrote {})", path.display()),
            Err(e) => eprintln!("(could not write {}: {e})", path.display()),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
