//! Comparison against the prior-work key–value configuration model
//! (Challenge 1 of §2: ConfigV/ConfigC/Encore/Minerals model configs as
//! unique keys with values, which cannot represent repeated elements,
//! hierarchy, or relational structure).
//!
//! Per role this reports: the fraction of lines the key–value model
//! loses to key collisions, the number of association rules the classic
//! pipeline (frequent item sets → rules) extracts from what survives,
//! and Concord's contract count over the same data.
//!
//! Run with: `cargo run --release -p concord-bench --bin baseline_kv`

use concord_baseline::{fpgrowth, generate_rules, kv};
use concord_bench::{dataset_of, default_params, generate, roles, write_result};
use concord_core::learn;

fn main() {
    println!(
        "{:<8} {:>11} {:>10} {:>10} {:>13}",
        "role", "lines-lost", "kv-rules", "concord", "rel-contracts"
    );
    let mut rows = Vec::new();
    for spec in roles() {
        let role = generate(&spec);
        let dataset = dataset_of(&role);

        // The prior-work pipeline: collapse to unique keys, mine frequent
        // item sets (support mirrors Concord's S), emit rules at the same
        // confidence.
        let kv_configs = kv::from_dataset(&dataset);
        let lost = kv::lost_fraction(&dataset);
        let (transactions, _names) = kv::transactions(&kv_configs);
        let params = default_params();
        let sets = fpgrowth::mine(&transactions, params.support, 2);
        let rules = generate_rules(&sets, params.confidence);

        // Concord over the same data.
        let contracts = learn(&dataset, &params);
        let relational = contracts
            .contracts
            .iter()
            .filter(|c| matches!(c, concord_core::Contract::Relational(_)))
            .count();

        println!(
            "{:<8} {:>10.1}% {:>10} {:>10} {:>13}",
            spec.name,
            lost * 100.0,
            rules.len(),
            contracts.len(),
            relational,
        );
        rows.push(concord_json::json!({
            "role": spec.name,
            "lines_lost": lost,
            "kv_rules": rules.len(),
            "concord_contracts": contracts.len(),
            "concord_relational": relational,
        }));
    }
    println!(
        "\nThe key-value model discards every repeated element (multiple\ninterfaces, prefix-list entries, VLAN blocks) before mining even\nstarts, and its rules relate whole lines, never values — it cannot\nexpress a single one of Concord's relational contracts (column 5)."
    );
    write_result("baseline_kv", &concord_json::json!({ "rows": rows }));
}
