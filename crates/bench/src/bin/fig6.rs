//! Figure 6: Concord's scaling trend — normalized combined learn+check
//! runtime versus the normalized number of configurations (near-linear),
//! with the standard deviation across WAN roles.
//!
//! Run with: `cargo run --release -p concord-bench --bin fig6`

use concord_bench::{default_params, generate, roles, timed, write_result};
use concord_core::{check_parallel, learn, Dataset};

const FRACTIONS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let params = default_params();
    // The larger WAN roles, as in the paper.
    let wan: Vec<_> = roles()
        .into_iter()
        .filter(|s| s.name.starts_with('W') && s.devices >= 10)
        .collect();

    // per role: normalized runtime per fraction.
    let mut series: Vec<Vec<f64>> = Vec::new();
    for spec in &wan {
        let role = generate(spec);
        let mut runtimes = Vec::new();
        for f in FRACTIONS {
            let take = ((role.configs.len() as f64 * f).round() as usize).max(2);
            let subset: Vec<(String, String)> = role.configs.iter().take(take).cloned().collect();
            let (_, duration) = timed(|| {
                let dataset =
                    Dataset::from_named_texts(&subset, &role.metadata).expect("subset dataset");
                let contracts = learn(&dataset, &params);
                check_parallel(&contracts, &dataset, 1)
            });
            runtimes.push(duration.as_secs_f64());
        }
        let max = runtimes.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
        series.push(runtimes.iter().map(|t| t / max).collect());
    }

    println!(
        "frac  mean_runtime  stddev   (normalized, {} WAN roles)",
        series.len()
    );
    let mut points = Vec::new();
    for (i, f) in FRACTIONS.iter().enumerate() {
        let values: Vec<f64> = series.iter().map(|s| s[i]).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        let std = var.sqrt();
        println!("{f:<5} {mean:<13.3} {std:.3}");
        points.push(concord_json::json!({
            "fraction": f,
            "mean": mean,
            "std": std,
        }));
    }

    // Linearity check: the correlation between fraction and mean runtime
    // should be extremely high (the paper's "linear scaling trend").
    let means: Vec<f64> = points
        .iter()
        .map(|p| p["mean"].as_f64().expect("mean"))
        .collect();
    let r = pearson(&FRACTIONS, &means);
    println!("\npearson r(fraction, runtime) = {r:.4}");
    write_result(
        "fig6",
        &concord_json::json!({ "points": points, "pearson_r": r }),
    );
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}
