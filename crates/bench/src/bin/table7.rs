//! Table 7: estimated precision per contract category (in %).
//!
//! Where the paper uses manual expert review of the Table 6 sample, this
//! reproduction uses the generator's ground-truth oracle: a learned
//! contract is a true positive iff it keeps holding on freshly generated
//! devices from the same role template. The paper's headline shape —
//! high precision everywhere except ordering contracts (which learn the
//! generator's fixed-but-interchangeable line order) — should reproduce.
//!
//! Run with: `cargo run --release -p concord-bench --bin table7`

use concord_bench::precision::{evaluate_family, precision};
use concord_bench::{write_result, CATEGORY_COLUMNS};

fn main() {
    let mut results = Vec::new();
    println!("{:<8}", "Dataset");
    println!(
        "{:<8} {}",
        "",
        CATEGORY_COLUMNS
            .iter()
            .map(|c| format!("{c:>9}"))
            .collect::<String>()
    );
    for (label, prefix) in [("Edge", "E"), ("WAN", "W")] {
        let scores = evaluate_family(prefix);
        let mut cells = format!("{label:<8} ");
        for category in CATEGORY_COLUMNS {
            let scored = &scores[category];
            match precision(scored) {
                Some(p) => cells.push_str(&format!("{:>9.0}", p * 100.0)),
                None => cells.push_str(&format!("{:>9}", "-")),
            }
            results.push(concord_json::json!({
                "family": label,
                "category": category,
                "n": scored.len(),
                "precision": precision(scored),
            }));
        }
        println!("{cells}");
    }
    println!(
        "\n(precision via the generator oracle; the paper reports >= 90% for\n most categories with ordering lowest — see DESIGN.md substitution 2)"
    );
    write_result("table7", &concord_json::json!({ "rows": results }));
}
