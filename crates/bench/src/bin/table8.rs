//! Table 8: a selection of simple, intuitive learned contracts rendered
//! in the paper's notation, one batch per dataset family.
//!
//! Run with: `cargo run --release -p concord-bench --bin table8`

use concord_bench::{dataset_of, default_params, generate, roles, write_result};
use concord_core::{learn, Contract};

/// Picks a few representative, human-readable contracts: prefer
/// relational ones with transforms or containment (the interesting
/// cases), then presence/uniqueness.
fn select(contracts: &[Contract], limit: usize) -> Vec<&Contract> {
    let mut picked: Vec<&Contract> = Vec::new();
    let interesting = |c: &Contract| match c {
        Contract::Relational(r) => {
            r.relation != concord_core::RelationKind::Equals
                || r.antecedent.transform != concord_types::Transform::Id
                || r.consequent.transform != concord_types::Transform::Id
        }
        _ => false,
    };
    picked.extend(contracts.iter().filter(|c| interesting(c)).take(limit / 2));
    picked.extend(
        contracts
            .iter()
            .filter(|c| matches!(c, Contract::Unique { .. }))
            .take(2),
    );
    picked.extend(
        contracts
            .iter()
            .filter(|c| matches!(c, Contract::Relational(_)) && !interesting(c))
            .take(limit.saturating_sub(picked.len())),
    );
    picked.truncate(limit);
    picked
}

fn main() {
    let mut results = Vec::new();
    for name in ["E1", "W1", "W4"] {
        let spec = roles().into_iter().find(|s| s.name == name).expect("role");
        let role = generate(&spec);
        let dataset = dataset_of(&role);
        let contracts = learn(&dataset, &default_params());
        println!("== learned from {name} ==\n");
        for contract in select(&contracts.contracts, 5) {
            let text = contract.describe();
            println!("{text}\n");
            results.push(concord_json::json!({
                "role": name,
                "contract": text,
                "category": contract.category(),
            }));
        }
    }
    write_result("table8", &concord_json::json!({ "rows": results }));
}
