//! The ground-truth oracle and the deterministic LLM-substitute scorer.
//!
//! The paper estimates precision with GPT-4 scoring followed by manual
//! expert review (§5.4). Neither is available offline, and — unlike the
//! paper's authors — we control the generator, so we can do better: a
//! learned contract is a **true positive** iff it continues to hold on
//! devices freshly generated from the same role template with unseen
//! seeds. Template invariants survive; coincidences break.
//!
//! [`score_1_to_10`] is the stand-in for the LLM's 1–10 confidence score:
//! deterministic in the contract text, concentrated on 7–10 for oracle-
//! true contracts and 1–5 for oracle-false ones, with a thin band of
//! borderline scores — enough structure to reproduce the CDF shapes of
//! Figure 9 and drive the sample-size machinery of Table 6.

use concord_core::{check, Contract, ContractSet, Dataset};
#[cfg(test)]
use concord_datagen::generate_role;
use concord_datagen::{generate_role_with, RoleSpec};

/// Number of fresh seeds a contract must survive to count as valid.
pub const ORACLE_SEEDS: u64 = 3;

/// An oracle over freshly generated datasets of one role.
pub struct Oracle {
    fresh: Vec<Dataset>,
}

impl Oracle {
    /// Builds the oracle for `spec`, generating [`ORACLE_SEEDS`] unseen
    /// *clean* datasets (seeds disjoint from the training seed, anomaly
    /// drift disabled): a contract reflecting operator intent must hold
    /// on clean same-template devices, while an anomaly-flagging contract
    /// remains valid because clean data has nothing to flag.
    pub fn new(spec: &RoleSpec, train_seed: u64) -> Self {
        let fresh = (1..=ORACLE_SEEDS)
            .map(|i| {
                let role = generate_role_with(spec, train_seed.wrapping_add(i * 7919), false);
                Dataset::from_named_texts(&role.configs, &role.metadata)
                    .expect("oracle dataset builds")
            })
            .collect();
        Oracle { fresh }
    }

    /// Returns `true` when `contract` holds (no violations) on every
    /// fresh dataset.
    pub fn is_valid(&self, contract: &Contract) -> bool {
        let singleton = ContractSet {
            contracts: vec![contract.clone()],
            relational_before_minimization: 0,
        };
        self.fresh
            .iter()
            .all(|ds| check(&singleton, ds).violations.is_empty())
    }
}

/// Deterministic 1–10 confidence score for a contract, given its oracle
/// verdict (the LLM substitute for Figure 9 / Table 6).
pub fn score_1_to_10(contract: &Contract, oracle_valid: bool) -> u8 {
    let h = fnv(contract.describe().as_bytes());
    if oracle_valid {
        // 80% in 8..=10, 15% in 6..=7, 5% borderline 5.
        match h % 100 {
            0..=79 => 8 + (h / 100 % 3) as u8,
            80..=94 => 6 + (h / 100 % 2) as u8,
            _ => 5,
        }
    } else {
        // 75% in 1..=3, 20% in 4..=5, 5% optimistic 6.
        match h % 100 {
            0..=74 => 1 + (h / 100 % 3) as u8,
            75..=94 => 4 + (h / 100 % 2) as u8,
            _ => 6,
        }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_core::{learn, LearnParams};
    use concord_datagen::standard_roles;

    #[test]
    fn planted_contracts_survive_oracle() {
        let spec = standard_roles(0.4)
            .into_iter()
            .find(|s| s.name == "E1")
            .unwrap();
        let role = generate_role(&spec, 42);
        let ds = Dataset::from_named_texts(&role.configs, &role.metadata).unwrap();
        let contracts = learn(&ds, &LearnParams::default());
        let oracle = Oracle::new(&spec, 42);
        let valid = contracts
            .contracts
            .iter()
            .filter(|c| oracle.is_valid(c))
            .count();
        // The generator's invariants dominate; most contracts survive.
        assert!(
            valid * 10 >= contracts.len() * 6,
            "only {valid}/{} survived",
            contracts.len()
        );
    }

    #[test]
    fn fabricated_contract_fails_oracle() {
        let spec = standard_roles(0.4)
            .into_iter()
            .find(|s| s.name == "E1")
            .unwrap();
        let oracle = Oracle::new(&spec, 42);
        let bogus = Contract::Present {
            pattern: "/no such pattern anywhere".to_string(),
        };
        assert!(!oracle.is_valid(&bogus));
    }

    #[test]
    fn scores_deterministic_and_separated() {
        let c = Contract::Present {
            pattern: "/router bgp [a:num]".to_string(),
        };
        assert_eq!(score_1_to_10(&c, true), score_1_to_10(&c, true));
        assert!(score_1_to_10(&c, true) >= 5);
        assert!(score_1_to_10(&c, false) <= 6);
    }

    #[test]
    fn score_distribution_shape() {
        // Over many distinct contracts, true scores skew high and false
        // scores skew low.
        let mk = |i: usize| Contract::Present {
            pattern: format!("/pattern-{i}"),
        };
        let true_high = (0..200)
            .filter(|&i| score_1_to_10(&mk(i), true) >= 6)
            .count();
        let false_low = (0..200)
            .filter(|&i| score_1_to_10(&mk(i), false) <= 5)
            .count();
        assert!(true_high > 180, "{true_high}");
        assert!(false_low > 180, "{false_low}");
    }
}
