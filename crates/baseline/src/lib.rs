#![warn(missing_docs)]

//! Baseline miners Concord is compared against.
//!
//! Three families of baselines from the paper:
//!
//! - [`kv`]: the *key–value* configuration model of prior work
//!   (ConfigV/ConfigC/Encore/Minerals, §6) — configurations as sets of
//!   unique keys with values. The conversion from raw text shows what
//!   that model loses: repeated elements collapse and relational
//!   structure disappears.
//! - [`apriori`] and [`fpgrowth`]: classic frequent-item-set miners
//!   (§3.3) used by association-rule learners. Both produce identical
//!   frequent sets; FP-Growth avoids candidate generation.
//! - [`naive`]: the brute-force relational learner — enumerate every
//!   candidate `(pattern, param, transform) × relation × (pattern, param,
//!   transform)` triple and verify each against every configuration by
//!   scanning. This is the "optimizations disabled" configuration of
//!   §5.2, which fails to terminate at production scale.

pub mod apriori;
pub mod fpgrowth;
pub mod kv;
pub mod naive;

/// An item set with its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentSet {
    /// The items, sorted ascending.
    pub items: Vec<u32>,
    /// Number of transactions containing all items.
    pub support: usize,
}

/// An association rule `antecedent → consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Items that must be present.
    pub antecedent: Vec<u32>,
    /// The implied item.
    pub consequent: u32,
    /// Transactions containing antecedent ∪ {consequent}.
    pub support: usize,
    /// `support / support(antecedent)`.
    pub confidence: f64,
}

/// Generates rules with single-item consequents from frequent sets.
///
/// For every frequent set `S` and every `c ∈ S`, the rule
/// `S \ {c} → c` is emitted when its confidence clears `min_confidence`.
pub fn generate_rules(sets: &[FrequentSet], min_confidence: f64) -> Vec<Rule> {
    use std::collections::HashMap;
    let support_of: HashMap<&[u32], usize> = sets
        .iter()
        .map(|s| (s.items.as_slice(), s.support))
        .collect();
    let mut rules = Vec::new();
    for set in sets {
        if set.items.len() < 2 {
            continue;
        }
        for (i, &consequent) in set.items.iter().enumerate() {
            let mut antecedent = set.items.clone();
            antecedent.remove(i);
            let Some(&ante_support) = support_of.get(antecedent.as_slice()) else {
                continue;
            };
            let confidence = set.support as f64 / ante_support as f64;
            if confidence >= min_confidence {
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support: set.support,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| (&a.antecedent, a.consequent).cmp(&(&b.antecedent, b.consequent)));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_generation_confidence() {
        // {1} in 4 transactions, {1,2} in 3: confidence(1->2) = 0.75.
        let sets = vec![
            FrequentSet {
                items: vec![1],
                support: 4,
            },
            FrequentSet {
                items: vec![2],
                support: 3,
            },
            FrequentSet {
                items: vec![1, 2],
                support: 3,
            },
        ];
        let rules = generate_rules(&sets, 0.7);
        assert!(rules.iter().any(|r| {
            r.antecedent == vec![1] && r.consequent == 2 && (r.confidence - 0.75).abs() < 1e-9
        }));
        // 2 -> 1 has confidence 1.0.
        assert!(rules.iter().any(|r| {
            r.antecedent == vec![2] && r.consequent == 1 && (r.confidence - 1.0).abs() < 1e-9
        }));
        // Raising the bar removes the weaker rule.
        let strict = generate_rules(&sets, 0.9);
        assert!(!strict.iter().any(|r| r.antecedent == vec![1]));
    }

    #[test]
    fn singleton_sets_make_no_rules() {
        let sets = vec![FrequentSet {
            items: vec![1],
            support: 5,
        }];
        assert!(generate_rules(&sets, 0.5).is_empty());
    }
}
