//! The FP-Growth frequent-item-set algorithm (Han et al., 2000).
//!
//! Transactions are compressed into a frequency-ordered prefix tree (the
//! FP-tree); frequent sets are mined recursively from conditional trees
//! without generating candidates. Output is identical to
//! [`crate::apriori::mine`] (tested against it) — the difference is the
//! algorithmic strategy the paper contrasts in §3.3.

use std::collections::HashMap;

use crate::FrequentSet;

#[derive(Debug)]
struct FpNode {
    item: u32,
    count: usize,
    parent: usize,
    children: Vec<usize>,
}

#[derive(Debug)]
struct FpTree {
    nodes: Vec<FpNode>,
    /// item → node indices holding that item.
    header: HashMap<u32, Vec<usize>>,
}

impl FpTree {
    fn new() -> Self {
        FpTree {
            nodes: vec![FpNode {
                item: u32::MAX,
                count: 0,
                parent: usize::MAX,
                children: Vec::new(),
            }],
            header: HashMap::new(),
        }
    }

    fn insert(&mut self, items: &[u32], count: usize) {
        let mut node = 0usize;
        for &item in items {
            let child = self.nodes[node]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            node = match child {
                Some(c) => {
                    self.nodes[c].count += count;
                    c
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(FpNode {
                        item,
                        count,
                        parent: node,
                        children: Vec::new(),
                    });
                    self.nodes[node].children.push(idx);
                    self.header.entry(item).or_default().push(idx);
                    idx
                }
            };
        }
    }
}

/// Mines all item sets appearing in at least `min_support` transactions.
///
/// `max_len` bounds the size of mined sets.
pub fn mine(transactions: &[Vec<u32>], min_support: usize, max_len: usize) -> Vec<FrequentSet> {
    // Weighted "transactions" support the recursive conditional mining.
    let weighted: Vec<(Vec<u32>, usize)> = transactions
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.sort_unstable();
            t.dedup();
            (t, 1)
        })
        .collect();
    let mut out = Vec::new();
    mine_weighted(&weighted, min_support, max_len, &mut Vec::new(), &mut out);
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

fn mine_weighted(
    transactions: &[(Vec<u32>, usize)],
    min_support: usize,
    max_len: usize,
    suffix: &mut Vec<u32>,
    out: &mut Vec<FrequentSet>,
) {
    if suffix.len() >= max_len {
        return;
    }
    // Count item frequencies.
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for (items, weight) in transactions {
        for &item in items {
            *counts.entry(item).or_insert(0) += weight;
        }
    }
    let mut frequent: Vec<(u32, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .collect();
    // Order by descending frequency (tie-break by item id) — the classic
    // FP ordering that maximizes sharing.
    frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let order: HashMap<u32, usize> = frequent
        .iter()
        .enumerate()
        .map(|(i, &(item, _))| (item, i))
        .collect();

    // Build the FP-tree over frequency-ordered, filtered transactions.
    let mut tree = FpTree::new();
    for (items, weight) in transactions {
        let mut filtered: Vec<u32> = items
            .iter()
            .copied()
            .filter(|i| order.contains_key(i))
            .collect();
        filtered.sort_by_key(|i| order[i]);
        if !filtered.is_empty() {
            tree.insert(&filtered, *weight);
        }
    }

    // Mine each frequent item's conditional pattern base, least frequent
    // first (bottom of the tree).
    for &(item, support) in frequent.iter().rev() {
        let mut items = suffix.clone();
        items.push(item);
        items.sort_unstable();
        out.push(FrequentSet {
            items: items.clone(),
            support,
        });

        // Conditional pattern base: prefix paths above each `item` node.
        let mut conditional: Vec<(Vec<u32>, usize)> = Vec::new();
        if let Some(nodes) = tree.header.get(&item) {
            for &n in nodes {
                let count = tree.nodes[n].count;
                let mut path = Vec::new();
                let mut p = tree.nodes[n].parent;
                while p != usize::MAX && tree.nodes[p].item != u32::MAX {
                    path.push(tree.nodes[p].item);
                    p = tree.nodes[p].parent;
                }
                if !path.is_empty() {
                    path.reverse();
                    conditional.push((path, count));
                }
            }
        }
        if !conditional.is_empty() {
            suffix.push(item);
            mine_weighted(&conditional, min_support, max_len, suffix, out);
            suffix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(items: &[u32]) -> Vec<u32> {
        items.to_vec()
    }

    #[test]
    fn matches_apriori_on_classic_example() {
        let txs = vec![t(&[1, 3, 4]), t(&[2, 3, 5]), t(&[1, 2, 3, 5]), t(&[2, 5])];
        let mut fp = mine(&txs, 2, 3);
        let mut ap = crate::apriori::mine(&txs, 2, 3);
        fp.sort_by(|a, b| a.items.cmp(&b.items));
        ap.sort_by(|a, b| a.items.cmp(&b.items));
        assert_eq!(fp, ap);
    }

    #[test]
    fn matches_apriori_on_random_data() {
        // Deterministic pseudo-random transactions.
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let txs: Vec<Vec<u32>> = (0..40)
            .map(|_| (0..12).filter(|_| rand() % 3 == 0).collect())
            .collect();
        for min_support in [2, 5, 10] {
            let mut fp = mine(&txs, min_support, 3);
            let mut ap = crate::apriori::mine(&txs, min_support, 3);
            fp.sort_by(|a, b| a.items.cmp(&b.items));
            ap.sort_by(|a, b| a.items.cmp(&b.items));
            assert_eq!(fp, ap, "min_support={min_support}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(mine(&[], 1, 3).is_empty());
    }

    #[test]
    fn single_transaction() {
        let sets = mine(&[t(&[1, 2])], 1, 2);
        let items: Vec<&[u32]> = sets.iter().map(|s| s.items.as_slice()).collect();
        assert!(items.contains(&&[1u32][..]));
        assert!(items.contains(&&[2u32][..]));
        assert!(items.contains(&&[1u32, 2][..]));
    }
}
