//! The Apriori frequent-item-set algorithm (Agrawal et al., 1993).
//!
//! Level-wise candidate generation: frequent `k`-sets are joined to form
//! `k+1`-candidates, pruned by the downward-closure property, and counted
//! with one pass over the transactions per level. The exhaustive
//! candidate generation is exactly the cost the paper's §3.3 identifies
//! as unscalable for configurations.

use std::collections::HashMap;

use crate::FrequentSet;

/// Mines all item sets appearing in at least `min_support` transactions.
///
/// `max_len` bounds the size of the mined sets (frequent-set counts grow
/// combinatorially; callers typically need pairs or triples).
pub fn mine(transactions: &[Vec<u32>], min_support: usize, max_len: usize) -> Vec<FrequentSet> {
    // Normalize transactions: sorted, deduplicated.
    let normalized: Vec<Vec<u32>> = transactions
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect();

    let mut out: Vec<FrequentSet> = Vec::new();

    // Level 1.
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for t in &normalized {
        for &item in t {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut current: Vec<Vec<u32>> = counts
        .iter()
        .filter(|&(_, &c)| c >= min_support)
        .map(|(&item, _)| vec![item])
        .collect();
    current.sort();
    for items in &current {
        out.push(FrequentSet {
            items: items.clone(),
            support: counts[&items[0]],
        });
    }

    let mut k = 1;
    while !current.is_empty() && k < max_len {
        // Join step: two frequent k-sets sharing a (k-1)-prefix.
        let mut candidates: Vec<Vec<u32>> = Vec::new();
        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                let (a, b) = (&current[i], &current[j]);
                if a[..k - 1] != b[..k - 1] {
                    break; // Sorted: no further shared prefixes.
                }
                let mut candidate = a.clone();
                candidate.push(b[k - 1]);
                // Prune: every (k)-subset must be frequent.
                let all_frequent = (0..candidate.len()).all(|drop| {
                    let mut subset = candidate.clone();
                    subset.remove(drop);
                    current.binary_search(&subset).is_ok()
                });
                if all_frequent {
                    candidates.push(candidate);
                }
            }
        }
        // Count step.
        let mut next: Vec<(Vec<u32>, usize)> = Vec::new();
        for candidate in candidates {
            let support = normalized
                .iter()
                .filter(|t| is_subset(&candidate, t))
                .count();
            if support >= min_support {
                next.push((candidate, support));
            }
        }
        next.sort();
        current = next.iter().map(|(items, _)| items.clone()).collect();
        for (items, support) in next {
            out.push(FrequentSet { items, support });
        }
        k += 1;
    }
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

/// Returns `true` when sorted `needle` is a subset of sorted `haystack`.
fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    let mut it = haystack.iter();
    'outer: for &n in needle {
        for &h in it.by_ref() {
            if h == n {
                continue 'outer;
            }
            if h > n {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(items: &[u32]) -> Vec<u32> {
        items.to_vec()
    }

    #[test]
    fn subset_check() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn classic_market_basket() {
        // Transactions over items {1,2,3,5}.
        let txs = vec![t(&[1, 3, 4]), t(&[2, 3, 5]), t(&[1, 2, 3, 5]), t(&[2, 5])];
        let sets = mine(&txs, 2, 3);
        let find = |items: &[u32]| sets.iter().find(|s| s.items == items).map(|s| s.support);
        assert_eq!(find(&[1]), Some(2));
        assert_eq!(find(&[2]), Some(3));
        assert_eq!(find(&[3]), Some(3));
        assert_eq!(find(&[5]), Some(3));
        assert_eq!(find(&[2, 5]), Some(3));
        assert_eq!(find(&[2, 3, 5]), Some(2));
        assert_eq!(find(&[4]), None, "support 1 < 2");
        assert_eq!(find(&[1, 5]), None, "support 1");
    }

    #[test]
    fn max_len_bounds_output() {
        let txs = vec![t(&[1, 2, 3]), t(&[1, 2, 3]), t(&[1, 2, 3])];
        let sets = mine(&txs, 2, 2);
        assert!(sets.iter().all(|s| s.items.len() <= 2));
    }

    #[test]
    fn duplicate_items_count_once() {
        let txs = vec![t(&[7, 7, 7]), t(&[7])];
        let sets = mine(&txs, 2, 2);
        assert_eq!(
            sets,
            vec![FrequentSet {
                items: vec![7],
                support: 2
            }]
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(mine(&[], 1, 3).is_empty());
        let txs = vec![t(&[])];
        assert!(mine(&txs, 1, 3).is_empty());
    }
}
