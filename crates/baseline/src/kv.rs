//! The key–value configuration model of prior work (§6).
//!
//! ConfigV, ConfigC, Encore, and Minerals model a configuration as a set
//! of *unique* keys with values (`max_connections → 64`). The conversion
//! below maps Concord's IR into that model: the pattern becomes the key
//! and the first parameter the value — and because keys must be unique,
//! repeated elements (multiple interfaces, prefix-list entries, VLAN
//! blocks) collapse to a single survivor. [`lost_fraction`] quantifies
//! how much of a dataset the model throws away, which is the coverage gap
//! Concord's richer model closes.

use std::collections::HashMap;

use concord_core::Dataset;

/// A configuration as the prior-work model sees it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvConfig {
    /// Unique keys with their (last-writer-wins) values.
    pub pairs: HashMap<String, String>,
}

/// Converts a dataset into key–value configurations.
pub fn from_dataset(dataset: &Dataset) -> Vec<KvConfig> {
    dataset
        .configs
        .iter()
        .map(|config| {
            let mut pairs = HashMap::new();
            for line in config.lines(&dataset.arenas) {
                if line.is_meta {
                    continue;
                }
                let key = dataset.table.text(line.pattern).to_string();
                let value = line
                    .params
                    .first()
                    .map(|p| p.value.render())
                    .unwrap_or_default();
                pairs.insert(key, value);
            }
            KvConfig { pairs }
        })
        .collect()
}

/// Returns the fraction of configuration lines the key–value model loses
/// to key collisions (repeated patterns) across the dataset.
pub fn lost_fraction(dataset: &Dataset) -> f64 {
    let mut total = 0usize;
    let mut kept = 0usize;
    for config in &dataset.configs {
        let mut seen = std::collections::HashSet::new();
        for line in config.lines(&dataset.arenas) {
            if line.is_meta {
                continue;
            }
            total += 1;
            if seen.insert(line.pattern) {
                kept += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        1.0 - kept as f64 / total as f64
    }
}

/// Builds item-set transactions (for [`crate::apriori`] /
/// [`crate::fpgrowth`]) from the key–value model: each `key=value` pair
/// becomes an interned item.
pub fn transactions(configs: &[KvConfig]) -> (Vec<Vec<u32>>, Vec<String>) {
    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut txs = Vec::with_capacity(configs.len());
    for config in configs {
        let mut tx: Vec<u32> = config
            .pairs
            .iter()
            .map(|(k, v)| {
                let item = format!("{k}={v}");
                *ids.entry(item.clone()).or_insert_with(|| {
                    names.push(item);
                    (names.len() - 1) as u32
                })
            })
            .collect();
        tx.sort_unstable();
        txs.push(tx);
    }
    (txs, names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(texts: &[&str]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.to_string()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    #[test]
    fn repeated_patterns_collapse() {
        // Three interfaces -> one key in the KV model.
        let ds = dataset(&["vlan 1\nvlan 2\nvlan 3\nhostname X1\n"]);
        let kv = from_dataset(&ds);
        assert_eq!(kv[0].pairs.len(), 2);
        let lost = lost_fraction(&ds);
        assert!((lost - 0.5).abs() < 1e-9, "2 of 4 lines lost, got {lost}");
    }

    #[test]
    fn unique_patterns_survive() {
        let ds = dataset(&["hostname X1\nrouter bgp 65000\n"]);
        assert_eq!(lost_fraction(&ds), 0.0);
        let kv = from_dataset(&ds);
        assert_eq!(kv[0].pairs.len(), 2);
    }

    #[test]
    fn transactions_intern_consistently() {
        let ds = dataset(&["hostname X1\n", "hostname X1\n"]);
        let kv = from_dataset(&ds);
        let (txs, names) = transactions(&kv);
        assert_eq!(txs[0], txs[1]);
        assert_eq!(names.len(), 1);
        assert!(names[0].contains("hostname"));
    }

    #[test]
    fn mining_kv_rules_works_end_to_end() {
        // `router bgp 65000` implies `vlan 5` across configs.
        let ds = dataset(&[
            "router bgp 65000\nvlan 5\n",
            "router bgp 65000\nvlan 5\n",
            "router bgp 65000\nvlan 5\n",
        ]);
        let (txs, _names) = transactions(&from_dataset(&ds));
        let sets = crate::apriori::mine(&txs, 3, 2);
        let rules = crate::generate_rules(&sets, 0.9);
        assert!(!rules.is_empty());
    }
}
