//! Brute-force relational contract learning (the §5.2 ablation).
//!
//! This learner enumerates **every** candidate — each ordered pair of
//! `(pattern, parameter, transformation)` nodes and each relation — and
//! verifies each candidate by scanning all values of every configuration.
//! Semantics (support, confidence, scoring) match
//! `concord_core`'s indexed miner exactly, so on small inputs the two
//! produce identical contract sets; the difference is the asymptotics:
//! brute force is `O(nodes² · values)` and fails to terminate at
//! production scale, which is why Concord's relation-finding data
//! structures exist.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use concord_core::{Dataset, LearnParams, PatternRef, RelationKind, RelationalContract};
use concord_types::score::value_score;
use concord_types::{Transform, Value};

/// A relation-graph node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Node {
    pattern: u32,
    param: u16,
    transform: Transform,
}

/// One transformed value occurrence.
struct Occurrence {
    value: Value,
    score: f64,
}

/// Mines relational contracts by exhaustive enumeration.
///
/// Returns `None` if `deadline` elapses first — the expected outcome on
/// large datasets (the paper reports non-termination within an hour on
/// every WAN role).
pub fn mine_with_deadline(
    dataset: &Dataset,
    params: &LearnParams,
    deadline: Duration,
) -> Option<Vec<RelationalContract>> {
    let start = Instant::now();

    // Collect all occurrences per (config, node), plus per-pattern config
    // counts.
    let mut nodes: Vec<Node> = Vec::new();
    let mut node_ids: HashMap<Node, usize> = HashMap::new();
    // per config: node -> occurrences.
    let mut per_config: Vec<HashMap<usize, Vec<Occurrence>>> = Vec::new();
    let mut pattern_configs: HashMap<u32, usize> = HashMap::new();

    for config in &dataset.configs {
        let mut map: HashMap<usize, Vec<Occurrence>> = HashMap::new();
        let mut patterns_here: HashSet<u32> = HashSet::new();
        for line in config.lines(&dataset.arenas) {
            patterns_here.insert(line.pattern.0);
            for (pi, param) in line.params.iter().enumerate() {
                let base = value_score(&param.value);
                for transform in Transform::enumerate_for(&param.value) {
                    let Some(value) = transform.apply(&param.value) else {
                        continue;
                    };
                    if matches!(&value, Value::Bool(_)) || value.as_str().is_some_and(str::is_empty)
                    {
                        continue;
                    }
                    let node = Node {
                        pattern: line.pattern.0,
                        param: pi as u16,
                        transform: transform.clone(),
                    };
                    let id = *node_ids.entry(node.clone()).or_insert_with(|| {
                        nodes.push(node);
                        nodes.len() - 1
                    });
                    map.entry(id).or_default().push(Occurrence {
                        score: base * transform.score_discount(),
                        value,
                    });
                }
            }
        }
        for p in patterns_here {
            *pattern_configs.entry(p).or_insert(0) += 1;
        }
        per_config.push(map);
    }

    // Exhaustive candidate enumeration: every node pair, every relation.
    let mut out = Vec::new();
    for a_id in 0..nodes.len() {
        if start.elapsed() > deadline {
            return None;
        }
        for c_id in 0..nodes.len() {
            if a_id == c_id {
                continue;
            }
            for relation in RelationKind::all() {
                if let Some(contract) = evaluate(
                    dataset,
                    params,
                    &nodes,
                    &per_config,
                    &pattern_configs,
                    a_id,
                    c_id,
                    relation,
                ) {
                    out.push(contract);
                }
            }
        }
    }

    // Mirror the indexed miner's redundancy filter: same-injective-
    // transform equalities are subsumed by their identity twins.
    let id_pairs: HashSet<(String, u16, String, u16)> = out
        .iter()
        .filter(|c| {
            c.relation == RelationKind::Equals
                && c.antecedent.transform == Transform::Id
                && c.consequent.transform == Transform::Id
        })
        .map(|c| {
            (
                c.antecedent.pattern.clone(),
                c.antecedent.param,
                c.consequent.pattern.clone(),
                c.consequent.param,
            )
        })
        .collect();
    out.retain(|c| {
        if c.relation != RelationKind::Equals || c.antecedent.transform != c.consequent.transform {
            return true;
        }
        match c.antecedent.transform {
            Transform::Hex => false,
            Transform::Str => !id_pairs.contains(&(
                c.antecedent.pattern.clone(),
                c.antecedent.param,
                c.consequent.pattern.clone(),
                c.consequent.param,
            )),
            _ => true,
        }
    });
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn evaluate(
    dataset: &Dataset,
    params: &LearnParams,
    nodes: &[Node],
    per_config: &[HashMap<usize, Vec<Occurrence>>],
    pattern_configs: &HashMap<u32, usize>,
    a_id: usize,
    c_id: usize,
    relation: RelationKind,
) -> Option<RelationalContract> {
    let a_node = &nodes[a_id];
    let c_node = &nodes[c_id];
    let support = *pattern_configs.get(&a_node.pattern).unwrap_or(&0);
    if support < params.support
        || *pattern_configs.get(&c_node.pattern).unwrap_or(&0) < params.support
    {
        return None;
    }

    let mut valid = 0usize;
    let mut score = 0.0f64;
    let mut seen: HashSet<u64> = HashSet::new();

    for config in per_config {
        let Some(antecedents) = config.get(&a_id) else {
            continue;
        };
        let consequents = config.get(&c_id).map(Vec::as_slice).unwrap_or(&[]);
        let mut all_satisfied = true;
        for a in antecedents {
            let mut best: Option<f64> = None;
            for c in consequents {
                if holds(relation, &a.value, &c.value) {
                    let s = a.score.min(c.score);
                    best = Some(best.map_or(s, |b: f64| b.max(s)));
                }
            }
            match best {
                Some(s) => {
                    let mut h = DefaultHasher::new();
                    a.value.hash(&mut h);
                    let hash = h.finish();
                    if seen.len() < params.max_score_witnesses && seen.insert(hash) {
                        score += s;
                    }
                }
                None => all_satisfied = false,
            }
        }
        if all_satisfied && !antecedents.is_empty() {
            valid += 1;
        }
    }

    if !params.accept(valid, support) || score < params.score_threshold {
        return None;
    }
    Some(RelationalContract {
        antecedent: PatternRef {
            pattern: dataset
                .table
                .text(concord_core::PatternId(a_node.pattern))
                .to_string(),
            param: a_node.param,
            transform: a_node.transform.clone(),
        },
        consequent: PatternRef {
            pattern: dataset
                .table
                .text(concord_core::PatternId(c_node.pattern))
                .to_string(),
            param: c_node.param,
            transform: c_node.transform.clone(),
        },
        relation,
    })
}

/// The relation semantics, identical to the checker's.
fn holds(relation: RelationKind, v1: &Value, v2: &Value) -> bool {
    match relation {
        RelationKind::Equals => v1 == v2,
        RelationKind::Contains => match (v1, v2) {
            (Value::Ip(a), Value::Net(n)) => n.contains(*a),
            (Value::Net(inner), Value::Net(outer)) => outer.contains_net(inner),
            _ => false,
        },
        RelationKind::StartsWith => match (v1.as_str(), v2.as_str()) {
            (Some(s1), Some(s2)) => s1.len() >= 2 && s2.len() > s1.len() && s2.starts_with(s1),
            _ => false,
        },
        RelationKind::EndsWith => match (v1.as_str(), v2.as_str()) {
            (Some(s1), Some(s2)) => s1.len() >= 2 && s2.len() > s1.len() && s2.ends_with(s1),
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_core::learn;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn normalize(mut v: Vec<RelationalContract>) -> Vec<String> {
        let mut out: Vec<String> = v
            .drain(..)
            .map(|c| {
                format!(
                    "{:?}|{}|{}|{:?}|{}|{}|{:?}",
                    c.relation,
                    c.antecedent.pattern,
                    c.antecedent.param,
                    c.antecedent.transform,
                    c.consequent.pattern,
                    c.consequent.param,
                    c.consequent.transform
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn agrees_with_indexed_miner() {
        let texts: Vec<String> = (0..8)
            .map(|i| {
                let vlan = 251 + i;
                format!(
                    "interface Loopback0\n ip address 10.14.14.{i}\nip prefix-list lo\n seq 10 permit 10.14.14.{i}/32\nrouter bgp 65015\n vlan {vlan}\n  rd 10.14.14.117:10{vlan}\n  vni {vlan}\n"
                )
            })
            .collect();
        let ds = dataset(&texts);
        let params = LearnParams {
            minimize: false,
            enable_present: false,
            enable_ordering: false,
            enable_type: false,
            enable_sequence: false,
            enable_unique: false,
            ..LearnParams::default()
        };
        let indexed = learn(&ds, &params);
        let indexed_relational: Vec<RelationalContract> = indexed
            .contracts
            .into_iter()
            .filter_map(|c| match c {
                concord_core::Contract::Relational(r) => Some(r),
                _ => None,
            })
            .collect();
        let brute = mine_with_deadline(&ds, &params, Duration::from_secs(60)).unwrap();
        assert_eq!(normalize(brute), normalize(indexed_relational));
    }

    #[test]
    fn deadline_aborts() {
        // A dataset big enough that a zero deadline trips immediately.
        let texts: Vec<String> = (0..6).map(|i| format!("vlan {i}\nvni {i}\n")).collect();
        let ds = dataset(&texts);
        let result = mine_with_deadline(&ds, &LearnParams::default(), Duration::ZERO);
        assert!(result.is_none());
    }

    #[test]
    fn empty_dataset() {
        let ds = dataset(&[]);
        let out = mine_with_deadline(&ds, &LearnParams::default(), Duration::from_secs(5));
        assert_eq!(out, Some(Vec::new()));
    }
}
