//! Unit tests for the edge datacenter generator: every planted invariant
//! must actually hold in the generated text (the whole evaluation rests
//! on it).

use concord_types::{BigNum, IpAddress, IpNetwork, MacAddress};

use crate::{generate_role, generate_role_with, standard_roles, RoleSpec, Style};

fn e1() -> RoleSpec {
    standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .unwrap()
}

fn lines_of(text: &str) -> Vec<&str> {
    text.lines().map(str::trim).collect()
}

#[test]
fn port_channel_number_matches_mac_segment() {
    let role = generate_role(&e1(), 17);
    for (name, text) in &role.configs {
        let lines = lines_of(text);
        for (i, line) in lines.iter().enumerate() {
            let Some(n) = line.strip_prefix("interface Port-Channel") else {
                continue;
            };
            let n: u64 = n.parse().expect("channel number");
            let rt = lines[i..]
                .iter()
                .take(4)
                .find(|l| l.starts_with("route-target import "))
                .unwrap_or_else(|| panic!("{name}: no route-target after Port-Channel{n}"));
            let mac: MacAddress = rt
                .strip_prefix("route-target import ")
                .unwrap()
                .parse()
                .expect("MAC parses");
            assert_eq!(
                mac.segment(6).unwrap(),
                BigNum::from(n).to_hex(),
                "{name}: Port-Channel{n} vs {mac}"
            );
        }
    }
}

#[test]
fn every_interface_address_is_permitted() {
    // Drift disabled: the planted invariant covers the clean template
    // (the drifted IPv6 extra interface is deliberately outside it).
    let role = generate_role_with(&e1(), 18, false);
    for (name, text) in &role.configs {
        let lines = lines_of(text);
        let permits: Vec<IpNetwork> = lines
            .iter()
            .filter_map(|l| l.strip_prefix("seq "))
            .filter_map(|l| l.split_whitespace().nth(2))
            .filter_map(|p| p.parse().ok())
            .collect();
        assert!(!permits.is_empty(), "{name}: no prefix list");
        for line in &lines {
            let Some(addr) = line.strip_prefix("ip address ") else {
                continue;
            };
            let addr: IpAddress = addr.parse().expect("address parses");
            assert!(
                permits.iter().any(|p| p.contains(addr)),
                "{name}: {addr} not permitted"
            );
        }
    }
}

#[test]
fn rd_assigned_number_ends_with_vlan() {
    let role = generate_role(&e1(), 19);
    for (name, text) in &role.configs {
        let lines = lines_of(text);
        let mut current_vlan: Option<String> = None;
        for line in &lines {
            if let Some(v) = line.strip_prefix("vlan ") {
                current_vlan = Some(v.to_string());
            }
            if let Some(rd) = line.strip_prefix("rd ") {
                let assigned = rd.rsplit(':').next().expect("rd suffix");
                let vlan = current_vlan.as_deref().expect("rd under a vlan");
                assert!(
                    assigned.ends_with(vlan),
                    "{name}: rd {assigned} does not end with vlan {vlan}"
                );
            }
        }
    }
}

#[test]
fn mgmt_next_hop_inside_aggregate() {
    let role = generate_role(&e1(), 20);
    for (name, text) in &role.configs {
        let lines = lines_of(text);
        let next_hop: IpAddress = lines
            .iter()
            .find_map(|l| l.strip_prefix("ip route vrf Mgmt "))
            .and_then(|l| l.split_whitespace().nth(1))
            .expect("static route")
            .parse()
            .expect("next hop parses");
        let aggregate: IpNetwork = lines
            .iter()
            .find_map(|l| l.strip_prefix("aggregate-address "))
            .expect("aggregate line")
            .parse()
            .expect("aggregate parses");
        assert!(
            aggregate.contains(next_hop),
            "{name}: {next_hop} outside {aggregate}"
        );
    }
}

#[test]
fn every_config_vlan_is_in_metadata() {
    let role = generate_role(&e1(), 21);
    let meta = &role.metadata[0].1;
    for (name, text) in &role.configs {
        for line in lines_of(text) {
            if let Some(v) = line.strip_prefix("vlan ") {
                assert!(
                    meta.contains(&format!("vlanId: {v}")),
                    "{name}: vlan {v} missing from metadata"
                );
            }
        }
    }
}

#[test]
fn hostnames_and_loopbacks_unique() {
    let role = generate_role(&e1(), 22);
    let mut hostnames = std::collections::HashSet::new();
    let mut loopbacks = std::collections::HashSet::new();
    for (_, text) in &role.configs {
        let lines = lines_of(text);
        let hostname = lines
            .iter()
            .find_map(|l| l.strip_prefix("hostname "))
            .expect("hostname");
        assert!(hostnames.insert(hostname.to_string()), "dup {hostname}");
        let loopback = lines
            .iter()
            .find_map(|l| l.strip_prefix("ip address "))
            .expect("loopback");
        assert!(loopbacks.insert(loopback.to_string()), "dup {loopback}");
    }
}

#[test]
fn drift_flag_controls_mistypes() {
    let spec = e1();
    let with = generate_role_with(&spec, 23, true);
    let without = generate_role_with(&spec, 23, false);
    let count_bad = |role: &crate::GeneratedRole| {
        role.configs
            .iter()
            .map(|(_, t)| {
                t.lines()
                    .filter(|l| l.trim().starts_with("logging host") && l.contains('/'))
                    .count()
            })
            .sum::<usize>()
    };
    assert_eq!(count_bad(&with), 1);
    assert_eq!(count_bad(&without), 0);
    // Drift aside, the deployments are identical.
    assert_eq!(with.configs.len(), without.configs.len());
    assert_eq!(with.metadata, without.metadata);
}

#[test]
fn e2_metadata_is_json() {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E2")
        .unwrap();
    let role = generate_role(&spec, 24);
    let (name, text) = &role.metadata[0];
    assert!(name.ends_with(".json"));
    assert!(concord_formats::detect_format(text) == concord_formats::FormatCategory::Json);
}

#[test]
fn seq_numbers_step_by_ten() {
    let role = generate_role(&e1(), 25);
    for (name, text) in &role.configs {
        let seqs: Vec<u64> = lines_of(text)
            .iter()
            .filter_map(|l| l.strip_prefix("seq "))
            .filter_map(|l| l.split_whitespace().next())
            .filter_map(|n| n.parse().ok())
            .collect();
        assert!(seqs.len() >= 2, "{name}: prefix list too short");
        for (i, pair) in seqs.windows(2).enumerate() {
            assert_eq!(pair[1] - pair[0], 10, "{name}: seq step at {i}");
        }
    }
}

#[test]
fn interchange_order_varies_but_content_does_not() {
    let spec = RoleSpec {
        name: "E1".into(),
        devices: 2,
        style: Style::EdgeIndent,
        blocks: 4,
        with_metadata: false,
    };
    let mut orders = std::collections::HashSet::new();
    for seed in 0..16u64 {
        let role = generate_role(&spec, seed);
        let text = &role.configs[0].1;
        let mtu = text.find("mtu 9214").expect("mtu line");
        let descr = text.find("description link-1").expect("description line");
        orders.insert(mtu < descr);
        // Regardless of order, the same lines exist.
        assert!(text.contains("mtu 9214"));
        assert!(text.contains("description link-1"));
    }
    assert_eq!(
        orders.len(),
        2,
        "both interchange orders occur across seeds"
    );
}
