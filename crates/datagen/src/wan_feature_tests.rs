//! Tests for the role-specific WAN features and their planted invariants.

use concord_types::{IpAddress, IpNetwork};

use crate::{generate_role, standard_roles, GeneratedRole, RoleSpec};

fn role(name: &str) -> GeneratedRole {
    let spec: RoleSpec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("role {name} exists"));
    generate_role(&spec, 31)
}

#[test]
fn w1_cluster_id_equals_router_id() {
    let role = role("W1");
    for (name, text) in &role.configs {
        let router_id = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("router-id "))
            .expect("router id");
        let cluster_id = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("cluster-id "))
            .unwrap_or_else(|| panic!("{name}: no cluster id"));
        assert_eq!(router_id, cluster_id, "{name}");
    }
}

#[test]
fn w1_clients_pair_reflector_and_bfd_lines() {
    let role = role("W1");
    for (_, text) in &role.configs {
        for line in text.lines().map(str::trim) {
            if let Some(rest) = line.strip_prefix("neighbor ") {
                if let Some(client) = rest.strip_suffix(" route-reflector-client") {
                    assert!(
                        text.contains(&format!("neighbor {client} bfd")),
                        "missing bfd twin for {client}"
                    );
                }
            }
        }
    }
}

#[test]
fn w2_second_perimeter_is_symmetric() {
    let role = role("W2");
    for (name, text) in &role.configs {
        let inbound = text
            .lines()
            .map(str::trim)
            .skip_while(|l| *l != "ip access-list INET-IN")
            .find_map(|l| l.strip_prefix("10 permit ip "))
            .unwrap_or_else(|| panic!("{name}: no INET-IN rule"));
        let net = inbound.split_whitespace().next().expect("source net");
        assert!(
            text.contains(&format!("10 permit ip any {net}")),
            "{name}: INET-OUT does not mirror {net}"
        );
        // And the peers prefix list carries the same network.
        assert!(text.contains(&format!("seq 10 permit {net}")), "{name}");
    }
}

#[test]
fn w3_ldp_router_id_mirrors_bgp() {
    let role = role("W3");
    for (name, text) in &role.configs {
        let bgp: IpAddress = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("router-id "))
            .expect("bgp router id")
            .parse()
            .expect("parses");
        let ldp: IpAddress = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("mpls ldp router-id "))
            .unwrap_or_else(|| panic!("{name}: no ldp router id"))
            .parse()
            .expect("parses");
        assert_eq!(bgp, ldp, "{name}");
    }
}

#[test]
fn w4_firewall_terms_reference_defined_lists() {
    let role = role("W4");
    for (name, text) in &role.configs {
        for line in text.lines() {
            if let Some(plist) = line
                .strip_prefix("set firewall filter EDGE term ")
                .and_then(|l| l.split("from prefix-list ").nth(1))
            {
                assert!(
                    text.contains(&format!("set policy-options prefix-list {plist}")),
                    "{name}: term references undefined list {plist}"
                );
            }
        }
    }
}

#[test]
fn w5_storage_vlan_ids_recur() {
    let role = role("W5");
    for (name, text) in &role.configs {
        let mut found = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("set vlans storage-") {
                let (v, rest) = rest.split_once(' ').expect("vlan id");
                assert_eq!(rest, format!("vlan-id {v}"), "{name}");
                assert!(
                    text.contains(&format!("set interfaces ae0 unit {v} vlan-id {v}")),
                    "{name}: storage vlan {v} missing ae0 unit"
                );
                found += 1;
            }
        }
        assert!(found >= 3, "{name}: only {found} storage vlans");
    }
}

#[test]
fn w6_ospf_covers_every_interface() {
    let role = role("W6");
    for (name, text) in &role.configs {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("set interfaces xe-0/0/") {
                let iface = rest.split_whitespace().next().expect("iface index");
                assert!(
                    text.contains(&format!(
                        "set protocols ospf area 0 interface xe-0/0/{iface}"
                    )),
                    "{name}: no OSPF for xe-0/0/{iface}"
                );
            }
        }
    }
}

#[test]
fn w7_ipfix_samplers_pair_with_templates() {
    let role = role("W7");
    for (name, text) in &role.configs {
        let templates = text
            .lines()
            .filter(|l| l.starts_with("set services flow-monitoring version9 template T"))
            .count();
        let samplers = text
            .lines()
            .filter(|l| l.starts_with("set forwarding-options sampling instance S"))
            .count();
        assert_eq!(templates, 2, "{name}");
        assert_eq!(samplers, 2, "{name}");
        // Every flow server is a valid address on a constant port.
        for line in text.lines() {
            if let Some(rest) = line.split("flow-server ").nth(1) {
                let (addr, port) = rest.split_once(" port ").expect("port clause");
                addr.parse::<IpAddress>().expect("flow server parses");
                assert_eq!(port, "2055", "{name}");
            }
        }
    }
}

#[test]
fn private_space_stays_inside_internal_for_all_wan_roles() {
    let internal: Vec<IpNetwork> = vec![
        "10.0.0.0/8".parse().unwrap(),
        "172.16.0.0/12".parse().unwrap(),
        "192.168.0.0/16".parse().unwrap(),
    ];
    for name in ["W1", "W2", "W3"] {
        let role = role(name);
        for (device, text) in &role.configs {
            let mut in_private = false;
            for line in text.lines().map(str::trim) {
                if line.starts_with("ip prefix-list PRIVATE") {
                    in_private = true;
                    continue;
                }
                if in_private {
                    if let Some(rest) = line.strip_prefix("seq ") {
                        if let Some(net) = rest
                            .split_whitespace()
                            .nth(2)
                            .and_then(|n| n.parse::<IpNetwork>().ok())
                        {
                            assert!(
                                internal.iter().any(|i| i.contains_net(&net)),
                                "{device}: {net} not subsumed"
                            );
                        }
                    } else {
                        in_private = false;
                    }
                }
            }
        }
    }
}
