//! Wide-area network configuration generators.
//!
//! WAN roles come in two syntactic families:
//!
//! - **indent** roles (W1–W3) use CLI blocks like the edge, with
//!   role-specific features (perimeter ACLs, prefix-list subsumption,
//!   paired v4/v6 BGP groups, VLAN/VXLAN cliques),
//! - **flat** roles (W4–W8) use `set`-style lines that carry their full
//!   context inline, so context embedding cannot add information
//!   (reproducing the Figure 7 observation for W4–W8).
//!
//! Planted invariants: inbound/outbound perimeter ACLs have symmetric
//! source/destination filters, internal address space subsumes the bogon
//! (RFC 1918) space, IPv4 BGP group policies are mirrored for IPv6,
//! interface addresses are unique, and every role carries globally
//! constant "magic" policy lines that only constant learning can cover.
//!
//! Like the edge generator, WAN devices carry seed-dependent
//! interchangeable line order, a rare mistyped line in large roles, and a
//! heavier dose of unrelated per-device policies (static routes, SRLGs)
//! that stay uncovered — the paper reports substantially lower coverage
//! on WAN roles than on edge roles.

use concord_rng::rngs::StdRng;
use concord_rng::Rng;

use crate::{GeneratedRole, RoleSpec};

pub(crate) fn generate_indent(spec: &RoleSpec, rng: &mut StdRng, drift: bool) -> GeneratedRole {
    let site = rng.gen_range(100..120u32);
    let vlan_base = 400 + rng.gen_range(0..10u32) * 10;
    let iface_order = rng.gen_range(0..2u32);
    let configs = (0..spec.devices)
        .map(|d| {
            (
                format!("{}-r{d}", spec.name),
                indent_device(spec, site, d as u32, vlan_base, iface_order, drift),
            )
        })
        .collect();
    GeneratedRole {
        name: spec.name.clone(),
        configs,
        metadata: Vec::new(),
    }
}

fn indent_device(
    spec: &RoleSpec,
    site: u32,
    device: u32,
    vlan_base: u32,
    iface_order: u32,
    drift: bool,
) -> String {
    let mut out = String::new();
    let dev = 10 + device;
    out.push_str(&format!("hostname {}R{}\n!\n", spec.name, 5000 + device));

    // Interfaces with unique addresses; description/mtu order is
    // interchangeable and fixed per deployment.
    for i in 1..=(spec.blocks as u32) {
        let addr = format!("10.{site}.{dev}.{i}");
        out.push_str(&format!("interface Ethernet{i}\n"));
        let pair = [
            format!("   description core-{i}\n"),
            "   mtu 9100\n".to_string(),
        ];
        out.push_str(&pair[iface_order as usize % 2]);
        out.push_str(&pair[(iface_order as usize + 1) % 2]);
        out.push_str(&format!(
            "   ip address {addr}\n   ip access-group EDGE-IN in\n   ip access-group EDGE-OUT out\n!\n"
        ));
    }

    // Symmetric perimeter ACLs: the inbound source net equals the
    // outbound destination net.
    let edge_net = format!("172.{}.0.0/16", 16 + (device % 8));
    out.push_str(&format!(
        "ip access-list EDGE-IN\n   10 permit ip {edge_net} any\n   20 deny ip any any\n!\n"
    ));
    out.push_str(&format!(
        "ip access-list EDGE-OUT\n   10 permit ip any {edge_net}\n   20 deny ip any any\n!\n"
    ));

    // Internal space subsumes the RFC 1918 bogons.
    out.push_str(
        "ip prefix-list INTERNAL\n   seq 10 permit 10.0.0.0/8\n   seq 20 permit 172.16.0.0/12\n   seq 30 permit 192.168.0.0/16\n!\n",
    );
    out.push_str(&format!(
        "ip prefix-list PRIVATE-{site}\n   seq 10 permit 10.{site}.0.0/16\n   seq 20 permit 172.{}.0.0/16\n!\n",
        16 + (device % 8)
    ));

    // VLAN clique: vlan id recurs across four patterns (Figure 5).
    for k in 0..3u32 {
        let v = vlan_base + k;
        out.push_str(&format!(
            "interface Vlan{v}\n   vxlan vlan {v} vni {v}\n!\nip access-list list-{v}\n   10 permit vlan {v}\n!\n"
        ));
    }

    // Paired v4/v6 BGP groups.
    out.push_str(&format!("router bgp 64{site}\n"));
    out.push_str(&format!("   router-id 10.{site}.{dev}.255\n"));
    for g in 0..2u32 {
        out.push_str(&format!(
            "   neighbor PEERS{g} activate ipv4\n   neighbor PEERS{g} activate ipv6\n"
        ));
    }
    out.push_str("!\n");

    // Logging targets with one mistyped line in a large-enough role.
    for k in 1..=3u32 {
        let oct = (device * 37 + k * 53) % 199 + 1;
        if drift && device == 0 && k == 1 && spec.devices * 3 >= 30 {
            out.push_str(&format!("logging host 10.200.{site}.{oct}/32\n"));
        } else {
            out.push_str(&format!("logging host 10.200.{site}.{oct}\n"));
        }
    }
    out.push_str("!\n");

    // Globally constant policy lines ("magic constants").
    out.push_str("route-map SET-COMMUNITY permit 10\n   set community 64000:777\n!\n");
    out.push_str("ntp server 10.200.0.1\n!\n");

    // Role-specific features (the paper's roles differ in function, not
    // just size).
    match spec.name.as_str() {
        // W1: route reflector — cluster id equals the router id, each
        // client neighbor recurs in a bfd line (a Figure 5 p4/p5 pair).
        "W1" => {
            out.push_str(&format!(
                "router bgp 64{site} cluster\n   cluster-id 10.{site}.{dev}.255\n"
            ));
            for k in 0..3u32 {
                let client = vlan_base + k;
                out.push_str(&format!(
                    "   neighbor Client-{client} route-reflector-client\n   neighbor Client-{client} bfd\n"
                ));
            }
            out.push_str("!\n");
        }
        // W2: peering edge — a second symmetric perimeter ACL pair and a
        // peers prefix list subsuming each session address.
        "W2" => {
            let peer_net = format!("100.{}.0.0/16", 64 + (device % 4));
            out.push_str(&format!(
                "ip access-list INET-IN\n   10 permit ip {peer_net} any\n   20 deny ip any any\n!\n"
            ));
            out.push_str(&format!(
                "ip access-list INET-OUT\n   10 permit ip any {peer_net}\n   20 deny ip any any\n!\n"
            ));
            out.push_str(&format!(
                "ip prefix-list PEERS\n   seq 10 permit {peer_net}\n!\n"
            ));
        }
        // W3: core — the LDP router id mirrors the BGP router id, and
        // tunnels pair source/id.
        "W3" => {
            out.push_str(&format!("mpls ldp router-id 10.{site}.{dev}.255\n!\n"));
            for k in 1..=2u32 {
                out.push_str(&format!(
                    "interface Tunnel{k}\n   tunnel source Ethernet{k}\n   tunnel id {k}\n!\n"
                ));
            }
        }
        _ => {}
    }

    // Unrelated per-device policies: documentation-space static routes
    // and SRLGs, alternating order, arbitrary repeating values — these
    // lines stay uncovered.
    for j in 0..(spec.blocks as u32).max(2) {
        let r1 = (device * 7 + j * 3) % 23;
        let hop = (device * 3 + j) % 40 + 1;
        let srlg = (device * 13 + j * 5) % 29 + 3;
        let route = format!("ip route 198.51.{r1}.0/24 192.0.2.{hop}\n");
        let srlg_line = format!("srlg group {srlg} cost {}\n", (device * 17 + j) % 31 + 2);
        if (device + j).is_multiple_of(2) {
            out.push_str(&route);
            out.push_str(&srlg_line);
        } else {
            out.push_str(&srlg_line);
            out.push_str(&route);
        }
    }
    out.push_str("!\n");
    out
}

pub(crate) fn generate_flat(spec: &RoleSpec, rng: &mut StdRng, drift: bool) -> GeneratedRole {
    let site = rng.gen_range(60..90u32);
    let line_order = rng.gen_range(0..2u32);
    let configs = (0..spec.devices)
        .map(|d| {
            (
                format!("{}-r{d}", spec.name),
                flat_device(spec, site, d as u32, line_order, drift),
            )
        })
        .collect();
    GeneratedRole {
        name: spec.name.clone(),
        configs,
        metadata: Vec::new(),
    }
}

fn flat_device(spec: &RoleSpec, site: u32, device: u32, line_order: u32, drift: bool) -> String {
    let mut out = String::new();
    let dev = 10 + device;
    out.push_str(&format!(
        "set system host-name {}R{}\n",
        spec.name,
        7000 + device
    ));
    out.push_str(&format!(
        "set interfaces lo0 unit 0 family inet address 10.{site}.{dev}.255/32\n"
    ));

    // Interfaces: the unit number equals the VLAN id (an equality
    // invariant the flat syntax still exposes). The vlan-id/address line
    // order is interchangeable and fixed per deployment.
    for i in 0..(spec.blocks as u32) {
        let vlan = 300 + i;
        let addr = format!("10.{site}.{dev}.{}", 2 * i + 1);
        let pair = [
            format!("set interfaces xe-0/0/{i} unit {vlan} vlan-id {vlan}\n"),
            format!("set interfaces xe-0/0/{i} unit {vlan} family inet address {addr}/31\n"),
        ];
        out.push_str(&pair[line_order as usize % 2]);
        out.push_str(&pair[(line_order as usize + 1) % 2]);
        out.push_str(&format!(
            "set protocols bgp group CORE neighbor 10.{site}.{dev}.{}\n",
            2 * i + 2
        ));
    }

    // Paired v4/v6 policies per group.
    for g in ["TRANSIT", "PEERING"] {
        out.push_str(&format!(
            "set protocols bgp group {g} family inet unicast policy IMPORT-{g}\n"
        ));
        out.push_str(&format!(
            "set protocols bgp group {g} family inet6 unicast policy IMPORT-{g}\n"
        ));
    }

    // Internal space subsumes bogons (flat form).
    out.push_str("set policy-options prefix-list INTERNAL 10.0.0.0/8\n");
    out.push_str("set policy-options prefix-list INTERNAL 172.16.0.0/12\n");
    out.push_str(&format!(
        "set policy-options prefix-list PRIVATE 10.{site}.0.0/16\n"
    ));

    // Syslog targets with one mistyped line in a large-enough role.
    for k in 1..=2u32 {
        let oct = (device * 37 + k * 53) % 199 + 1;
        if drift && device == 0 && k == 1 && spec.devices * 2 >= 30 {
            out.push_str(&format!(
                "set system syslog host 10.200.{site}.{oct}/32 any\n"
            ));
        } else {
            out.push_str(&format!("set system syslog host 10.200.{site}.{oct} any\n"));
        }
    }

    // Global magic constants; one device in a large role adds an IPv6
    // target where every other use is IPv4 (type drift).
    out.push_str("set policy-options community INTERNAL members 64000:100\n");
    out.push_str("set system ntp server 10.200.0.1\n");
    if drift && device == 1 && spec.devices >= 15 {
        out.push_str("set system ntp server 2001:db8::123\n");
    }

    // Role-specific features.
    match spec.name.as_str() {
        // W4: internet edge — firewall terms referencing the shared
        // prefix lists.
        "W4" => {
            for (k, plist) in ["INTERNAL", "PRIVATE"].iter().enumerate() {
                out.push_str(&format!(
                    "set firewall filter EDGE term {} from prefix-list {plist}\n",
                    k + 1
                ));
            }
            out.push_str("set firewall filter EDGE term 3 then discard\n");
        }
        // W5: aggregation — storage VLANs recur across three patterns.
        "W5" => {
            for k in 0..3u32 {
                let v = 800 + k;
                out.push_str(&format!("set vlans storage-{v} vlan-id {v}\n"));
                out.push_str(&format!("set interfaces ae0 unit {v} vlan-id {v}\n"));
            }
        }
        // W6: core — OSPF enabled on every configured interface.
        "W6" => {
            for i in 0..(spec.blocks as u32) {
                out.push_str(&format!("set protocols ospf area 0 interface xe-0/0/{i}\n"));
            }
        }
        // W7: monitoring — IPFIX templates and samplers (the paper's LLM
        // prompt example involves exactly this feature family).
        "W7" => {
            for k in 1..=2u32 {
                out.push_str(&format!(
                    "set services flow-monitoring version9 template T{k}\n"
                ));
                out.push_str(&format!(
                    "set forwarding-options sampling instance S{k} family inet output flow-server 10.{site}.{dev}.25{k} port 2055\n"
                ));
            }
        }
        _ => {}
    }
    out.push_str(&format!(
        "set routing-options router-id 10.{site}.{dev}.255\n"
    ));

    // Unrelated per-device static routes: uncovered filler, heavier on
    // WAN roles, order alternating between devices.
    for j in 0..(spec.blocks as u32 / 2).max(2) {
        let r1 = (device * 7 + j * 3) % 23;
        let hop = (device * 3 + j) % 40 + 1;
        let a =
            format!("set routing-options static route 198.51.{r1}.0/24 next-hop 192.0.2.{hop}\n");
        let b = format!(
            "set routing-options static route 203.0.113.{}/32 discard\n",
            (device * 5 + j * 7) % 50 + 1
        );
        if (device + j).is_multiple_of(2) {
            out.push_str(&a);
            out.push_str(&b);
        } else {
            out.push_str(&b);
            out.push_str(&a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_rng::SeedableRng;

    fn spec(style: crate::Style, devices: usize) -> RoleSpec {
        RoleSpec {
            name: "T".into(),
            devices,
            style,
            blocks: 5,
            with_metadata: false,
        }
    }

    #[test]
    fn indent_devices_have_symmetric_acls() {
        let mut rng = StdRng::seed_from_u64(3);
        let role = generate_indent(&spec(crate::Style::WanIndent, 4), &mut rng, true);
        for (_, text) in &role.configs {
            let in_net = text
                .lines()
                .find(|l| l.contains("permit ip 172."))
                .and_then(|l| l.split_whitespace().nth(3).map(str::to_string))
                .expect("inbound filter");
            assert!(
                text.contains(&format!("permit ip any {in_net}")),
                "outbound mirror missing for {in_net}"
            );
        }
    }

    #[test]
    fn flat_devices_pair_v4_v6_policies() {
        let mut rng = StdRng::seed_from_u64(3);
        let role = generate_flat(&spec(crate::Style::WanFlat, 4), &mut rng, true);
        for (_, text) in &role.configs {
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix("set protocols bgp group ") {
                    if rest.contains("family inet unicast") {
                        let v6 = line.replace("family inet unicast", "family inet6 unicast");
                        assert!(text.contains(&v6), "missing v6 twin of {line}");
                    }
                }
            }
        }
    }

    #[test]
    fn flat_devices_have_no_indentation() {
        let mut rng = StdRng::seed_from_u64(3);
        let role = generate_flat(&spec(crate::Style::WanFlat, 4), &mut rng, true);
        for (_, text) in &role.configs {
            assert!(text.lines().all(|l| !l.starts_with(' ')));
        }
    }

    #[test]
    fn internal_subsumes_private_space() {
        use concord_types::IpNetwork;
        let mut rng = StdRng::seed_from_u64(3);
        let role = generate_indent(&spec(crate::Style::WanIndent, 4), &mut rng, true);
        let internal: Vec<IpNetwork> = vec![
            "10.0.0.0/8".parse().unwrap(),
            "172.16.0.0/12".parse().unwrap(),
            "192.168.0.0/16".parse().unwrap(),
        ];
        for (_, text) in &role.configs {
            let mut in_private = false;
            for line in text.lines() {
                if line.contains("prefix-list PRIVATE") {
                    in_private = true;
                    continue;
                }
                if in_private {
                    if let Some(net) = line.trim().strip_prefix("seq ") {
                        let net = net.split_whitespace().nth(2);
                        if let Some(net) = net.and_then(|n| n.parse::<IpNetwork>().ok()) {
                            assert!(
                                internal.iter().any(|i| i.contains_net(&net)),
                                "{net} not subsumed"
                            );
                        }
                    } else if line.starts_with('!') {
                        in_private = false;
                    }
                }
            }
        }
    }

    #[test]
    fn large_roles_carry_one_mistyped_line() {
        let mut rng = StdRng::seed_from_u64(3);
        let role = generate_indent(&spec(crate::Style::WanIndent, 12), &mut rng, true);
        let mistyped: usize = role
            .configs
            .iter()
            .map(|(_, t)| t.matches("logging host 10.200.").count())
            .sum();
        assert!(mistyped > 0);
        let bad: usize = role
            .configs
            .iter()
            .map(|(_, t)| {
                t.lines()
                    .filter(|l| l.starts_with("logging host") && l.contains("/32"))
                    .count()
            })
            .sum();
        assert_eq!(bad, 1, "exactly one mistyped logging line");
    }

    #[test]
    fn small_roles_carry_no_mistype() {
        let mut rng = StdRng::seed_from_u64(3);
        let role = generate_indent(&spec(crate::Style::WanIndent, 4), &mut rng, true);
        for (_, text) in &role.configs {
            assert!(!text.contains("logging host 10.200.") || !text.contains(".1/32"));
        }
    }

    #[test]
    fn interchangeable_order_varies_by_seed() {
        let spec4 = spec(crate::Style::WanFlat, 2);
        let mut seen_orders = std::collections::HashSet::new();
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let role = generate_flat(&spec4, &mut rng, true);
            let text = &role.configs[0].1;
            let vlan_pos = text.find("unit 300 vlan-id").unwrap();
            let addr_pos = text.find("unit 300 family inet address").unwrap();
            seen_orders.insert(vlan_pos < addr_pos);
        }
        assert_eq!(seen_orders.len(), 2, "both orders occur across seeds");
    }
}
