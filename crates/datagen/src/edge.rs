//! Mobile edge datacenter configuration generator (Figure 1 style).
//!
//! Every device plants the paper's headline invariants:
//!
//! 1. the port-channel number in hex equals the last segment of its EVPN
//!    route-target MAC (Figure 1 contract 1),
//! 2. every interface IP address is permitted by a prefix-list entry
//!    (contract 2),
//! 3. the route distinguisher's assigned number ends with the VLAN id
//!    (contract 3),
//! 4. `evpn ether-segment` is immediately followed by its route-target
//!    (contract 4),
//! 5. structural blocks are present in every device (contracts 5–7),
//! 6. prefix-list sequence numbers step by 10,
//! 7. hostnames and loopback addresses are globally unique,
//! 8. every management static route's next hop lies inside the VRF
//!    aggregate (the §5.5 "missing route aggregation" incident),
//! 9. every configured VLAN id appears in the role metadata (the §5.5
//!    "MAC broadcast loop" incident), and
//! 10. each VLAN id recurs across several patterns (`vlan`, `rd`, `vni`,
//!     `interface Vlan`, `vxlan`, `name`) — the mutually-equal cliques
//!     that contract minimization collapses (Figure 5).
//!
//! Realism knobs that shape the evaluation like the paper's:
//!
//! - the order of interchangeable lines inside an interface block is
//!   **seed-dependent** (stable within a dataset, varying across
//!   deployments), so learned ordering contracts are exactly the
//!   fixed-format artifacts whose precision the paper found low,
//! - one device carries a **mistyped** logging target (a `[pfx4]` where
//!   `[ip4]` belongs) when the role is large enough for the 96%
//!   confidence bar to isolate it — the raw material of type contracts,
//! - each device carries a few **unrelated policy lines** (static routes
//!   to documentation prefixes, SRLG definitions) that no contract can
//!   cover, mirroring the paper's analysis of uncovered lines.

use concord_rng::rngs::StdRng;
use concord_rng::Rng;

use crate::{GeneratedRole, RoleSpec};

pub(crate) fn generate(spec: &RoleSpec, rng: &mut StdRng, drift: bool) -> GeneratedRole {
    // Role-wide VLAN plan shared by configs and metadata.
    let vlan_base = 200 + rng.gen_range(0..20u32) * 10;
    let vlans: Vec<u32> = (0..spec.blocks.max(2) as u32)
        .map(|i| vlan_base + i)
        .collect();

    let site = rng.gen_range(10..30u32);
    // Interchangeable-order variant: consistent per deployment.
    let iface_order = rng.gen_range(0..3u32);
    let mut configs = Vec::with_capacity(spec.devices);
    for d in 0..spec.devices {
        let noise_ntp = rng.gen_bool(0.15);
        configs.push((
            format!("{}-dev{d}", spec.name),
            device_config(spec, site, d as u32, &vlans, iface_order, noise_ntp, drift),
        ));
    }

    let metadata = if spec.with_metadata {
        // Alternate metadata formats across roles so both the YAML and
        // JSON embedders are exercised by the full pipeline.
        if spec.name.ends_with('2') {
            let entries: Vec<String> = vlans
                .iter()
                .map(|v| format!("{{ \"vrfName\": \"nf-{v}\", \"vlanId\": {v} }}"))
                .collect();
            let meta = format!(
                "{{\n  \"nfInfos\": [\n    {}\n  ],\n  \"mgmt\": {{ \"aggregatePrefixLen\": 24 }}\n}}\n",
                entries.join(",\n    ")
            );
            vec![(format!("{}-meta.json", spec.name), meta)]
        } else {
            let mut meta = String::from("nfInfos:\n");
            for v in &vlans {
                meta.push_str(&format!("  - vrfName: \"nf-{v}\"\n    vlanId: {v}\n"));
            }
            meta.push_str("mgmt:\n  aggregatePrefixLen: 24\n");
            vec![(format!("{}-meta.yaml", spec.name), meta)]
        }
    } else {
        Vec::new()
    };

    GeneratedRole {
        name: spec.name.clone(),
        configs,
        metadata,
    }
}

fn device_config(
    spec: &RoleSpec,
    site: u32,
    device: u32,
    vlans: &[u32],
    iface_order: u32,
    noise_ntp: bool,
    drift: bool,
) -> String {
    let mut out = String::new();
    let dev_octet = 10 + device; // Distinct per device within the role.
    let loopback = format!("10.{site}.{dev_octet}.34");
    let hostname_id = 1000 + device;

    out.push_str(&format!("hostname {}{hostname_id}\n!\n", spec.name));
    out.push_str(&format!(
        "interface Loopback0\n   ip address {loopback}\n!\n"
    ));

    // Port channels with the hex/MAC-segment invariant. Numbers stay
    // below 256 so the hex fits one MAC segment.
    let channel_count = 2 + (spec.blocks / 3);
    let mut channels = Vec::new();
    for c in 0..channel_count {
        let n: u32 = 100 + (device * 7 + c as u32 * 13) % 150;
        if channels.contains(&n) {
            continue;
        }
        channels.push(n);
        out.push_str(&format!(
            "interface Port-Channel{n}\n   evpn ether-segment\n      route-target import 00:00:0c:d3:00:{n:02x}\n!\n"
        ));
    }

    // Ethernet interfaces; each address is later permitted by the prefix
    // list. The inner line order is interchangeable and fixed per
    // deployment (`iface_order`).
    let mut iface_addrs = vec![loopback.clone()];
    let eth_count = 2 + spec.blocks / 2;
    for e in 1..=eth_count {
        let addr = format!("10.{site}.{dev_octet}.{}", 100 + e);
        out.push_str(&format!("interface Ethernet{e}\n"));
        let lines = [
            format!("   description link-{e}\n"),
            "   mtu 9214\n".to_string(),
            format!("   ip address {addr}\n"),
        ];
        for k in 0..3 {
            out.push_str(&lines[(k + iface_order as usize) % 3]);
        }
        out.push_str("!\n");
        iface_addrs.push(addr);
    }

    // Prefix list permitting every interface address, sequenced by 10.
    out.push_str("ip prefix-list loopback\n");
    for (i, addr) in iface_addrs.iter().enumerate() {
        out.push_str(&format!("   seq {} permit {addr}/32\n", 10 * (i + 1)));
    }
    out.push_str(&format!(
        "   seq {} permit 0.0.0.0/0\n!\n",
        10 * (iface_addrs.len() + 1)
    ));

    // Management VRF: static route whose next hop lies inside the
    // aggregate (§5.5 example 1).
    let next_hop = format!("10.{site}.{dev_octet}.1");
    out.push_str(&format!(
        "ip route vrf Mgmt 10.250.0.0/16 {next_hop}\nvrf Mgmt\n   aggregate-address 10.{site}.{dev_octet}.0/24\n!\n"
    ));

    // Logging targets; one device in a large-enough role carries a
    // mistyped prefix instead of an address (the type-contract seed).
    for k in 1..=3u32 {
        let oct = (device * 37 + k * 53) % 199 + 1;
        if drift && device == 0 && k == 1 && spec.devices * 3 >= 30 {
            out.push_str(&format!("logging host 10.250.{site}.{oct}/32\n"));
        } else {
            out.push_str(&format!("logging host 10.250.{site}.{oct}\n"));
        }
    }
    out.push_str("!\n");

    // A second kind of type drift: one device declares an extra IPv6
    // management target where every other use is IPv4.
    if drift && device == 1 && spec.devices * 3 >= 30 {
        out.push_str(&format!(
            "interface Ethernet99\n   ip address fe80::{dev_octet:x}\n!\n"
        ));
    }

    // VLAN definitions and EVPN plumbing: the same id appears across six
    // patterns (the minimization clique of Figure 5).
    for v in vlans {
        out.push_str(&format!("vlan {v}\n   name nf-{v}\n!\n"));
        out.push_str(&format!(
            "interface Vlan{v}\n   vxlan vlan {v} vni {v}\n!\n"
        ));
        // Figure 5's p4/p5/p6 shapes: the id recurs in neighbor and ACL
        // names, enlarging the mutually-equal clique minimization must
        // collapse.
        out.push_str(&format!(
            "neighbor Neighbor-{v} bfd\nip access-list list-{v}\n   10 permit vlan {v}\n!\n"
        ));
    }

    // BGP block with VLAN/RD/VNI invariants and the metadata link.
    out.push_str(&format!("router bgp 650{site}\n"));
    out.push_str("   maximum-paths 64 ecmp 64\n");
    out.push_str(&format!("   router-id {loopback}\n"));
    out.push_str("   redistribute connected\n");
    out.push_str(&format!("   neighbor 10.{site}.255.1 peer-group OPT-A\n"));
    for v in vlans {
        out.push_str(&format!(
            "   vlan {v}\n      rd 10.{site}.{dev_octet}.250:10{v}\n      vni {v}\n"
        ));
    }
    out.push_str("!\n");

    // Unrelated per-device policies: static routes to documentation space
    // and an SRLG definition. Values are arbitrary, repeat across
    // devices, and relate to nothing — these lines stay uncovered
    // (mirroring the paper's uncovered-line analysis). The two routes
    // swap order between devices so no ordering contract forms.
    let r1 = (device * 7) % 23;
    let r2 = (device * 11 + 5) % 23;
    let routes = [
        format!(
            "ip route 198.51.{r1}.0/24 192.0.2.{}\n",
            (device * 3) % 40 + 1
        ),
        format!(
            "ip route 198.51.{r2}.0/24 192.0.2.{}\n",
            (device * 5) % 40 + 1
        ),
    ];
    if device.is_multiple_of(2) {
        out.push_str(&routes[0]);
        out.push_str(&routes[1]);
    } else {
        out.push_str(&routes[1]);
        out.push_str(&routes[0]);
    }
    out.push_str(&format!(
        "srlg group {} cost {}\n!\n",
        (device * 13) % 29 + 3,
        (device * 17) % 31 + 2
    ));

    // Occasional optional block: noise the confidence bar must tolerate.
    if noise_ntp {
        out.push_str("ntp server 10.250.250.8\n!\n");
    }

    out
}
