#![warn(missing_docs)]

//! Synthetic network-configuration dataset generator.
//!
//! The paper evaluates Concord on two proprietary production datasets:
//! mobile edge datacenters (roles E1–E2) and a large cloud WAN (roles
//! W1–W8). Those configurations are not publicly available, so this crate
//! generates seeded synthetic equivalents that exercise the same code
//! paths (see DESIGN.md §2 for the substitution argument):
//!
//! - **edge roles** use Arista-style indentation hierarchy with the exact
//!   invariant structure of the paper's Figure 1 (loopback ↔ prefix list,
//!   port-channel number ↔ EVPN MAC segment, VLAN ↔ route distinguisher,
//!   VLAN ↔ metadata entries, static route ↔ aggregate),
//! - **WAN roles** mix indentation-based and flat "set"-style syntaxes
//!   (flat roles gain nothing from context embedding, reproducing the
//!   Figure 7 observation), with role-specific features: symmetric
//!   perimeter ACLs, internal/bogon prefix-list subsumption, paired
//!   IPv4/IPv6 BGP policies, and globally shared "magic constant" lines,
//! - deterministic **fault injection** reproduces the §5.5 incident
//!   classes for the utility experiments.
//!
//! Every generator is deterministic in its seed, so experiments are
//! reproducible.

mod edge;
#[cfg(test)]
mod edge_tests;
pub mod faults;
mod wan;
#[cfg(test)]
mod wan_feature_tests;

use concord_rng::rngs::StdRng;
use concord_rng::SeedableRng;

/// The syntactic style of a generated role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Arista-style indentation hierarchy (edge datacenters).
    EdgeIndent,
    /// Vendor CLI with indentation blocks (some WAN roles).
    WanIndent,
    /// Flat `set`-style syntax carrying full context per line.
    WanFlat,
}

/// The specification of one device role.
#[derive(Debug, Clone)]
pub struct RoleSpec {
    /// Role name (e.g. `E1`, `W4`).
    pub name: String,
    /// Number of devices (configuration files).
    pub devices: usize,
    /// Syntax style.
    pub style: Style,
    /// Relative per-device size knob (number of repeated blocks).
    pub blocks: usize,
    /// Whether to also emit a metadata file for the role (§3.7).
    pub with_metadata: bool,
}

/// A generated role: named configurations plus optional metadata files.
#[derive(Debug, Clone)]
pub struct GeneratedRole {
    /// The role name.
    pub name: String,
    /// `(device name, configuration text)` pairs.
    pub configs: Vec<(String, String)>,
    /// `(file name, text)` metadata files.
    pub metadata: Vec<(String, String)>,
}

impl GeneratedRole {
    /// Total number of configuration lines across devices.
    pub fn total_lines(&self) -> usize {
        self.configs
            .iter()
            .map(|(_, text)| text.lines().filter(|l| !l.trim().is_empty()).count())
            .sum()
    }
}

/// Returns the ten standard roles (E1, E2, W1–W8) with sizes shaped like
/// Table 3 of the paper, multiplied by `scale` (1.0 is laptop-friendly;
/// the paper's datasets are 1–3 orders of magnitude larger).
pub fn standard_roles(scale: f64) -> Vec<RoleSpec> {
    let n = |base: usize| ((base as f64 * scale).round() as usize).max(2);
    vec![
        RoleSpec {
            name: "E1".into(),
            devices: n(24),
            style: Style::EdgeIndent,
            blocks: 6,
            with_metadata: true,
        },
        RoleSpec {
            name: "E2".into(),
            devices: n(12),
            style: Style::EdgeIndent,
            blocks: 3,
            with_metadata: true,
        },
        RoleSpec {
            name: "W1".into(),
            devices: n(20),
            style: Style::WanIndent,
            blocks: 8,
            with_metadata: false,
        },
        RoleSpec {
            name: "W2".into(),
            devices: n(30),
            style: Style::WanIndent,
            blocks: 14,
            with_metadata: false,
        },
        RoleSpec {
            name: "W3".into(),
            devices: n(26),
            style: Style::WanIndent,
            blocks: 10,
            with_metadata: false,
        },
        RoleSpec {
            name: "W4".into(),
            devices: n(60),
            style: Style::WanFlat,
            blocks: 18,
            with_metadata: false,
        },
        RoleSpec {
            name: "W5".into(),
            devices: n(50),
            style: Style::WanFlat,
            blocks: 12,
            with_metadata: false,
        },
        RoleSpec {
            name: "W6".into(),
            devices: n(64),
            style: Style::WanFlat,
            blocks: 16,
            with_metadata: false,
        },
        RoleSpec {
            name: "W7".into(),
            devices: n(28),
            style: Style::WanFlat,
            blocks: 8,
            with_metadata: false,
        },
        RoleSpec {
            name: "W8".into(),
            devices: n(10),
            style: Style::WanFlat,
            blocks: 5,
            with_metadata: false,
        },
    ]
}

/// Generates one role deterministically from `seed` (with the planted
/// anomaly drift — the occasional mistyped line).
pub fn generate_role(spec: &RoleSpec, seed: u64) -> GeneratedRole {
    generate_role_with(spec, seed, true)
}

/// Generates one role, controlling whether anomaly drift (mistyped
/// lines) is planted. Clean datasets (`drift = false`) serve as the
/// ground-truth oracle for precision experiments.
pub fn generate_role_with(spec: &RoleSpec, seed: u64, drift: bool) -> GeneratedRole {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&spec.name));
    match spec.style {
        Style::EdgeIndent => edge::generate(spec, &mut rng, drift),
        Style::WanIndent => wan::generate_indent(spec, &mut rng, drift),
        Style::WanFlat => wan::generate_flat(spec, &mut rng, drift),
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs (unlike `DefaultHasher` between Rust
    // versions this is fixed by construction).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_roles_cover_table_3() {
        let roles = standard_roles(1.0);
        let names: Vec<&str> = roles.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["E1", "E2", "W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8"]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &standard_roles(0.5)[0];
        let a = generate_role(spec, 42);
        let b = generate_role(spec, 42);
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.metadata, b.metadata);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = &standard_roles(0.5)[0];
        let a = generate_role(spec, 1);
        let b = generate_role(spec, 2);
        assert_ne!(a.configs, b.configs);
    }

    #[test]
    fn scale_changes_device_count() {
        let small = standard_roles(0.25);
        let large = standard_roles(1.0);
        assert!(small[0].devices < large[0].devices);
        // Never below the floor of 2 devices.
        for role in standard_roles(0.01) {
            assert!(role.devices >= 2);
        }
    }

    #[test]
    fn every_role_generates_content() {
        for spec in standard_roles(0.2) {
            let role = generate_role(&spec, 7);
            assert_eq!(role.configs.len(), spec.devices, "{}", spec.name);
            assert!(role.total_lines() > spec.devices * 10, "{}", spec.name);
            if spec.with_metadata {
                assert!(!role.metadata.is_empty(), "{}", spec.name);
            }
        }
    }

    #[test]
    fn device_names_are_unique() {
        let spec = &standard_roles(1.0)[3];
        let role = generate_role(spec, 9);
        let mut names: Vec<&String> = role.configs.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), role.configs.len());
    }
}
