//! Fault injection: the misconfiguration classes of Table 2 and the
//! §5.5 incident replays.
//!
//! Each fault is a deterministic text-level edit of a generated
//! configuration, returning what changed so tests and experiments can
//! assert that Concord localizes the right line.

/// A class of injected misconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Delete the line at a matching position (Present/Relational bugs;
    /// §5.5 example 1 deletes the `aggregate-address` line).
    DeleteLineContaining(&'static str),
    /// Insert a foreign line after the first line containing the marker
    /// (§5.5 example 3 breaks an ordering chain).
    InsertAfter(&'static str, &'static str),
    /// Replace the first occurrence of `from` with `to` on its line
    /// (value corruption: breaks equality/contains/unique/type).
    ReplaceValue(&'static str, &'static str),
    /// Duplicate the first line containing the marker (copy-paste /
    /// uniqueness bugs).
    DuplicateLineContaining(&'static str),
}

/// The result of injecting a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// The modified configuration text.
    pub text: String,
    /// 1-based line number of the edit (for deletions, the removed
    /// line's former number).
    pub line_no: u32,
    /// The original line that was edited or removed.
    pub original_line: String,
}

/// Applies `fault` to `config`.
///
/// Returns `None` when the fault's marker does not occur (the caller
/// picked an inapplicable fault for this configuration).
pub fn inject(config: &str, fault: Fault) -> Option<Injection> {
    let lines: Vec<&str> = config.lines().collect();
    match fault {
        Fault::DeleteLineContaining(marker) => {
            let idx = lines.iter().position(|l| l.contains(marker))?;
            let mut out = lines.clone();
            let removed = out.remove(idx);
            Some(Injection {
                text: rejoin(&out),
                line_no: (idx + 1) as u32,
                original_line: removed.trim().to_string(),
            })
        }
        Fault::InsertAfter(marker, inserted) => {
            let idx = lines.iter().position(|l| l.contains(marker))?;
            let mut out = lines.clone();
            out.insert(idx + 1, inserted);
            Some(Injection {
                text: rejoin(&out),
                line_no: (idx + 2) as u32,
                original_line: lines[idx].trim().to_string(),
            })
        }
        Fault::ReplaceValue(from, to) => {
            let idx = lines.iter().position(|l| l.contains(from))?;
            let replaced = lines[idx].replacen(from, to, 1);
            let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            let original = std::mem::replace(&mut out[idx], replaced);
            let owned: Vec<&str> = out.iter().map(String::as_str).collect();
            Some(Injection {
                text: rejoin(&owned),
                line_no: (idx + 1) as u32,
                original_line: original.trim().to_string(),
            })
        }
        Fault::DuplicateLineContaining(marker) => {
            let idx = lines.iter().position(|l| l.contains(marker))?;
            let mut out = lines.clone();
            out.insert(idx + 1, lines[idx]);
            Some(Injection {
                text: rejoin(&out),
                line_no: (idx + 2) as u32,
                original_line: lines[idx].trim().to_string(),
            })
        }
    }
}

fn rejoin(lines: &[&str]) -> String {
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// The three §5.5 incident replays, as faults applicable to generated
/// edge configurations.
pub mod incidents {
    use super::Fault;

    /// Example 1: the service omitted the BGP route aggregation line;
    /// spine filters then blackholed the fabric.
    pub const MISSING_AGGREGATE: Fault = Fault::DeleteLineContaining("aggregate-address");

    /// Example 2: layer-2 changes for a new SKU leaked into an old SKU,
    /// adding VLAN configuration absent from the network metadata.
    pub const ROGUE_VLAN_BLOCK: Fault = Fault::InsertAfter("redistribute connected", "   vlan 999");

    /// Example 3: incorrect VRF configuration was inserted between lines
    /// that must be adjacent, breaking an ordering contract.
    pub const VRF_INSERTION: Fault =
        Fault::InsertAfter("redistribute connected", "   vrf OTHER rd 10.99.99.99:999");
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONFIG: &str = "a first\nb second\nc third\n";

    #[test]
    fn delete_removes_exactly_one_line() {
        let inj = inject(CONFIG, Fault::DeleteLineContaining("second")).unwrap();
        assert_eq!(inj.text, "a first\nc third\n");
        assert_eq!(inj.line_no, 2);
        assert_eq!(inj.original_line, "b second");
    }

    #[test]
    fn insert_after_places_line() {
        let inj = inject(CONFIG, Fault::InsertAfter("first", "x inserted")).unwrap();
        assert_eq!(inj.text, "a first\nx inserted\nb second\nc third\n");
        assert_eq!(inj.line_no, 2);
    }

    #[test]
    fn replace_value_edits_in_place() {
        let inj = inject(CONFIG, Fault::ReplaceValue("second", "2nd")).unwrap();
        assert_eq!(inj.text, "a first\nb 2nd\nc third\n");
        assert_eq!(inj.original_line, "b second");
    }

    #[test]
    fn duplicate_copies_line() {
        let inj = inject(CONFIG, Fault::DuplicateLineContaining("third")).unwrap();
        assert_eq!(inj.text, "a first\nb second\nc third\nc third\n");
    }

    #[test]
    fn missing_marker_returns_none() {
        assert!(inject(CONFIG, Fault::DeleteLineContaining("absent")).is_none());
    }

    #[test]
    fn incident_faults_apply_to_edge_configs() {
        let spec = crate::RoleSpec {
            name: "E1".into(),
            devices: 1,
            style: crate::Style::EdgeIndent,
            blocks: 4,
            with_metadata: true,
        };
        let role = crate::generate_role(&spec, 11);
        let config = &role.configs[0].1;
        for fault in [
            incidents::MISSING_AGGREGATE,
            incidents::ROGUE_VLAN_BLOCK,
            incidents::VRF_INSERTION,
        ] {
            assert!(inject(config, fault).is_some(), "{fault:?} not applicable");
        }
    }
}
