//! Learn contracts from a synthetic WAN role and check a corrupted
//! device, mirroring the `concord learn` / `concord check` workflow
//! (Figure 2 of the paper) as a library user sees it.
//!
//! Run with: `cargo run --example learn_and_check`

use concord::core::{check, learn, ContractSet, Dataset, LearnParams};
use concord::datagen::{faults, generate_role, standard_roles};

fn main() {
    // Generate a WAN edge-router role (flat vendor syntax).
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "W4")
        .expect("W4 exists");
    let role = generate_role(&spec, 2024);
    println!(
        "generated role {} with {} devices, {} lines",
        role.name,
        role.configs.len(),
        role.total_lines()
    );

    // Phase 1: concord learn.
    let dataset = Dataset::from_named_texts(&role.configs, &role.metadata).expect("dataset");
    let contracts = learn(&dataset, &LearnParams::default());
    println!("learned {} contracts:", contracts.len());
    for (category, count) in contracts.count_by_category() {
        println!("  {category:<10} {count}");
    }

    // Contracts are a portable JSON artifact.
    let json = contracts.to_json();
    let contracts = ContractSet::from_json(&json).expect("roundtrip");

    // Phase 2: corrupt one device and run concord check.
    let (victim_name, victim_text) = role.configs[0].clone();
    let injected = faults::inject(
        &victim_text,
        faults::Fault::ReplaceValue(
            "family inet6 unicast policy IMPORT-TRANSIT",
            "family inet6 unicast policy IMPORT-WRONG",
        ),
    )
    .expect("fault applies");
    println!(
        "\ninjected fault into {victim_name} at line {}: {}",
        injected.line_no, injected.original_line
    );

    let test = Dataset::from_named_texts(&[(victim_name.clone(), injected.text)], &role.metadata)
        .expect("test dataset");
    let report = check(&contracts, &test);

    println!("\n--- violations ---");
    for v in report.violations.iter().take(10) {
        println!(
            "{}:{} {} [{}]",
            v.config,
            v.line_no
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            v.message,
            v.category
        );
    }
    assert!(
        !report.violations.is_empty(),
        "the corrupted policy must be flagged"
    );
}
