//! User-defined token types (Table 1's entries above the dotted line):
//! teach the lexer about interface names and file paths, and watch the
//! learned contracts change shape.
//!
//! Run with: `cargo run --example custom_tokens`

use concord::core::{learn, Dataset, LearnParams};
use concord::lexer::Lexer;

fn main() {
    let configs: Vec<(String, String)> = (0..6)
        .map(|i| {
            (
                format!("dev{i}"),
                format!(
                    "interface Et{i}\n   description uplink\nsnapshot path /var/backups/dev{i}/snap.conf\nbackup dir /var/backups/dev{i}\n"
                ),
            )
        })
        .collect();

    // Without custom tokens: interface names shatter into word+number
    // patterns, and paths are opaque text.
    let standard = Lexer::standard();
    let plain = Dataset::build(&configs, &[], &standard, true, 1).expect("dataset");

    // With custom tokens (name + regex, exactly the CLI's --tokens file
    // semantics): `[iface]` and `[path]` become first-class values.
    let custom = Lexer::with_custom(vec![
        ("iface", "([eE]t|ae|xe)-?[0-9/]+"),
        ("path", "/[a-zA-Z0-9._/-]+"),
    ])
    .expect("token definitions compile");
    let typed = Dataset::build(&configs, &[], &custom, true, 1).expect("dataset");

    println!("patterns without custom tokens:");
    for (_, text) in plain.table.iter() {
        println!("  {text}");
    }
    println!("\npatterns with [iface] and [path]:");
    for (_, text) in typed.table.iter() {
        println!("  {text}");
    }

    // The payoff: with `[path]` values, the affix relation can learn that
    // every device's snapshot path extends its configured backup
    // directory — exactly the file-path use case §3.2 and the affix
    // discussion in §5.3 anticipate. (Note the directories differ per
    // device: §3.5's diversity aggregation deliberately rejects relations
    // witnessed by a single constant value.)
    let params = LearnParams {
        support: 3,
        ..LearnParams::default()
    };
    let contracts = learn(&typed, &params);
    println!(
        "\nlearned {} contracts; the path relation:",
        contracts.len()
    );
    let mut found = false;
    for contract in &contracts.contracts {
        let text = contract.describe();
        if text.contains("startswith") && text.contains("path") {
            println!("\n{text}");
            found = true;
        }
    }
    assert!(
        found,
        "the snapshot-extends-backup-dir contract must be learned"
    );
}
