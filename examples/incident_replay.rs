//! Replays the three production incidents of §5.5 against learned
//! contracts: missing route aggregation, a rogue VLAN block caught via
//! metadata, and a broken ordering chain.
//!
//! Run with: `cargo run --example incident_replay`

use concord::core::{check, learn, Dataset, LearnParams};
use concord::datagen::faults::{incidents, inject, Fault};
use concord::datagen::{generate_role, standard_roles};

fn replay(
    name: &str,
    fault: Fault,
    contracts: &concord::core::ContractSet,
    role: &concord::datagen::GeneratedRole,
) -> bool {
    let (victim, text) = &role.configs[0];
    let injected = inject(text, fault).expect("incident fault applies");
    let test = Dataset::from_named_texts(&[(victim.clone(), injected.text)], &role.metadata)
        .expect("test dataset");
    let report = check(contracts, &test);
    println!("== {name} ==");
    println!(
        "   edit near line {} ({})",
        injected.line_no, injected.original_line
    );
    match report.violations.first() {
        Some(v) => {
            println!(
                "   CAUGHT: {} violation(s); first: {} [{}]",
                report.violations.len(),
                v.message,
                v.category
            );
            true
        }
        None => {
            println!("   MISSED");
            false
        }
    }
}

fn main() {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .expect("E1 exists");
    let role = generate_role(&spec, 5550);
    let dataset = Dataset::from_named_texts(&role.configs, &role.metadata).expect("dataset");
    // The production deployment keeps ordering contracts available for
    // incident 3 (learned from generated configs they are reliable).
    let contracts = learn(&dataset, &LearnParams::default());
    println!(
        "learned {} contracts from {} devices\n",
        contracts.len(),
        role.configs.len()
    );

    let caught_1 = replay(
        "Example 1: missing route aggregation",
        incidents::MISSING_AGGREGATE,
        &contracts,
        &role,
    );
    let caught_2 = replay(
        "Example 2: MAC broadcast loop (rogue VLAN vs metadata)",
        incidents::ROGUE_VLAN_BLOCK,
        &contracts,
        &role,
    );
    let caught_3 = replay(
        "Example 3: multiple VRFs (broken ordering)",
        incidents::VRF_INSERTION,
        &contracts,
        &role,
    );

    println!(
        "\n{}/3 incidents caught",
        [caught_1, caught_2, caught_3]
            .iter()
            .filter(|&&c| c)
            .count()
    );
    assert!(
        caught_1 && caught_2 && caught_3,
        "all incidents must be caught"
    );
}
