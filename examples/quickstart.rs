//! Quickstart: learn contracts from a handful of device configurations
//! and check a buggy change against them.
//!
//! Run with: `cargo run --example quickstart`

use concord::core::{check, learn, Dataset, LearnParams};

fn main() {
    // Six healthy devices sharing the invariants of the paper's Figure 1:
    // the loopback address is permitted by the prefix list, the route
    // distinguisher ends with the VLAN id, and every device declares its
    // BGP block.
    let training: Vec<(String, String)> = (0..6)
        .map(|i| {
            let vlan = 251 + i;
            (
                format!("edge-{i}"),
                format!(
                    "hostname DEV{}\n\
                     interface Loopback0\n   ip address 10.14.14.{i}\n\
                     ip prefix-list loopback\n   seq 10 permit 10.14.14.{i}/32\n   seq 20 permit 0.0.0.0/0\n\
                     router bgp 65015\n   vlan {vlan}\n      rd 10.14.14.117:10{vlan}\n",
                    1000 + i
                ),
            )
        })
        .collect();

    let dataset = Dataset::from_named_texts(&training, &[]).expect("build dataset");
    let params = LearnParams {
        support: 3, // Tiny example set; the production default is 5.
        ..LearnParams::default()
    };
    let contracts = learn(&dataset, &params);

    println!("Learned {} contracts. A sample:\n", contracts.len());
    for contract in contracts.contracts.iter().take(8) {
        println!("{}\n", contract.describe());
    }

    // A new device with two bugs: the loopback address is missing from
    // the prefix list, and the RD does not end with the VLAN id.
    let buggy = vec![(
        "edge-new".to_string(),
        "hostname DEV2000\n\
         interface Loopback0\n   ip address 10.14.14.99\n\
         ip prefix-list loopback\n   seq 10 permit 10.14.14.1/32\n   seq 20 permit 0.0.0.0/0\n\
         router bgp 65015\n   vlan 260\n      rd 10.14.14.117:10999\n"
            .to_string(),
    )];
    let test = Dataset::from_named_texts(&buggy, &[]).expect("build test dataset");
    let report = check(&contracts, &test);

    println!("--- violations in edge-new ---");
    for v in &report.violations {
        match v.line_no {
            Some(n) => println!("line {n}: {} [{}]", v.message, v.category),
            None => println!("(missing): {} [{}]", v.message, v.category),
        }
    }
    let summary = report.coverage.summary();
    println!(
        "\ncoverage: {:.1}% of {} lines",
        summary.fraction * 100.0,
        summary.total_lines
    );
    assert!(!report.violations.is_empty(), "the bugs must be caught");
}
