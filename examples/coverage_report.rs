//! Prints a per-category configuration-coverage report (§3.9) for a
//! generated role, in the spirit of Tables 4 and 5 of the paper.
//!
//! Run with: `cargo run --example coverage_report [role]`

use concord::core::{check, learn, Dataset, LearnParams};
use concord::datagen::{generate_role, standard_roles};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "E1".to_string());
    let Some(spec) = standard_roles(0.5).into_iter().find(|s| s.name == wanted) else {
        eprintln!("unknown role {wanted}; use one of E1 E2 W1..W8");
        std::process::exit(2);
    };

    let role = generate_role(&spec, 99);
    let dataset = Dataset::from_named_texts(&role.configs, &role.metadata).expect("dataset");
    let params = LearnParams {
        learn_constants: true,
        ..LearnParams::default()
    };
    let contracts = learn(&dataset, &params);
    let report = check(&contracts, &dataset);
    let summary = report.coverage.summary();

    println!(
        "role {}: {} devices, {} lines",
        role.name,
        role.configs.len(),
        summary.total_lines
    );
    println!("contracts learned: {}", contracts.len());
    for (category, count) in contracts.count_by_category() {
        println!("  {category:<10} {count}");
    }
    println!(
        "\ntotal coverage: {:.1}% ({} / {} lines)",
        summary.fraction * 100.0,
        summary.covered_lines,
        summary.total_lines
    );
    println!("by category:");
    for (category, fraction) in &summary.by_category {
        println!("  {category:<10} {:>5.1}%", fraction * 100.0);
    }

    // Show a few uncovered lines: these guide new contract categories
    // (the paper's motivation for measuring coverage).
    println!("\nsample uncovered lines:");
    let mut shown = 0;
    'outer: for (config, cov) in dataset.configs.iter().zip(&report.coverage.per_config) {
        for (i, line) in config.lines(&dataset.arenas).enumerate() {
            if line.is_meta || cov.covered.contains(&i) {
                continue;
            }
            println!(
                "  {}:{} {}",
                dataset.name_of(config),
                line.line_no,
                line.original
            );
            shown += 1;
            if shown >= 8 {
                break 'outer;
            }
        }
    }
    if shown == 0 {
        println!("  (none - every line is covered)");
    }
}
